//! Copy-on-write byte buffers and a size-classed chunk pool for the
//! simulated data plane.
//!
//! The payload path (MPB store → tunnel TLP → software cache → MPB
//! load) used to allocate and copy a fresh `Vec<u8>` at nearly every
//! hop. [`Bytes`] makes the common hops free: it is an `Rc`-backed,
//! immutable view with O(1) [`Bytes::clone`] and O(1) [`Bytes::slice`],
//! so forwarding a payload across actors shares one storage allocation.
//! The rare hop that must change bytes in flight — fault corruption,
//! WCB merging — goes through [`Bytes::make_mut`], which mutates in
//! place when the view is unique and copies (once) when it is shared:
//! bytes still *really* move, and a fault flip still corrupts the data
//! a receiver verifies.
//!
//! Storage comes from a size-classed [`Pool`]: power-of-two classes
//! whose free lists are refilled when a buffer's last `Rc` drops, so
//! steady-state traffic recycles chunks instead of round-tripping the
//! host allocator. Pooled buffers are handed out **zeroed** — recycling
//! must never resurrect stale payload bytes.
//!
//! Everything here is single-threaded (`Rc`, `RefCell`, a
//! `thread_local!` global pool) and touches only host wall-clock:
//! virtual-time costs are charged by the callers exactly as before, so
//! traces, metrics, and calibration bands are unchanged.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::rc::{Rc, Weak};

use crate::stats::Gauge;

/// Smallest pooled class (covers flag bytes and MPB lines).
const MIN_CLASS_BYTES: usize = 32;
/// Largest pooled class; bigger buffers fall back to plain allocation.
const MAX_CLASS_BYTES: usize = 1 << 16;
/// Number of power-of-two classes in `[MIN_CLASS_BYTES, MAX_CLASS_BYTES]`.
const N_CLASSES: usize =
    (MAX_CLASS_BYTES.trailing_zeros() - MIN_CLASS_BYTES.trailing_zeros() + 1) as usize;
/// Free-list depth cap per class: beyond this, returned buffers are freed.
const MAX_FREE_PER_CLASS: usize = 64;
/// Cap on parked `Rc<Inner>` header allocations kept for reuse.
const MAX_SPARE_INNERS: usize = 64;

/// Class index for a capacity, or `None` when the size is unpooled.
fn class_of(cap: usize) -> Option<usize> {
    if cap == 0 || cap > MAX_CLASS_BYTES {
        return None;
    }
    let cls = cap.next_power_of_two().max(MIN_CLASS_BYTES);
    Some((cls.trailing_zeros() - MIN_CLASS_BYTES.trailing_zeros()) as usize)
}

fn class_bytes(idx: usize) -> usize {
    MIN_CLASS_BYTES << idx
}

struct PoolState {
    free: [Vec<Vec<u8>>; N_CLASSES],
    /// Unique `Rc<Inner>` headers (storage already taken back) parked so
    /// [`BytesMut::freeze`] can reuse the `Rc` allocation itself.
    spare_inners: Vec<Rc<Inner>>,
    hits: u64,
    misses: u64,
    returned: u64,
    /// Live mirror of the total parked free-list depth, for the
    /// time-series sampler ([`Pool::free_gauge`]). Never registered in a
    /// metrics registry: pool state is thread-local and persists across
    /// runs on one thread, so it would break snapshot determinism.
    free_gauge: Gauge,
}

/// Pool usage counters (host-side only; never feed the virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from a free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers recycled back into a free list on drop.
    pub returned: u64,
}

/// A size-classed recycling pool of byte buffers.
///
/// Cheap to clone (shared state). Buffers obtained through
/// [`Pool::get`] return to the pool automatically when the last
/// [`Bytes`]/[`BytesMut`] referencing their storage is dropped.
#[derive(Clone)]
pub struct Pool {
    state: Rc<RefCell<PoolState>>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            state: Rc::new(RefCell::new(PoolState {
                free: std::array::from_fn(|_| Vec::new()),
                spare_inners: Vec::new(),
                hits: 0,
                misses: 0,
                returned: 0,
                free_gauge: Gauge::new(),
            })),
        }
    }

    /// A zeroed mutable buffer of `len` bytes, recycled from the pool
    /// when a chunk of the right class is free.
    pub fn get(&self, len: usize) -> BytesMut {
        let mut data = match class_of(len.max(1)) {
            Some(idx) => {
                let mut st = self.state.borrow_mut();
                match st.free[idx].pop() {
                    Some(buf) => {
                        st.hits += 1;
                        st.free_gauge.sub(1);
                        buf
                    }
                    None => {
                        st.misses += 1;
                        Vec::with_capacity(class_bytes(idx))
                    }
                }
            }
            None => {
                self.state.borrow_mut().misses += 1;
                Vec::with_capacity(len)
            }
        };
        // Recycled chunks are handed out zeroed: stale payload bytes
        // must never leak into a fresh buffer.
        data.clear();
        data.resize(len, 0);
        BytesMut { data, pool: Rc::downgrade(&self.state) }
    }

    /// An *empty* buffer whose pooled storage can hold at least `cap`
    /// bytes before growing (an accumulator for
    /// [`BytesMut::extend_from_slice`]).
    pub fn get_with_capacity(&self, cap: usize) -> BytesMut {
        let mut b = self.get(cap);
        b.truncate(0);
        b
    }

    /// Copy `src` into a pooled buffer and freeze it.
    pub fn copy(&self, src: &[u8]) -> Bytes {
        let mut b = self.get(src.len());
        b.copy_from_slice(src);
        b.freeze()
    }

    /// Usage counters.
    pub fn stats(&self) -> PoolStats {
        let st = self.state.borrow();
        PoolStats { hits: st.hits, misses: st.misses, returned: st.returned }
    }

    /// Total buffers currently parked in free lists.
    pub fn free_buffers(&self) -> usize {
        self.state.borrow().free.iter().map(Vec::len).sum()
    }

    /// A live [`Gauge`] mirroring [`Pool::free_buffers`], for the
    /// time-series sampler ([`crate::obs::TimeSeries::track_gauge`]).
    /// Deliberately *not* registry material — see the field docs.
    pub fn free_gauge(&self) -> Gauge {
        self.state.borrow().free_gauge.clone()
    }
}

fn return_to_pool(pool: &Weak<RefCell<PoolState>>, data: &mut Vec<u8>) {
    if data.capacity() == 0 {
        return;
    }
    // Only whole class-sized chunks are recycled; odd capacities (plain
    // `Vec` conversions, oversized buffers) just drop.
    if let Some(idx) = class_of(data.capacity()) {
        if class_bytes(idx) == data.capacity() {
            if let Some(state) = pool.upgrade() {
                let mut st = state.borrow_mut();
                if st.free[idx].len() < MAX_FREE_PER_CLASS {
                    st.returned += 1;
                    st.free[idx].push(std::mem::take(data));
                    st.free_gauge.add(1);
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread global pool: each simulation runs on one OS thread
    /// (`parallel_sweep` threads get independent pools), and pooling
    /// only affects host wall-clock, never virtual time.
    static GLOBAL_POOL: Pool = Pool::new();
}

/// A zeroed mutable buffer of `len` bytes from the thread-local pool.
pub fn pooled(len: usize) -> BytesMut {
    GLOBAL_POOL.with(|p| p.get(len))
}

/// An empty pooled accumulator with room for at least `cap` bytes.
pub fn pooled_with_capacity(cap: usize) -> BytesMut {
    GLOBAL_POOL.with(|p| p.get_with_capacity(cap))
}

/// Copy `src` into a thread-local pooled buffer and freeze it.
pub fn pooled_copy(src: &[u8]) -> Bytes {
    GLOBAL_POOL.with(|p| p.copy(src))
}

/// Stats of the thread-local global pool.
pub fn global_pool_stats() -> PoolStats {
    GLOBAL_POOL.with(|p| p.stats())
}

/// Free-buffer gauge of the thread-local global pool (see
/// [`Pool::free_gauge`]).
pub fn global_pool_free_gauge() -> Gauge {
    GLOBAL_POOL.with(|p| p.free_gauge())
}

/// Shared storage. Dropping the last `Rc` returns the chunk to its pool.
struct Inner {
    data: Vec<u8>,
    pool: Weak<RefCell<PoolState>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        return_to_pool(&self.pool, &mut self.data);
    }
}

/// Wrap `data` in an `Rc<Inner>`, reusing a parked header allocation
/// from the pool when one is available.
fn new_inner(data: Vec<u8>, pool: Weak<RefCell<PoolState>>) -> Rc<Inner> {
    let spare = pool.upgrade().and_then(|state| state.borrow_mut().spare_inners.pop());
    match spare {
        Some(mut rc) => {
            let inner = Rc::get_mut(&mut rc).expect("parked headers are unique");
            inner.data = data;
            inner.pool = pool;
            rc
        }
        None => Rc::new(Inner { data, pool }),
    }
}

/// An immutable, cheaply cloneable view of shared bytes.
///
/// `clone` and [`Bytes::slice`] are O(1) (they bump a refcount and
/// adjust the view window); [`Bytes::make_mut`] gives in-place mutable
/// access, copying only when the storage is shared or the view is a
/// proper slice of it.
#[derive(Clone)]
pub struct Bytes {
    inner: Rc<Inner>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty view (no storage).
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap an existing `Vec` without copying. The storage is returned
    /// to the thread-local pool on drop only if its capacity is exactly
    /// a pool class size.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        let pool = GLOBAL_POOL.with(|p| Rc::downgrade(&p.state));
        Bytes { inner: new_inner(data, pool), off: 0, len }
    }

    /// Copy a slice into a pooled buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        pooled_copy(src)
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner.data[self.off..self.off + self.len]
    }

    /// O(1) sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for {} bytes",
            self.len
        );
        Bytes {
            inner: self.inner.clone(),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Mutable access to the viewed bytes, copy-on-write.
    ///
    /// Mutates in place when this is the only view of the whole
    /// storage; otherwise copies the viewed range into a fresh pooled
    /// buffer first, so other views are never disturbed.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let whole = self.off == 0 && self.len == self.inner.data.len();
        if !(whole && Rc::strong_count(&self.inner) == 1) {
            let copied = pooled_copy(self.as_slice());
            *self = copied;
        }
        let inner = Rc::get_mut(&mut self.inner).expect("unique after CoW");
        &mut inner.data[..]
    }

    /// Copy out to a plain `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Last view of pooled storage: take the data back for the class
        // free list and park the unique `Rc` header so a later `freeze`
        // reuses the allocation instead of `Rc::new`.
        if Rc::strong_count(&self.inner) != 1 {
            return;
        }
        let Some(state) = self.inner.pool.upgrade() else { return };
        let inner = Rc::get_mut(&mut self.inner).expect("unique at last drop");
        let mut data = std::mem::take(&mut inner.data);
        let pool = inner.pool.clone();
        return_to_pool(&pool, &mut data);
        let mut st = state.borrow_mut();
        if st.spare_inners.len() < MAX_SPARE_INNERS {
            st.spare_inners.push(self.inner.clone());
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

/// A uniquely owned, mutable, growable byte buffer.
///
/// Obtained from a [`Pool`] (or [`pooled`]); [`BytesMut::freeze`] turns
/// it into a shareable [`Bytes`] without copying. Dropping it returns
/// class-sized storage to its pool.
pub struct BytesMut {
    data: Vec<u8>,
    pool: Weak<RefCell<PoolState>>,
}

impl BytesMut {
    /// A zeroed buffer of `len` bytes from the thread-local pool.
    pub fn zeroed(len: usize) -> Self {
        pooled(len)
    }

    /// An empty growable buffer (storage pooled once it grows).
    pub fn new() -> Self {
        BytesMut { data: Vec::new(), pool: GLOBAL_POOL.with(|p| Rc::downgrade(&p.state)) }
    }

    /// Append bytes, growing the buffer if needed.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Freeze into an immutable shareable view without copying.
    pub fn freeze(mut self) -> Bytes {
        let data = std::mem::take(&mut self.data);
        let pool = std::mem::replace(&mut self.pool, Weak::new());
        let len = data.len();
        Bytes { inner: new_inner(data, pool), off: 0, len }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        return_to_pool(&self.pool, &mut self.data);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage_and_slice_is_a_window() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(Rc::strong_count(&b.inner), 2);
        let s = c.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(Rc::strong_count(&b.inner), 3);
        let ss = s.slice(1..2);
        assert_eq!(&*ss, &[3]);
    }

    #[test]
    fn make_mut_in_place_when_unique() {
        let mut b = Bytes::copy_from_slice(&[9u8; 8]);
        let p = b.as_slice().as_ptr();
        b.make_mut()[0] = 1;
        assert_eq!(b.as_slice().as_ptr(), p, "unique whole-buffer view mutates in place");
        assert_eq!(b[0], 1);
    }

    #[test]
    fn make_mut_copies_when_shared() {
        let mut b = Bytes::copy_from_slice(&[7u8; 8]);
        let keep = b.clone();
        b.make_mut()[0] = 0xFF;
        assert_eq!(keep[0], 7, "other views are isolated from the mutation");
        assert_eq!(b[0], 0xFF);
    }

    #[test]
    fn make_mut_copies_when_sliced() {
        let base = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let mut s = base.slice(1..3);
        drop(base);
        // Unique refcount but a proper sub-view: must still copy.
        s.make_mut()[0] = 0xAA;
        assert_eq!(&*s, &[0xAA, 3]);
    }

    #[test]
    fn pool_recycles_and_zeroes() {
        let pool = Pool::new();
        let mut b = pool.get(100);
        b[0] = 0xEE;
        b[99] = 0xDD;
        let cap = {
            let frozen = b.freeze();
            frozen.inner.data.capacity()
        }; // dropped -> returned
        assert_eq!(cap, 128);
        assert_eq!(pool.free_buffers(), 1);
        let again = pool.get(128);
        assert_eq!(pool.free_buffers(), 0);
        assert!(again.iter().all(|&x| x == 0), "recycled chunk must be zeroed");
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn pool_class_mismatch_allocates() {
        let pool = Pool::new();
        drop(pool.get(64)); // returns to class 64
        let b = pool.get(1024); // different class: miss
        assert_eq!(b.len(), 1024);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn oversized_buffers_bypass_pool() {
        let pool = Pool::new();
        let b = pool.get(MAX_CLASS_BYTES + 1);
        drop(b);
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().returned, 0);
    }

    #[test]
    fn from_vec_wraps_without_copy() {
        let v = vec![5u8; 40];
        let p = v.as_ptr();
        let b = Bytes::from_vec(v);
        assert_eq!(b.as_slice().as_ptr(), p);
        assert_eq!(b.len(), 40);
    }

    #[test]
    fn freeze_then_clones_then_drop_returns_once() {
        let pool = Pool::new();
        let b = pool.get(256).freeze();
        let c1 = b.clone();
        let c2 = b.slice(10..20);
        drop(b);
        drop(c1);
        assert_eq!(pool.free_buffers(), 0, "storage still referenced by a slice");
        drop(c2);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn empty_bytes() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(b.slice(0..0).len(), 0);
        assert_eq!(b.to_vec(), Vec::<u8>::new());
    }

    #[test]
    fn bytes_mut_grows_and_freezes() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        assert_eq!(b.len(), 3);
        let f = b.freeze();
        assert_eq!(&*f, &[1, 2, 3]);
    }
}
