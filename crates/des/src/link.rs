//! FIFO bandwidth/latency resources.
//!
//! A [`Link`] models a serial transmission resource (a PCIe lane bundle, a
//! DMA engine, a memory port): transfers serialize on the link in request
//! order, each occupying it for `bytes * cycles_per_byte` plus a fixed
//! per-transfer overhead, and arriving `latency` cycles after leaving the
//! wire. Queuing delay under contention emerges from the reservation.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::obs::Registry;
use crate::stats::{Counter, Gauge, Log2Histogram};
use crate::time::Cycles;
use crate::Sim;

/// Bandwidth expressed as a rational `cycles_per_byte = num / den`, keeping
/// all reservation arithmetic in integers for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bandwidth {
    num: u64,
    den: u64,
}

impl Bandwidth {
    /// `num / den` cycles per byte. Panics if `den == 0`.
    pub const fn cycles_per_byte(num: u64, den: u64) -> Self {
        assert!(den > 0, "bandwidth denominator must be non-zero");
        Bandwidth { num, den }
    }

    /// Convenience: bytes per cycle, i.e. `1/bpc` cycles per byte.
    pub const fn bytes_per_cycle(bpc: u64) -> Self {
        assert!(bpc > 0);
        Bandwidth { num: 1, den: bpc }
    }

    /// Wire occupancy of a transfer of `bytes`, rounded up.
    pub const fn occupancy(self, bytes: u64) -> Cycles {
        ((bytes as u128 * self.num as u128).div_ceil(self.den as u128)) as Cycles
    }

    /// Peak MB/s at the given clock (decimal MB, for reporting).
    pub fn peak_mbps(self, freq: crate::Freq) -> f64 {
        (self.den as f64 / self.num as f64) * freq.as_mhz() as f64
    }
}

struct LinkState {
    busy_until: Cell<Cycles>,
    bw: Bandwidth,
    latency: Cycles,
    per_transfer: Cycles,
    bytes: Counter,
    transfers: Cell<u64>,
    busy_cycles: Counter,
    /// Wire-free times of reservations not yet drained; its length at
    /// reservation time is the queue depth.
    pending: RefCell<VecDeque<Cycles>>,
    queue_depth: Gauge,
    latency_hist: Log2Histogram,
}

/// Timing of one reserved transfer (see [`Link::reserve_timed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the wire is free again (posted-write completion point).
    pub wire_free: Cycles,
    /// When the payload fully arrives at the far end.
    pub arrival: Cycles,
}

/// A FIFO-arbitrated serial transmission resource.
#[derive(Clone)]
pub struct Link {
    state: Rc<LinkState>,
}

impl Link {
    /// Create a link with `bw` bandwidth, `latency` cycles of propagation
    /// delay, and a fixed `per_transfer` overhead (header processing,
    /// arbitration) charged to every transfer.
    pub fn new(bw: Bandwidth, latency: Cycles, per_transfer: Cycles) -> Self {
        Link {
            state: Rc::new(LinkState {
                busy_until: Cell::new(0),
                bw,
                latency,
                per_transfer,
                bytes: Counter::new(),
                transfers: Cell::new(0),
                busy_cycles: Counter::new(),
                pending: RefCell::new(VecDeque::new()),
                queue_depth: Gauge::new(),
                latency_hist: Log2Histogram::new(),
            }),
        }
    }

    /// Surface this link's instruments in `registry` under
    /// `{bytes, busy_cycles, queue_depth, latency_cycles}`; scope the
    /// registry first (e.g. `registry.scoped("pcie").scoped("link0")`).
    /// The `busy_cycles` counter is the utilization numerator — the
    /// time-series sampler turns its per-interval delta into the link's
    /// busy-fraction curve.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.adopt_counter("bytes", &self.state.bytes);
        registry.adopt_counter("busy_cycles", &self.state.busy_cycles);
        registry.adopt_gauge("queue_depth", &self.state.queue_depth);
        registry.adopt_histogram("latency_cycles", &self.state.latency_hist);
    }

    /// Propagation latency in cycles.
    pub fn latency(&self) -> Cycles {
        self.state.latency
    }

    /// Configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.state.bw
    }

    /// Transfer `bytes` over the link; resolves when the data has fully
    /// arrived at the far end. Reservation happens synchronously at call
    /// time, so concurrent callers are served in call order.
    pub async fn transfer(&self, sim: &Sim, bytes: u64) {
        let arrive = self.reserve(sim, bytes);
        sim.delay_until(arrive).await;
    }

    /// Reserve wire time for `bytes` and return the absolute arrival
    /// timestamp without waiting. Lets a pipelined sender issue the next
    /// chunk while earlier chunks are in flight.
    pub fn reserve(&self, sim: &Sim, bytes: u64) -> Cycles {
        self.reserve_timed(sim, bytes).arrival
    }

    /// Like [`Link::reserve`], but also exposes when the wire frees up.
    /// A *posted* writer (fire-and-forget semantics) continues at
    /// `wire_free`; the payload lands at `arrival`.
    pub fn reserve_timed(&self, sim: &Sim, bytes: u64) -> Reservation {
        let st = &*self.state;
        let now = sim.now();
        let occupy = st.bw.occupancy(bytes) + st.per_transfer;
        let start = st.busy_until.get().max(now);
        let done = start + occupy;
        st.busy_until.set(done);
        st.bytes.add(bytes);
        st.transfers.set(st.transfers.get() + 1);
        st.busy_cycles.add(occupy);
        // Queue depth: reservations whose wire time has not yet elapsed,
        // including this one. Drained lazily at reservation time so the
        // gauge (and its high watermark) stay exact without timers.
        let mut pending = st.pending.borrow_mut();
        while pending.front().is_some_and(|&free| free <= now) {
            pending.pop_front();
        }
        pending.push_back(done);
        st.queue_depth.set(pending.len() as i64);
        st.latency_hist.record(done + st.latency - now);
        crate::audit::record_at(
            now,
            crate::audit::DecisionKind::LinkReserve,
            bytes,
            done + st.latency,
        );
        Reservation { wire_free: done, arrival: done + st.latency }
    }

    /// Total bytes moved over the link.
    pub fn total_bytes(&self) -> u64 {
        self.state.bytes.get()
    }

    /// Number of transfers.
    pub fn total_transfers(&self) -> u64 {
        self.state.transfers.get()
    }

    /// Cycles the wire was occupied (utilization numerator).
    pub fn busy_cycles(&self) -> Cycles {
        self.state.busy_cycles.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_rounds_up() {
        let bw = Bandwidth::cycles_per_byte(3, 2); // 1.5 cycles/byte
        assert_eq!(bw.occupancy(0), 0);
        assert_eq!(bw.occupancy(1), 2);
        assert_eq!(bw.occupancy(2), 3);
        assert_eq!(bw.occupancy(100), 150);
    }

    #[test]
    fn single_transfer_timing() {
        let sim = Sim::new();
        // 1 cycle/byte, 100 latency, 10 per-transfer.
        let link = Link::new(Bandwidth::cycles_per_byte(1, 1), 100, 10);
        let s = sim.clone();
        sim.spawn(async move {
            link.transfer(&s, 32).await;
            assert_eq!(s.now(), 32 + 10 + 100);
        });
        sim.run().unwrap();
    }

    #[test]
    fn contention_serializes_fifo() {
        let sim = Sim::new();
        let link = Link::new(Bandwidth::cycles_per_byte(1, 1), 0, 0);
        for i in 0..3u64 {
            let (s, l) = (sim.clone(), link.clone());
            sim.spawn(async move {
                l.transfer(&s, 100).await;
                // Each transfer occupies 100 cycles back to back.
                assert_eq!(s.now(), 100 * (i + 1));
            });
        }
        sim.run().unwrap();
        assert_eq!(link.total_bytes(), 300);
        assert_eq!(link.total_transfers(), 3);
    }

    #[test]
    fn latency_overlaps_between_transfers() {
        // Second transfer starts when the wire frees, not when the first
        // arrives: store-and-forward pipelining.
        let sim = Sim::new();
        let link = Link::new(Bandwidth::cycles_per_byte(1, 1), 1000, 0);
        for i in 0..2u64 {
            let (s, l) = (sim.clone(), link.clone());
            sim.spawn(async move {
                l.transfer(&s, 10).await;
                assert_eq!(s.now(), 10 * (i + 1) + 1000);
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn reserve_allows_pipelining() {
        let sim = Sim::new();
        let link = Link::new(Bandwidth::cycles_per_byte(1, 1), 500, 0);
        let s = sim.clone();
        sim.spawn(async move {
            // Issue 4 chunks of 100B without waiting in between.
            let mut last = 0;
            for _ in 0..4 {
                last = link.reserve(&s, 100);
            }
            s.delay_until(last).await;
            // Wire time 400, then 500 latency for the last chunk.
            assert_eq!(s.now(), 900);
        });
        sim.run().unwrap();
    }

    #[test]
    fn link_metrics_register_and_track() {
        let sim = Sim::new();
        let link = Link::new(Bandwidth::cycles_per_byte(1, 1), 50, 0);
        let reg = Registry::new();
        link.register_metrics(&reg.scoped("pcie").scoped("link0"));
        let s = sim.clone();
        let l = link.clone();
        sim.spawn(async move {
            // Three back-to-back reservations at t=0: queue builds to 3.
            l.reserve(&s, 100);
            l.reserve(&s, 100);
            l.reserve(&s, 100);
        });
        sim.run().unwrap();
        assert_eq!(reg.counter("pcie.link0.bytes").get(), 300);
        let g = reg.gauge("pcie.link0.queue_depth");
        assert_eq!(g.high_watermark(), 3);
        match reg.snapshot().entries.iter().find(|(n, _)| n == "pcie.link0.latency_cycles") {
            Some((_, crate::obs::MetricValue::Histogram { count, max, .. })) => {
                assert_eq!(*count, 3);
                // Last chunk: 300 wire + 50 latency.
                assert_eq!(*max, 350);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn peak_mbps_reporting() {
        let bw = Bandwidth::bytes_per_cycle(1);
        let f = crate::Freq::mhz(533);
        assert!((bw.peak_mbps(f) - 533.0).abs() < 1e-9);
    }
}
