//! Critical-path reconstruction: where did each message's cycles go?
//!
//! The trace records *hops* (spans tagged with a flow id); this module
//! folds them back into per-message timelines and attributes every cycle
//! of end-to-end latency to a named [`Phase`]. Attribution is exact by
//! construction: the window is cut at every span boundary into elementary
//! segments, each segment is charged to the highest-priority phase active
//! in it (gaps go to [`Phase::Other`]), so the per-phase cycles always
//! sum to the window length. That is what lets the fig2/fig6b benches
//! print tables whose rows add up to the measured latency under
//! `VSCC_CRITPATH=1` (see [`crate::obs::CRITPATH_ENV`]).
//!
//! The phase vocabulary is defined here, in the engine crate, so the
//! protocol layers above (rcce, vscc) and the consumers below (benches,
//! tests) agree on span kind names without depending on each other.

use std::collections::BTreeMap;

use crate::time::Cycles;
use crate::trace::{SpanPhase, Trace, TraceEvent};

/// A named latency phase of a message's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting for the UE's single outgoing-send lock.
    SenderLock,
    /// The sender core occupied copying payload into MPB.
    SenderPut,
    /// The sender stalled on a grant/ready/slot flag.
    MpbWait,
    /// The host commtask classifying and dispatching a fabric access.
    HostClassify,
    /// Software-cache miss service / staleness wait on the host.
    CacheStale,
    /// Queued behind other traffic for a PCIe port.
    PcieQueue,
    /// Bytes on the PCIe wire.
    PcieWire,
    /// The virtual DMA engine programming/moving a transfer.
    Vdma,
    /// The receiver polling for the sent flag.
    RecvPoll,
    /// The receiver core occupied copying payload out of MPB.
    RecvGet,
    /// Cycles no instrumented span covers.
    Other,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 11;

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::SenderLock,
        Phase::SenderPut,
        Phase::MpbWait,
        Phase::HostClassify,
        Phase::CacheStale,
        Phase::PcieQueue,
        Phase::PcieWire,
        Phase::Vdma,
        Phase::RecvPoll,
        Phase::RecvGet,
        Phase::Other,
    ];

    /// Short column label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SenderLock => "lock",
            Phase::SenderPut => "s.put",
            Phase::MpbWait => "mpbwait",
            Phase::HostClassify => "classify",
            Phase::CacheStale => "cache",
            Phase::PcieQueue => "pcieq",
            Phase::PcieWire => "wire",
            Phase::Vdma => "vdma",
            Phase::RecvPoll => "r.poll",
            Phase::RecvGet => "r.get",
            Phase::Other => "other",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("phase in ALL")
    }

    /// Tie-break when phases overlap: the more specific resource wins.
    /// Wire beats the vDMA span that encloses it; a flag wait beats the
    /// chunk span it happens inside; everything beats `Other`.
    fn priority(self) -> u8 {
        match self {
            Phase::PcieWire => 10,
            Phase::PcieQueue => 9,
            Phase::Vdma => 8,
            Phase::CacheStale => 7,
            Phase::HostClassify => 6,
            Phase::MpbWait => 5,
            Phase::RecvPoll => 4,
            Phase::SenderPut => 3,
            Phase::RecvGet => 2,
            Phase::SenderLock => 1,
            Phase::Other => 0,
        }
    }
}

/// Map a span kind (as traced by the protocol layers) to its phase.
/// Kinds outside the vocabulary return `None` and do not attribute.
pub fn phase_of_kind(kind: &str) -> Option<Phase> {
    Some(match kind {
        "send_lock" => Phase::SenderLock,
        "sender_put" => Phase::SenderPut,
        "mpb_wait" => Phase::MpbWait,
        "classify" => Phase::HostClassify,
        "cache_wait" | "prefetch" => Phase::CacheStale,
        "pcie_queue" => Phase::PcieQueue,
        "pcie_wire" => Phase::PcieWire,
        "vdma" => Phase::Vdma,
        "recv_poll" => Phase::RecvPoll,
        "recv_get" => Phase::RecvGet,
        _ => return None,
    })
}

/// Cycles attributed per phase; always sums to the attributed window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    cycles: [u64; PHASE_COUNT],
}

impl Attribution {
    /// Cycles attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Total attributed cycles (equals the window length by construction).
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Accumulate another attribution into this one.
    pub fn add(&mut self, other: &Attribution) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }
}

/// One message's reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTimeline {
    /// The flow id shared by all of the message's hops.
    pub flow: u64,
    /// Time of the first traced hop.
    pub start: Cycles,
    /// Time of the last traced hop.
    pub end: Cycles,
    /// Per-phase latency attribution; `total() == end - start`.
    pub attribution: Attribution,
}

/// A phase-tagged closed interval.
type Interval = (Cycles, Cycles, Phase);

/// Match begin/end pairs into intervals. Spans nest per (actor, kind)
/// like a call stack; unmatched begins are closed at `close_at`.
fn intervals_from_events<'a>(
    events: impl Iterator<Item = &'a TraceEvent>,
    close_at: Cycles,
) -> Vec<Interval> {
    let mut open: BTreeMap<(&str, &str), Vec<Cycles>> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let Some(phase) = phase_of_kind(e.kind) else { continue };
        match e.phase {
            SpanPhase::Begin => {
                open.entry((&*e.actor, e.kind)).or_default().push(e.time);
            }
            SpanPhase::End => {
                if let Some(t0) = open.get_mut(&(&*e.actor, e.kind)).and_then(Vec::pop) {
                    out.push((t0, e.time, phase));
                }
            }
            SpanPhase::Instant => {}
        }
    }
    for ((_actor, kind), stack) in open {
        let phase = phase_of_kind(kind).expect("only vocabulary kinds are stacked");
        for t0 in stack {
            if t0 < close_at {
                out.push((t0, close_at, phase));
            }
        }
    }
    out
}

/// Attribute the window `[start, end]` over `intervals`: every elementary
/// segment goes to the highest-priority active phase, gaps to
/// [`Phase::Other`]. The result's `total()` is exactly `end - start`.
pub fn attribute(intervals: &[Interval], start: Cycles, end: Cycles) -> Attribution {
    let mut attr = Attribution::default();
    if end <= start {
        return attr;
    }
    // Boundary sweep: +1/-1 per interval edge, clamped to the window.
    let mut edges: Vec<(Cycles, i32, usize)> = Vec::with_capacity(intervals.len() * 2);
    for &(t0, t1, phase) in intervals {
        let (a, b) = (t0.max(start), t1.min(end));
        if a < b {
            edges.push((a, 1, phase.index()));
            edges.push((b, -1, phase.index()));
        }
    }
    edges.sort();
    let mut active = [0i64; PHASE_COUNT];
    let mut cursor = start;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        if t > cursor {
            attr.cycles[winner(&active)] += t - cursor;
            cursor = t;
        }
        while i < edges.len() && edges[i].0 == t {
            active[edges[i].2] += edges[i].1 as i64;
            i += 1;
        }
    }
    if end > cursor {
        attr.cycles[winner(&active)] += end - cursor;
    }
    attr
}

fn winner(active: &[i64; PHASE_COUNT]) -> usize {
    Phase::ALL
        .iter()
        .filter(|p| active[p.index()] > 0)
        .max_by_key(|p| p.priority())
        .unwrap_or(&Phase::Other)
        .index()
}

/// Reconstruct every flow's timeline from `trace`, sorted by flow id.
pub fn flow_timelines(trace: &Trace) -> Vec<FlowTimeline> {
    trace.with_events(|events| {
        let mut by_flow: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        for e in events {
            if let Some(flow) = e.flow {
                by_flow.entry(flow).or_default().push(e);
            }
        }
        by_flow
            .into_iter()
            .map(|(flow, evs)| {
                let start = evs.iter().map(|e| e.time).min().expect("non-empty flow");
                let end = evs.iter().map(|e| e.time).max().expect("non-empty flow");
                let intervals = intervals_from_events(evs.into_iter(), end);
                FlowTimeline { flow, start, end, attribution: attribute(&intervals, start, end) }
            })
            .collect()
    })
}

/// Attribute a whole run's window `[start, end]` over *all* spans in the
/// trace, flow-tagged or not. Benches pass the measured completion time
/// as `end`, so the printed phases sum to the measured latency exactly.
pub fn run_attribution(trace: &Trace, start: Cycles, end: Cycles) -> Attribution {
    let intervals = trace.with_events(|events| intervals_from_events(events.iter(), end));
    attribute(&intervals, start, end)
}

/// Render per-row attributions as an aligned table. Phase columns that
/// are zero in every row are omitted; `total` is always last.
pub fn render_table(label_header: &str, rows: &[(String, Attribution)]) -> String {
    let shown: Vec<Phase> =
        Phase::ALL.iter().copied().filter(|&p| rows.iter().any(|(_, a)| a.get(p) > 0)).collect();
    let mut out = format!("{label_header:<34}");
    for p in &shown {
        out.push_str(&format!(" {:>10}", p.name()));
    }
    out.push_str(&format!(" {:>12}\n", "total"));
    for (label, attr) in rows {
        out.push_str(&format!("{label:<34}"));
        for p in &shown {
            out.push_str(&format!(" {:>10}", attr.get(*p)));
        }
        out.push_str(&format!(" {:>12}\n", attr.total()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Category;

    #[test]
    fn vocabulary_maps_and_rejects() {
        assert_eq!(phase_of_kind("send_lock"), Some(Phase::SenderLock));
        assert_eq!(phase_of_kind("pcie_wire"), Some(Phase::PcieWire));
        assert_eq!(phase_of_kind("prefetch"), Some(Phase::CacheStale));
        assert_eq!(phase_of_kind("flag_set"), None);
    }

    #[test]
    fn attribution_sums_to_window_with_gaps_and_overlap() {
        // [0,10) lock, [10,30) put with a [15,25) mpb_wait inside,
        // [40,50) wire inside a [35,55) vdma span, gap [30,35) + [55,60).
        let intervals = vec![
            (0, 10, Phase::SenderLock),
            (10, 30, Phase::SenderPut),
            (15, 25, Phase::MpbWait),
            (35, 55, Phase::Vdma),
            (40, 50, Phase::PcieWire),
        ];
        let a = attribute(&intervals, 0, 60);
        assert_eq!(a.get(Phase::SenderLock), 10);
        assert_eq!(a.get(Phase::SenderPut), 10); // 20 minus the enclosed wait
        assert_eq!(a.get(Phase::MpbWait), 10);
        assert_eq!(a.get(Phase::Vdma), 10);
        assert_eq!(a.get(Phase::PcieWire), 10);
        assert_eq!(a.get(Phase::Other), 10); // the two gaps
        assert_eq!(a.total(), 60);
    }

    #[test]
    fn window_clamps_intervals() {
        let intervals = vec![(0, 100, Phase::Vdma)];
        let a = attribute(&intervals, 20, 50);
        assert_eq!(a.get(Phase::Vdma), 30);
        assert_eq!(a.total(), 30);
    }

    #[test]
    fn empty_window_is_empty() {
        assert_eq!(attribute(&[], 5, 5).total(), 0);
        assert_eq!(attribute(&[(0, 9, Phase::Vdma)], 9, 3).total(), 0);
    }

    #[test]
    fn flow_timelines_reconstruct_per_message() {
        let t = Trace::enabled();
        let f1 = Some(1u64);
        let f2 = Some(2u64);
        t.begin_f(0, Category::Protocol, "send_lock", f1, || "rank0", Vec::new);
        t.end_f(5, Category::Protocol, "send_lock", f1, || "rank0");
        t.begin_f(5, Category::Protocol, "sender_put", f1, || "rank0", Vec::new);
        t.end_f(20, Category::Protocol, "sender_put", f1, || "rank0");
        t.begin_f(8, Category::Protocol, "recv_poll", f2, || "rank1", Vec::new);
        t.end_f(30, Category::Protocol, "recv_poll", f2, || "rank1");
        t.instant_f(40, Category::Protocol, "flag_set", f1, || "rank0", Vec::new);
        let tl = flow_timelines(&t);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].flow, 1);
        assert_eq!((tl[0].start, tl[0].end), (0, 40));
        assert_eq!(tl[0].attribution.get(Phase::SenderLock), 5);
        assert_eq!(tl[0].attribution.get(Phase::SenderPut), 15);
        assert_eq!(tl[0].attribution.get(Phase::Other), 20);
        assert_eq!(tl[0].attribution.total(), 40);
        assert_eq!(tl[1].flow, 2);
        assert_eq!(tl[1].attribution.get(Phase::RecvPoll), 22);
        assert_eq!(tl[1].attribution.total(), 22);
    }

    #[test]
    fn unmatched_begin_closes_at_window_end() {
        let t = Trace::enabled();
        t.begin_f(10, Category::Vdma, "vdma", Some(3), || "host", Vec::new);
        let a = run_attribution(&t, 0, 50);
        assert_eq!(a.get(Phase::Vdma), 40);
        assert_eq!(a.get(Phase::Other), 10);
        assert_eq!(a.total(), 50);
    }

    #[test]
    fn render_table_omits_empty_phases_and_sums() {
        let intervals = vec![(0, 10, Phase::Vdma)];
        let a = attribute(&intervals, 0, 12);
        let s = render_table("scheme", &[("x".into(), a)]);
        assert!(s.contains("vdma"));
        assert!(s.contains("other"));
        assert!(!s.contains("wire"));
        assert!(s.contains("12"));
    }
}
