//! Sharded lockstep execution: one deterministic worker per simulated
//! device, synchronised by conservative-lookahead epochs.
//!
//! The paper's topology makes devices interact only through the PCIe
//! tunnel, whose minimum cross-device latency (`pcie::model`) is a
//! classic PDES lookahead: any boundary message sent at virtual time `X`
//! delivers no earlier than `X + lookahead`. Executing every shard in
//! lockstep windows no wider than the lookahead therefore cannot change
//! any shard's event order — a message produced inside a window always
//! lands beyond the window's bound, so exchanging messages at the
//! barrier is invisible to virtual time. That is the byte-identity
//! contract `VSCC_SHARDS` advertises (DESIGN.md §5i).
//!
//! Shape of a run:
//!
//! * A [`ShardPlan`] names the shards. Each shard's build closure runs
//!   *on its worker thread* and constructs that shard's whole `Rc`/
//!   `RefCell` actor graph locally — nothing inside a shard needs
//!   `Send`; only the boundary types do ([`Tlp`] descriptors with
//!   payloads snapshotted to `Arc<[u8]>`).
//! * Shards connect through latency-stamped [`ConduitTx`]/[`ConduitRx`]
//!   pairs (latency ≥ lookahead, validated at plan time). Zero-latency
//!   couplings ([`ShardPlan::couple`]) merge shards into one *execution
//!   group* sharing a [`Sim`] — the standard PDES answer to
//!   tighter-than-lookahead dependencies. Latency-stamped couplings
//!   ([`ShardPlan::couple_stamped`]) declare the boundary cost instead
//!   and let [`partition_groups`] decide: at or above the lookahead the
//!   edge is a safe cut and the endpoints stay separate groups. The
//!   vSCC system stamps its host↔device MMIO plane at exactly the
//!   tunnel lookahead, so each `SccDevice` partitions into its own
//!   group (DESIGN.md §5i, "multi-group vSCC").
//! * Workers advance their groups through bounded windows
//!   ([`Sim::run_until`]), meet at a [`std::sync::Barrier`], exchange
//!   staged messages, agree on the next bound (minimum next event
//!   across groups plus the lookahead — idle spans cost one window, not
//!   one per slice), and repeat until every group finishes or stalls.
//! * Every observability stream stays shard-local: each group owns its
//!   own [`crate::audit::Audit`], installed around that group's windows
//!   only, and the per-group chains merge in shard order at the end
//!   ([`merge_chains`]). Reruns at any worker count produce identical
//!   per-group exports.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Barrier, Mutex, PoisonError};
use std::task::Waker;

use crate::audit::{self, Audit, DecisionKind};
use crate::executor::{EngineStats, RunStatus, Sim, SimError};
use crate::time::Cycles;

/// Environment knob selecting the sharded engine on bench targets
/// (mirrors `VSCC_FAULTS`): unset/empty means serial, `N >= 1` opts in.
pub const SHARDS_ENV: &str = "VSCC_SHARDS";

/// Parse [`SHARDS_ENV`]. Invalid values are a diagnosed error, never a
/// silent fallback to serial.
pub fn shards_from_env() -> Result<Option<u32>, String> {
    match std::env::var(SHARDS_ENV) {
        Err(_) => Ok(None),
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "{SHARDS_ENV}={v:?} is not a valid worker count (expected an integer >= 1)"
            )),
        },
    }
}

thread_local! {
    /// Test hook: a per-thread override of [`SHARDS_ENV`], so tests can
    /// pin a shard count without racing other tests through the
    /// process-global environment.
    static FORCED: Cell<Option<Option<u32>>> = const { Cell::new(None) };
}

/// Override [`effective_shards`] for this thread: `Some(n)` forces a
/// shard count, `None` forces serial. [`clear_forced_shards`] restores
/// the environment lookup.
pub fn force_shards(v: Option<u32>) {
    FORCED.with(|f| f.set(Some(v)));
}

/// Drop any [`force_shards`] override on this thread.
pub fn clear_forced_shards() {
    FORCED.with(|f| f.set(None));
}

/// The shard count in effect: a per-thread [`force_shards`] override if
/// set, otherwise [`shards_from_env`].
pub fn effective_shards() -> Result<Option<u32>, String> {
    if let Some(v) = FORCED.with(|f| f.get()) {
        return Ok(v);
    }
    shards_from_env()
}

/// A tunnel TLP descriptor — the only thing that crosses a shard
/// boundary. The payload is snapshotted to `Arc<[u8]>` at the sender,
/// so shard-local `Bytes` buffers never leave their thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tlp {
    /// Protocol discriminator (application-defined).
    pub kind: u32,
    /// Sending shard (application-defined id, usually the shard index).
    pub src: u32,
    /// Destination shard.
    pub dst: u32,
    /// Application tag (sequence number, flow id, ...).
    pub tag: u64,
    /// Payload bytes, snapshotted at the boundary.
    pub payload: Arc<[u8]>,
}

/// Index of a shard in its [`ShardPlan`].
pub type ShardId = usize;
/// Index of a conduit in its [`ShardPlan`].
pub type ConduitId = usize;

/// One edge of a coupling graph, as consumed by [`partition_groups`]:
/// `(a, b, latency)`. `None` is a zero-latency coupling
/// ([`ShardPlan::couple`]) that always merges its endpoints; `Some(l)`
/// is a latency-stamped coupling ([`ShardPlan::couple_stamped`]) that
/// merges them only when `l` is below the lookahead — at or above it,
/// the boundary is safe to cut (a message stamped `now + l` always
/// lands beyond the current epoch window) and the endpoints stay in
/// separate execution groups.
pub type CouplingEdge = (ShardId, ShardId, Option<Cycles>);

/// Partition `n` shards into execution groups given the coupling graph:
/// connected components of the sub-lookahead subgraph (zero-latency
/// edges plus stamped edges with `latency < lookahead`), each component
/// sorted, components ordered by smallest member. Deterministic (pure
/// union-find, no iteration-order dependence) and minimal: two shards
/// share a group *iff* a sub-lookahead path connects them, so a
/// latency-stamped boundary never glues shards together needlessly.
pub fn partition_groups(n: usize, lookahead: Cycles, edges: &[CouplingEdge]) -> Vec<Vec<ShardId>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b, latency) in edges {
        assert!(a < n && b < n, "coupling edge ({a}, {b}) names a shard out of range 0..{n}");
        let merges = match latency {
            None => true,
            Some(l) => l < lookahead,
        };
        if merges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
    }
    let mut groups: Vec<Vec<ShardId>> = Vec::new();
    let mut group_of_root = vec![usize::MAX; n];
    for s in 0..n {
        let root = find(&mut parent, s);
        if group_of_root[root] == usize::MAX {
            group_of_root[root] = groups.len();
            groups.push(Vec::new());
        }
        groups[group_of_root[root]].push(s);
    }
    groups
}

#[derive(Clone)]
struct ConduitDef {
    from: ShardId,
    to: ShardId,
    latency: Cycles,
}

/// A shard's harvest: runs on the worker after the run completes and
/// produces the shard's (Send) slice of [`ShardReport::outputs`].
type HarvestFn<R> = Box<dyn FnOnce() -> R>;
type BuildFn<R> = Box<dyn FnOnce(&Sim, &mut ShardCtx) -> HarvestFn<R> + Send>;

struct ShardDef<R> {
    name: String,
    build: BuildFn<R>,
}

/// Sending end of a cross-shard conduit. Stamps each message with
/// `now + latency` and stages it for the next barrier exchange.
#[derive(Clone)]
pub struct ConduitTx {
    sim: Sim,
    id: ConduitId,
    latency: Cycles,
    staged: Rc<RefCell<Mail>>,
}

impl ConduitTx {
    /// Stage `tlp` for delivery at `now + latency`. The message crosses
    /// at the next epoch barrier; because `latency >= lookahead`, the
    /// delivery time always lies beyond the current window's bound.
    pub fn send(&self, tlp: Tlp) {
        let now = self.sim.now();
        let deliver = now.saturating_add(self.latency);
        audit::record_at(now, DecisionKind::ChanSend, self.id as u64, deliver);
        self.staged.borrow_mut().push((deliver, tlp));
    }

    /// The conduit's modeled one-way latency in cycles.
    pub fn latency(&self) -> Cycles {
        self.latency
    }
}

/// A batch of staged boundary messages, each stamped with its delivery
/// cycle.
type Mail = Vec<(Cycles, Tlp)>;

#[derive(Default)]
struct RxShared {
    queue: VecDeque<(Cycles, Tlp)>,
    waker: Option<Waker>,
}

/// Receiving end of a cross-shard conduit. Delivery respects the
/// stamped time: a message becomes visible only once the receiver's
/// clock reaches it (the receive future arms a timer at the delivery
/// timestamp), so conduit latency is part of virtual time, not an
/// artifact of the barrier cadence.
#[derive(Clone)]
pub struct ConduitRx {
    sim: Sim,
    id: ConduitId,
    shared: Rc<RefCell<RxShared>>,
}

impl ConduitRx {
    /// Await the next message (in delivery order).
    pub async fn recv(&self) -> Tlp {
        loop {
            let pending_until = {
                let mut st = self.shared.borrow_mut();
                match st.queue.front() {
                    Some(&(deliver, _)) if deliver <= self.sim.now() => {
                        let (_, tlp) = st.queue.pop_front().expect("front just observed");
                        audit::record_at(
                            self.sim.now(),
                            DecisionKind::ChanRecv,
                            self.id as u64,
                            st.queue.len() as u64,
                        );
                        return tlp;
                    }
                    Some(&(deliver, _)) => Some(deliver),
                    None => None,
                }
            };
            match pending_until {
                // A message is in flight: sleep until its delivery time.
                Some(deliver) => self.sim.delay_until(deliver).await,
                // Nothing staged: park until the barrier injects one.
                None => {
                    std::future::poll_fn(|cx| {
                        let mut st = self.shared.borrow_mut();
                        if st.queue.is_empty() {
                            st.waker = Some(cx.waker().clone());
                            std::task::Poll::Pending
                        } else {
                            std::task::Poll::Ready(())
                        }
                    })
                    .await
                }
            }
        }
    }

    /// Pop a message whose delivery time has been reached, if any.
    pub fn try_recv(&self) -> Option<Tlp> {
        let mut st = self.shared.borrow_mut();
        match st.queue.front() {
            Some(&(deliver, _)) if deliver <= self.sim.now() => {
                let (_, tlp) = st.queue.pop_front().expect("front just observed");
                audit::record_at(
                    self.sim.now(),
                    DecisionKind::ChanRecv,
                    self.id as u64,
                    st.queue.len() as u64,
                );
                Some(tlp)
            }
            _ => None,
        }
    }
}

/// Per-shard handle passed to the build closure: the shard's conduit
/// endpoints.
pub struct ShardCtx {
    name: String,
    txs: Vec<(ConduitId, ConduitTx)>,
    rxs: Vec<(ConduitId, ConduitRx)>,
}

impl ShardCtx {
    /// The shard's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sending end of conduit `id` (must originate at this shard).
    pub fn tx(&self, id: ConduitId) -> ConduitTx {
        self.txs
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, tx)| tx.clone())
            .unwrap_or_else(|| panic!("shard '{}' is not the source of conduit {id}", self.name))
    }

    /// The receiving end of conduit `id` (must terminate at this shard).
    pub fn rx(&self, id: ConduitId) -> ConduitRx {
        self.rxs
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, rx)| rx.clone())
            .unwrap_or_else(|| panic!("shard '{}' is not the sink of conduit {id}", self.name))
    }
}

/// Declarative description of a sharded run: shards, conduits, and
/// zero-latency couplings. `R` is each shard's build-closure output.
pub struct ShardPlan<R> {
    lookahead: Cycles,
    shards: Vec<ShardDef<R>>,
    conduits: Vec<ConduitDef>,
    couplings: Vec<CouplingEdge>,
    audit_cadence: Option<u64>,
}

impl<R: Send> ShardPlan<R> {
    /// A plan with the given lookahead (the widest legal epoch window;
    /// derive it from the minimum cross-device latency of the platform
    /// model, e.g. `pcie::PcieModel::shard_lookahead`).
    pub fn new(lookahead: Cycles) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least one cycle");
        ShardPlan {
            lookahead,
            shards: Vec::new(),
            conduits: Vec::new(),
            couplings: Vec::new(),
            audit_cadence: None,
        }
    }

    /// The plan's lookahead in cycles.
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }

    /// Add a shard; `build` runs on the shard's worker thread and
    /// constructs the shard's local actor graph (spawning tasks on the
    /// provided [`Sim`]), returning a *harvest* closure. The harvest is
    /// called on the same worker once the whole run completes, so it can
    /// snapshot shard-local (`Rc`-held) results; only its return value —
    /// which lands in [`ShardReport::outputs`] — crosses threads.
    pub fn shard<H>(
        &mut self,
        name: &str,
        build: impl FnOnce(&Sim, &mut ShardCtx) -> H + Send + 'static,
    ) -> ShardId
    where
        H: FnOnce() -> R + 'static,
    {
        let build: BuildFn<R> = Box::new(move |sim, ctx| Box::new(build(sim, ctx)) as HarvestFn<R>);
        self.shards.push(ShardDef { name: name.to_string(), build });
        self.shards.len() - 1
    }

    /// Add a one-way conduit `from -> to` with the given latency, which
    /// must be at least the plan's lookahead (a tighter dependency needs
    /// [`ShardPlan::couple`] instead).
    pub fn conduit(
        &mut self,
        name: &str,
        from: ShardId,
        to: ShardId,
        latency: Cycles,
    ) -> ConduitId {
        assert!(from < self.shards.len() && to < self.shards.len(), "conduit endpoints must exist");
        assert!(
            latency >= self.lookahead,
            "conduit '{name}' latency {latency} is below the lookahead {} — \
             couple the shards instead",
            self.lookahead
        );
        self.conduits.push(ConduitDef { from, to, latency });
        self.conduits.len() - 1
    }

    /// Declare a zero-latency coupling: `a` and `b` must share a
    /// worker and a virtual clock (they merge into one execution group).
    pub fn couple(&mut self, a: ShardId, b: ShardId) {
        assert!(a < self.shards.len() && b < self.shards.len(), "coupled shards must exist");
        self.couplings.push((a, b, None));
    }

    /// Declare a latency-stamped coupling: every signal between `a` and
    /// `b` is stamped with at least `latency` cycles of modeled delay.
    /// When `latency >= lookahead` the boundary is a legal PDES cut and
    /// the shards stay in separate execution groups; below the
    /// lookahead it degenerates to [`ShardPlan::couple`]. This is how a
    /// system declares its boundary cost once and lets the partitioner
    /// decide — the vSCC host↔device MMIO plane stamps every doorbell
    /// and status read with `pcie::PcieModel::mmio_crossing_cycles()`
    /// (== the tunnel lookahead), so each device partitions into its
    /// own group.
    pub fn couple_stamped(&mut self, a: ShardId, b: ShardId, latency: Cycles) {
        assert!(a < self.shards.len() && b < self.shards.len(), "coupled shards must exist");
        self.couplings.push((a, b, Some(latency)));
    }

    /// Record per-group audit streams at the given epoch cadence; the
    /// report then carries each group's export and the shard-order
    /// merged chain.
    pub fn audit(&mut self, cadence: u64) {
        self.audit_cadence = Some(cadence);
    }

    /// Execute the plan on up to `workers` OS threads (clamped to the
    /// number of execution groups; `1` is the serial reference — same
    /// windows, same barriers, one thread). Deterministic at any worker
    /// count: per-group event order depends only on the plan.
    pub fn run(self, workers: usize) -> Result<ShardReport<R>, SimError> {
        assert!(!self.shards.is_empty(), "a shard plan needs at least one shard");
        let n_shards = self.shards.len();
        let groups = self.execution_groups();
        let n_groups = groups.len();
        let workers = workers.clamp(1, n_groups);
        let lookahead = self.lookahead;
        let cadence = self.audit_cadence;
        let conduits = self.conduits;

        // Round-robin groups over workers; each worker builds its
        // groups' state locally, so nothing inside a shard crosses a
        // thread.
        let mut specs: Vec<WorkerSpec<R>> =
            (0..workers).map(|_| WorkerSpec { groups: Vec::new() }).collect();
        let shard_names: Vec<String> = self.shards.iter().map(|s| s.name.clone()).collect();
        let mut defs: Vec<Option<ShardDef<R>>> = self.shards.into_iter().map(Some).collect();
        for (gi, members) in groups.iter().enumerate() {
            let name =
                members.iter().map(|&s| shard_names[s].as_str()).collect::<Vec<_>>().join("+");
            let shards = members
                .iter()
                .map(|&s| {
                    let def = defs[s].take().expect("each shard belongs to one group");
                    (s, def.name, def.build)
                })
                .collect();
            specs[gi % workers].groups.push(GroupSpec { gi, name, shards });
        }

        let ex = Exchange::<R>::new(workers, conduits.len(), n_groups, n_shards);
        let mut specs = specs.into_iter();
        let leader_spec = specs.next().expect("worker 0 exists");
        let epochs = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .map(|spec| {
                    let (ex, conduits) = (&ex, conduits.as_slice());
                    scope.spawn(move || {
                        worker_run(spec, ex, conduits, lookahead, cadence, false);
                    })
                })
                .collect();
            let epochs = worker_run(leader_spec, &ex, &conduits, lookahead, cadence, true);
            for h in handles {
                h.join().expect("shard worker exited abnormally");
            }
            epochs
        });

        // Assemble the report (error precedence: lowest group index).
        let finals: Vec<GroupFinal> = ex
            .finals
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|f| f.expect("every group finalizes"))
            .collect();
        for f in &finals {
            if let PostStatus::Err(e) = &f.status {
                return Err(e.clone());
            }
        }
        let stuck: Vec<String> = finals
            .iter()
            .filter(|f| matches!(f.status, PostStatus::Stalled))
            .flat_map(|f| f.report.stuck.clone())
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock(stuck));
        }
        let now = finals.iter().map(|f| f.report.now).max().unwrap_or(0);
        let mut stats = EngineStats::default();
        for f in &finals {
            stats += f.report.stats;
        }
        let chains: Option<Vec<u64>> = finals.iter().map(|f| f.report.audit_chain).collect();
        let outputs = ex
            .outputs
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|o| o.expect("clean run produced every shard output"))
            .collect();
        Ok(ShardReport {
            outputs,
            now,
            stats,
            epochs,
            workers,
            merged_chain: chains.map(|c| merge_chains(&c)),
            groups: finals.into_iter().map(|f| f.report).collect(),
        })
    }

    /// The plan's execution groups ([`partition_groups`] over its
    /// coupling graph): connected components of the sub-lookahead
    /// couplings, each sorted, ordered by smallest member.
    pub fn execution_groups(&self) -> Vec<Vec<ShardId>> {
        partition_groups(self.shards.len(), self.lookahead, &self.couplings)
    }
}

/// Fold per-group audit chains (in shard-group order) into one digest —
/// the export merge rule of DESIGN.md §5i. A sequential FNV-1a chain:
/// order-sensitive, so swapped groups change the merged digest.
pub fn merge_chains(chains: &[u64]) -> u64 {
    let mut h = audit::FNV_OFFSET;
    for &c in chains {
        h = audit::fold(h, c);
    }
    audit::fold(h, chains.len() as u64)
}

/// Per-group slice of a [`ShardReport`]: shard-aware engine statistics
/// and the group's audit stream.
#[derive(Clone, Debug)]
pub struct ShardGroupReport {
    /// Group name: member shard names joined with `+`.
    pub name: String,
    /// Member shard names in shard order.
    pub shards: Vec<String>,
    /// The group's final virtual timestamp.
    pub now: Cycles,
    /// The group's scheduler counters.
    pub stats: EngineStats,
    /// Registered-but-unfired timers at the end of the run.
    pub pending_timers: usize,
    /// Unfinished non-daemon tasks at the end of the run.
    pub live_tasks: usize,
    /// Stuck task names (shard-prefixed) if the group stalled.
    pub stuck: Vec<String>,
    /// The group's audit export (when [`ShardPlan::audit`] was set).
    pub audit_json: Option<String>,
    /// The group's final audit chain.
    pub audit_chain: Option<u64>,
}

/// Result of [`ShardPlan::run`].
#[derive(Clone, Debug)]
pub struct ShardReport<R> {
    /// Build-closure outputs, in shard order.
    pub outputs: Vec<R>,
    /// Final virtual time: the maximum across groups.
    pub now: Cycles,
    /// Engine statistics aggregated across all workers.
    pub stats: EngineStats,
    /// Barrier rounds executed.
    pub epochs: u64,
    /// Worker threads actually used (after clamping to group count).
    pub workers: usize,
    /// Shard-order fold of the per-group audit chains.
    pub merged_chain: Option<u64>,
    /// Per-group details, in group order.
    pub groups: Vec<ShardGroupReport>,
}

// ---------------------------------------------------------------------------
// Engine internals.

struct WorkerSpec<R> {
    groups: Vec<GroupSpec<R>>,
}

struct GroupSpec<R> {
    gi: usize,
    name: String,
    /// `(shard id, shard name, build)` in shard order.
    shards: Vec<(ShardId, String, BuildFn<R>)>,
}

#[derive(Clone, Debug)]
enum PostStatus {
    Done,
    Bound,
    Stalled,
    Err(SimError),
}

#[derive(Clone)]
struct GroupPost {
    status: PostStatus,
    next_deadline: Option<Cycles>,
}

#[derive(Clone, Copy)]
enum Decision {
    Continue { bound: Cycles },
    Stop,
}

struct GroupFinal {
    status: PostStatus,
    report: ShardGroupReport,
}

/// Everything the workers share. Mailboxes are double-buffered:
/// senders stage into `mail_next` during a window, and the leader
/// promotes `mail_next -> mail` between the barriers (where it has
/// exclusive access), so a receiver's `inject` sees exactly the
/// messages staged in *earlier* rounds — never a faster neighbour's
/// same-round traffic. Without the promotion step, whether same-round
/// mail was visible would depend on OS thread timing, and the wake it
/// triggers would contaminate the receiving group's audit stream.
/// (A same-round message delivers at `>=` the round's bound anyway —
/// send cycle `>= min_cand`, latency `>= lookahead` — so deferring its
/// injection one round cannot move any virtual-time event.)
struct Exchange<R> {
    barrier: Barrier,
    mail: Vec<Mutex<Mail>>,
    mail_next: Vec<Mutex<Mail>>,
    posts: Vec<Mutex<GroupPost>>,
    decision: Mutex<Decision>,
    outputs: Mutex<Vec<Option<R>>>,
    finals: Mutex<Vec<Option<GroupFinal>>>,
}

impl<R> Exchange<R> {
    fn new(workers: usize, n_conduits: usize, n_groups: usize, n_shards: usize) -> Self {
        Exchange {
            barrier: Barrier::new(workers),
            mail: (0..n_conduits).map(|_| Mutex::new(Vec::new())).collect(),
            mail_next: (0..n_conduits).map(|_| Mutex::new(Vec::new())).collect(),
            posts: (0..n_groups)
                .map(|_| Mutex::new(GroupPost { status: PostStatus::Bound, next_deadline: None }))
                .collect(),
            decision: Mutex::new(Decision::Stop),
            outputs: Mutex::new((0..n_shards).map(|_| None).collect()),
            finals: Mutex::new((0..n_groups).map(|_| None).collect()),
        }
    }
}

/// A group's worker-local state. Built on the worker thread; never
/// crosses it.
struct GroupRuntime<R> {
    gi: usize,
    name: String,
    sim: Sim,
    audit: Option<Audit>,
    status: PostStatus,
    outputs: Vec<(ShardId, HarvestFn<R>)>,
    /// Outgoing staging buffers, `(conduit, buffer)` in conduit order.
    out: Vec<(ConduitId, Rc<RefCell<Mail>>)>,
    /// Incoming queues, `(conduit, queue)` in conduit order.
    inq: Vec<(ConduitId, Rc<RefCell<RxShared>>)>,
    shard_names: Vec<String>,
    /// The last epoch bound this group ran up to (diagnostics: a
    /// deadlocked group reports the boundary it last crossed).
    last_bound: Cycles,
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn build_group<R>(
    spec: GroupSpec<R>,
    conduits: &[ConduitDef],
    cadence: Option<u64>,
) -> GroupRuntime<R> {
    let sim = Sim::new();
    // Honour `VSCC_AUDIT_ZOOM` exactly like the serial engine: a zoomed
    // group keeps its raw decisions for that epoch, so `audit_diff` can
    // name the first divergent decision of a sharded run too.
    let audit = cadence.map(|c| match crate::obs::audit_zoom_from_env() {
        Some(epoch) => Audit::with_zoom(c, epoch),
        None => Audit::new(c),
    });
    let members: Vec<ShardId> = spec.shards.iter().map(|(s, _, _)| *s).collect();
    let mut out = Vec::new();
    let mut inq = Vec::new();
    for (cid, cd) in conduits.iter().enumerate() {
        if members.contains(&cd.from) {
            out.push((cid, Rc::new(RefCell::new(Vec::new()))));
        }
        if members.contains(&cd.to) {
            inq.push((cid, Rc::new(RefCell::new(RxShared::default()))));
        }
    }
    let mut g = GroupRuntime {
        gi: spec.gi,
        name: spec.name,
        sim: sim.clone(),
        audit,
        status: PostStatus::Bound,
        outputs: Vec::new(),
        out,
        inq,
        shard_names: spec.shards.iter().map(|(_, n, _)| n.clone()).collect(),
        last_bound: 0,
    };
    let built = catch_unwind(AssertUnwindSafe(|| {
        let _guard = g.audit.as_ref().map(|a| a.install());
        let mut outputs = Vec::new();
        for (sid, sname, build) in spec.shards {
            let txs = g
                .out
                .iter()
                .filter(|(cid, _)| conduits[*cid].from == sid)
                .map(|(cid, staged)| {
                    (
                        *cid,
                        ConduitTx {
                            sim: sim.clone(),
                            id: *cid,
                            latency: conduits[*cid].latency,
                            staged: staged.clone(),
                        },
                    )
                })
                .collect();
            let rxs = g
                .inq
                .iter()
                .filter(|(cid, _)| conduits[*cid].to == sid)
                .map(|(cid, shared)| {
                    (*cid, ConduitRx { sim: sim.clone(), id: *cid, shared: shared.clone() })
                })
                .collect();
            let mut ctx = ShardCtx { name: sname, txs, rxs };
            outputs.push((sid, build(&sim, &mut ctx)));
        }
        outputs
    }));
    match built {
        Ok(outputs) => g.outputs = outputs,
        Err(p) => {
            g.status = PostStatus::Err(SimError::Aborted(format!(
                "shard group '{}' panicked during build: {}",
                g.name,
                panic_msg(&*p)
            )));
        }
    }
    g
}

fn run_window<R>(g: &mut GroupRuntime<R>, bound: Cycles) {
    if matches!(g.status, PostStatus::Err(_)) {
        return;
    }
    g.last_bound = bound;
    let res = catch_unwind(AssertUnwindSafe(|| {
        let _guard = g.audit.as_ref().map(|a| a.install());
        g.sim.run_until(bound)
    }));
    g.status = match res {
        Ok(Ok(RunStatus::Done(_))) => PostStatus::Done,
        Ok(Ok(RunStatus::Bound)) => PostStatus::Bound,
        Ok(Ok(RunStatus::Stalled)) => PostStatus::Stalled,
        Ok(Err(e)) => PostStatus::Err(e),
        Err(p) => PostStatus::Err(SimError::Aborted(format!(
            "shard group '{}' panicked: {}",
            g.name,
            panic_msg(&*p)
        ))),
    };
}

/// Move this round's staged messages into the *next-round* mailboxes;
/// the leader promotes them in [`decide`].
fn stage_out<R>(g: &GroupRuntime<R>, ex: &Exchange<R>) {
    for (cid, staged) in &g.out {
        let mut staged = staged.borrow_mut();
        if !staged.is_empty() {
            ex.mail_next[*cid].lock().unwrap_or_else(PoisonError::into_inner).append(&mut staged);
        }
    }
}

/// Drain this group's mailboxes into its receive queues, waking parked
/// receivers (in conduit order — deterministic at any worker count).
fn inject<R>(g: &GroupRuntime<R>, ex: &Exchange<R>) {
    for (cid, shared) in &g.inq {
        let delivered = {
            let mut mail = ex.mail[*cid].lock().unwrap_or_else(PoisonError::into_inner);
            if mail.is_empty() {
                continue;
            }
            std::mem::take(&mut *mail)
        };
        let mut st = shared.borrow_mut();
        st.queue.extend(delivered);
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

fn write_post<R>(g: &GroupRuntime<R>, ex: &Exchange<R>) {
    // Done groups stop scheduling (matching the serial run-to-completion
    // semantics), so their remaining daemon timers must not become bound
    // candidates — they would never fire and the rounds would spin.
    let next_deadline = match g.status {
        PostStatus::Bound => g.sim.next_timer_deadline(),
        _ => None,
    };
    *ex.posts[g.gi].lock().unwrap_or_else(PoisonError::into_inner) =
        GroupPost { status: g.status.clone(), next_deadline };
}

/// Leader-only: read every post and mailbox, pick the next bound or
/// stop. Runs strictly between the two barriers of a round.
fn decide<R>(ex: &Exchange<R>, lookahead: Cycles) {
    // Promote last round's staged mail. Every worker is parked at the
    // barrier, so this is the one place with exclusive mailbox access.
    for (mail, next) in ex.mail.iter().zip(&ex.mail_next) {
        let mut next = next.lock().unwrap_or_else(PoisonError::into_inner);
        if !next.is_empty() {
            mail.lock().unwrap_or_else(PoisonError::into_inner).append(&mut next);
        }
    }
    let mut all_done = true;
    let mut any_err = false;
    let mut cand: Option<Cycles> = None;
    for post in &ex.posts {
        let post = post.lock().unwrap_or_else(PoisonError::into_inner);
        match &post.status {
            PostStatus::Done => {}
            PostStatus::Err(_) => {
                any_err = true;
                all_done = false;
            }
            _ => all_done = false,
        }
        if let Some(d) = post.next_deadline {
            cand = Some(cand.map_or(d, |c: Cycles| c.min(d)));
        }
    }
    for mail in &ex.mail {
        for &(deliver, _) in mail.lock().unwrap_or_else(PoisonError::into_inner).iter() {
            cand = Some(cand.map_or(deliver, |c: Cycles| c.min(deliver)));
        }
    }
    let decision = if any_err || all_done {
        Decision::Stop
    } else {
        match cand {
            // Nothing pending anywhere and at least one group not done:
            // a cross-shard deadlock. Stop; assembly names the shards.
            None => Decision::Stop,
            Some(c) => Decision::Continue { bound: c.saturating_add(lookahead) },
        }
    };
    *ex.decision.lock().unwrap_or_else(PoisonError::into_inner) = decision;
}

fn finalize<R>(g: GroupRuntime<R>, ex: &Exchange<R>) {
    let mut status = g.status;
    // A stuck group names itself, its member shards, and the last epoch
    // boundary it crossed — with multi-shard groups no longer 1:1 with
    // the whole system, "which group, containing which devices, stalled
    // where" is the actionable diagnosis.
    let stuck = match status {
        PostStatus::Stalled => {
            let members = g.shard_names.join(", ");
            g.sim
                .live_task_names()
                .into_iter()
                .map(|t| {
                    format!(
                        "[group {} (members: {}) last epoch bound {}] {t}",
                        g.name, members, g.last_bound
                    )
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let harvested = catch_unwind(AssertUnwindSafe(|| {
        g.outputs.into_iter().map(|(sid, harvest)| (sid, harvest())).collect::<Vec<_>>()
    }));
    match harvested {
        Ok(results) => {
            let mut outputs = ex.outputs.lock().unwrap_or_else(PoisonError::into_inner);
            for (sid, r) in results {
                outputs[sid] = Some(r);
            }
        }
        Err(p) => {
            if !matches!(status, PostStatus::Err(_)) {
                status = PostStatus::Err(SimError::Aborted(format!(
                    "shard group '{}' panicked during harvest: {}",
                    g.name,
                    panic_msg(&*p)
                )));
            }
        }
    }
    let report = ShardGroupReport {
        name: g.name,
        shards: g.shard_names,
        now: g.sim.now(),
        stats: g.sim.engine_stats(),
        pending_timers: g.sim.pending_timers(),
        live_tasks: g.sim.live_tasks(),
        stuck,
        audit_json: g.audit.as_ref().map(|a| a.to_json()),
        audit_chain: g.audit.as_ref().map(|a| a.chain()),
    };
    ex.finals.lock().unwrap_or_else(PoisonError::into_inner)[g.gi] =
        Some(GroupFinal { status, report });
}

/// One worker's whole run: build its groups, then lockstep rounds of
/// `inject -> window -> stage -> post` around the two-phase barrier.
/// Returns the number of barrier rounds (meaningful on the leader).
fn worker_run<R>(
    spec: WorkerSpec<R>,
    ex: &Exchange<R>,
    conduits: &[ConduitDef],
    lookahead: Cycles,
    cadence: Option<u64>,
    leader: bool,
) -> u64 {
    let mut groups: Vec<GroupRuntime<R>> =
        spec.groups.into_iter().map(|gs| build_group(gs, conduits, cadence)).collect();
    // Window 0 needs no coordination: every group starts at cycle 0.
    for g in &mut groups {
        run_window(g, lookahead);
        stage_out(g, ex);
        write_post(g, ex);
    }
    let mut rounds = 1u64;
    loop {
        ex.barrier.wait();
        if leader {
            decide(ex, lookahead);
        }
        ex.barrier.wait();
        let decision = *ex.decision.lock().unwrap_or_else(PoisonError::into_inner);
        match decision {
            Decision::Stop => break,
            Decision::Continue { bound } => {
                rounds += 1;
                for g in &mut groups {
                    inject(g, ex);
                    run_window(g, bound);
                    stage_out(g, ex);
                    write_post(g, ex);
                }
            }
        }
    }
    for g in groups {
        finalize(g, ex);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOKAHEAD: Cycles = 1_000;

    fn payload(fill: u8, len: usize) -> Arc<[u8]> {
        vec![fill; len].into()
    }

    /// Two shards bouncing a TLP back and forth `reps` times; each
    /// shard harvests its receive log `(virtual time, tag)`.
    fn pingpong_plan(reps: u64) -> ShardPlan<Vec<(Cycles, u64)>> {
        let mut plan = ShardPlan::new(LOOKAHEAD);
        let a = plan.shard("alpha", move |sim, ctx| {
            let (tx, rx) = (ctx.tx(0), ctx.rx(1));
            let s = sim.clone();
            let log = Rc::new(RefCell::new(Vec::new()));
            let l = log.clone();
            sim.spawn_named("alpha-driver", async move {
                for rep in 0..reps {
                    tx.send(Tlp {
                        kind: 1,
                        src: 0,
                        dst: 1,
                        tag: rep,
                        payload: payload(rep as u8, 64),
                    });
                    let back = rx.recv().await;
                    assert_eq!(back.tag, rep);
                    l.borrow_mut().push((s.now(), back.tag));
                }
            });
            move || log.borrow().clone()
        });
        let b = plan.shard("beta", move |sim, ctx| {
            let (tx, rx) = (ctx.tx(1), ctx.rx(0));
            let s = sim.clone();
            let log = Rc::new(RefCell::new(Vec::new()));
            let l = log.clone();
            sim.spawn_named("beta-echo", async move {
                for _ in 0..reps {
                    let msg = rx.recv().await;
                    l.borrow_mut().push((s.now(), msg.tag));
                    tx.send(Tlp { kind: 2, src: 1, dst: 0, tag: msg.tag, payload: msg.payload });
                }
            });
            move || log.borrow().clone()
        });
        plan.conduit("a2b", a, b, LOOKAHEAD);
        plan.conduit("b2a", b, a, LOOKAHEAD);
        plan.audit(audit::DEFAULT_EPOCH_CYCLES);
        plan
    }

    #[test]
    fn env_knob_parses_and_diagnoses() {
        // Sequential set/remove inside one test: no other des test reads
        // the variable.
        std::env::remove_var(SHARDS_ENV);
        assert_eq!(shards_from_env(), Ok(None));
        std::env::set_var(SHARDS_ENV, "4");
        assert_eq!(shards_from_env(), Ok(Some(4)));
        std::env::set_var(SHARDS_ENV, "0");
        assert!(shards_from_env().is_err());
        std::env::set_var(SHARDS_ENV, "two");
        let err = shards_from_env().unwrap_err();
        assert!(err.contains("VSCC_SHARDS"), "diagnostic names the knob: {err}");
        std::env::set_var(SHARDS_ENV, "");
        assert_eq!(shards_from_env(), Ok(None));
        std::env::set_var(SHARDS_ENV, "2");
        force_shards(None);
        assert_eq!(effective_shards(), Ok(None));
        force_shards(Some(8));
        assert_eq!(effective_shards(), Ok(Some(8)));
        clear_forced_shards();
        assert_eq!(effective_shards(), Ok(Some(2)));
        std::env::remove_var(SHARDS_ENV);
    }

    #[test]
    fn conduit_latency_is_respected() {
        let report = pingpong_plan(3).run(1).unwrap();
        let logs = &report.outputs;
        // beta's k-th receive: alpha sends the k-th ping only after the
        // (k-1)-th pong arrived, so each rep costs one round trip.
        for (k, &(t, tag)) in logs[1].iter().enumerate() {
            assert_eq!(tag, k as u64);
            assert_eq!(t, (2 * k as u64 + 1) * LOOKAHEAD, "ping {k} delivery time");
        }
        for (k, &(t, _)) in logs[0].iter().enumerate() {
            assert_eq!(t, (2 * k as u64 + 2) * LOOKAHEAD, "pong {k} delivery time");
        }
        assert_eq!(report.now, 6 * LOOKAHEAD);
    }

    #[test]
    fn worker_counts_are_byte_identical() {
        let base = pingpong_plan(5).run(1).unwrap();
        for workers in [2, 8] {
            let r = pingpong_plan(5).run(workers).unwrap();
            assert_eq!(r.outputs, base.outputs, "{workers} workers diverged");
            assert_eq!(r.now, base.now);
            assert_eq!(r.stats, base.stats);
            assert_eq!(r.merged_chain, base.merged_chain);
            assert_eq!(r.epochs, base.epochs);
            for (g, gb) in r.groups.iter().zip(base.groups.iter()) {
                assert_eq!(g.audit_json, gb.audit_json, "group '{}' audit diverged", g.name);
            }
        }
    }

    #[test]
    fn coupled_shards_share_a_group() {
        let mut plan: ShardPlan<()> = ShardPlan::new(LOOKAHEAD);
        for name in ["a", "b", "c", "d"] {
            plan.shard(name, |_, _| || ());
        }
        plan.couple(0, 2);
        plan.couple(3, 2);
        let groups = plan.execution_groups();
        assert_eq!(groups, vec![vec![0, 2, 3], vec![1]]);
        let report = plan.run(4).unwrap();
        assert_eq!(report.workers, 2, "workers clamp to the group count");
        assert_eq!(report.groups[0].name, "a+c+d");
    }

    #[test]
    #[should_panic(expected = "below the lookahead")]
    fn sub_lookahead_conduit_is_rejected() {
        let mut plan: ShardPlan<()> = ShardPlan::new(LOOKAHEAD);
        let a = plan.shard("a", |_, _| || ());
        let b = plan.shard("b", |_, _| || ());
        plan.conduit("too-tight", a, b, LOOKAHEAD - 1);
    }

    #[test]
    fn cross_shard_deadlock_names_the_group() {
        let mut plan: ShardPlan<()> = ShardPlan::new(LOOKAHEAD);
        plan.shard("quiet", |_, _| || ());
        plan.shard("waiter", |sim, ctx| {
            let rx = ctx.rx(0);
            sim.spawn_named("starved-recv", async move {
                rx.recv().await;
            });
            || ()
        });
        plan.shard("buddy", |_, _| || ());
        plan.conduit("silent", 0, 1, LOOKAHEAD);
        plan.couple(1, 2);
        match plan.run(2) {
            Err(SimError::Deadlock(names)) => {
                // The report names the stuck *group*, its member shards,
                // and the last epoch boundary it crossed (window 0 runs
                // up to the lookahead before the engine stops).
                assert_eq!(
                    names,
                    vec![format!(
                        "[group waiter+buddy (members: waiter, buddy) \
                         last epoch bound {LOOKAHEAD}] starved-recv"
                    )]
                );
            }
            other => panic!("expected a group-named deadlock, got {other:?}"),
        }
    }

    #[test]
    fn stamped_couplings_partition_at_the_lookahead() {
        let mut plan: ShardPlan<()> = ShardPlan::new(LOOKAHEAD);
        for name in ["host", "dev0", "dev1", "dev2"] {
            plan.shard(name, |_, _| || ());
        }
        // Boundary cost == lookahead: every device is its own group.
        for d in 1..4 {
            plan.couple_stamped(0, d, LOOKAHEAD);
        }
        assert_eq!(plan.execution_groups(), vec![vec![0], vec![1], vec![2], vec![3]]);
        // One sub-lookahead edge pulls that device into the host group.
        plan.couple_stamped(0, 2, LOOKAHEAD - 1);
        assert_eq!(plan.execution_groups(), vec![vec![0, 2], vec![1], vec![3]]);
        let report = plan.run(8).unwrap();
        assert_eq!(report.workers, 3, "workers clamp to the group count");
        assert_eq!(report.groups[0].name, "host+dev1");
    }

    #[test]
    fn partition_groups_is_deterministic_and_minimal() {
        // Mixed zero-latency and stamped edges, deliberately unordered.
        let edges: Vec<CouplingEdge> = vec![
            (4, 2, Some(LOOKAHEAD)),     // safe cut: no merge
            (3, 1, None),                // zero-latency: merge
            (0, 4, Some(LOOKAHEAD - 1)), // sub-lookahead: merge
            (2, 2, Some(1)),             // self edge: no-op
        ];
        let groups = partition_groups(6, LOOKAHEAD, &edges);
        assert_eq!(groups, vec![vec![0, 4], vec![1, 3], vec![2], vec![5]]);
        // Deterministic: recomputing (and reversing edge order) agrees.
        let mut rev = edges.clone();
        rev.reverse();
        assert_eq!(partition_groups(6, LOOKAHEAD, &rev), groups);
    }

    #[test]
    fn build_panic_is_a_diagnosed_abort() {
        let mut plan: ShardPlan<()> = ShardPlan::new(LOOKAHEAD);
        plan.shard("fine", |_, _| || ());
        plan.shard("broken", |_, _| {
            if true {
                panic!("bring-up exploded");
            }
            || ()
        });
        match plan.run(2) {
            Err(SimError::Aborted(msg)) => {
                assert!(msg.contains("broken"), "names the group: {msg}");
                assert!(msg.contains("bring-up exploded"), "carries the payload: {msg}");
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn skip_ahead_bounds_idle_spans() {
        // Two idle shards with one late event each: the rounds must not
        // scale with the idle span (skip-ahead picks the next event).
        let mut plan: ShardPlan<Cycles> = ShardPlan::new(LOOKAHEAD);
        for name in ["slow-a", "slow-b"] {
            plan.shard(name, |sim, _| {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(50_000_000).await;
                });
                || 0
            });
        }
        let report = plan.run(2).unwrap();
        assert_eq!(report.now, 50_000_000);
        assert!(report.epochs < 10, "skip-ahead must not spin: {} rounds", report.epochs);
    }

    #[test]
    fn merged_chain_is_shard_order_sensitive() {
        assert_ne!(merge_chains(&[1, 2]), merge_chains(&[2, 1]));
        assert_eq!(merge_chains(&[1, 2]), merge_chains(&[1, 2]));
    }
}
