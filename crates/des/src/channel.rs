//! Simulated message channels (unbounded and bounded MPSC).
//!
//! Used for request queues between simulated agents — e.g. the SIF-to-host
//! request stream that the communication task drains.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::Notify;

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    closed: bool,
}

/// Sending half of a simulated channel.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
    notify_recv: Notify,
    notify_send: Notify,
}

/// Receiving half of a simulated channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
    notify_recv: Notify,
    notify_send: Notify,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: self.state.clone(),
            notify_recv: self.notify_recv.clone(),
            notify_send: self.notify_send.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            st.closed = true;
            drop(st);
            self.notify_recv.notify_all();
        }
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel; senders block when `cap` items are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be > 0");
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        capacity,
        senders: 1,
        closed: false,
    }));
    let notify_recv = Notify::new();
    let notify_send = Notify::new();
    (
        Sender {
            state: state.clone(),
            notify_recv: notify_recv.clone(),
            notify_send: notify_send.clone(),
        },
        Receiver { state, notify_recv, notify_send },
    )
}

impl<T> Sender<T> {
    /// Enqueue an item, waiting for space on a bounded channel.
    pub async fn send(&self, value: T) {
        let state = self.state.clone();
        self.notify_send
            .wait_until(move || {
                let st = state.borrow();
                match st.capacity {
                    Some(cap) => st.queue.len() < cap,
                    None => true,
                }
            })
            .await;
        let depth = {
            let mut st = self.state.borrow_mut();
            st.queue.push_back(value);
            st.queue.len()
        };
        crate::audit::record(crate::audit::DecisionKind::ChanSend, depth as u64, 0);
        self.notify_recv.notify_all();
    }

    /// Enqueue without waiting; returns `Err(value)` if the channel is full.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let mut st = self.state.borrow_mut();
        if let Some(cap) = st.capacity {
            if st.queue.len() >= cap {
                return Err(value);
            }
        }
        st.queue.push_back(value);
        let depth = st.queue.len();
        drop(st);
        crate::audit::record(crate::audit::DecisionKind::ChanSend, depth as u64, 0);
        self.notify_recv.notify_all();
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next item; resolves to `None` once all senders are gone
    /// and the queue is drained.
    pub async fn recv(&self) -> Option<T> {
        loop {
            {
                let mut st = self.state.borrow_mut();
                if let Some(v) = st.queue.pop_front() {
                    let depth = st.queue.len();
                    drop(st);
                    crate::audit::record(crate::audit::DecisionKind::ChanRecv, depth as u64, 0);
                    self.notify_send.notify_all();
                    return Some(v);
                }
                if st.closed {
                    return None;
                }
            }
            let state = self.state.clone();
            self.notify_recv
                .wait_until(move || {
                    let st = state.borrow();
                    !st.queue.is_empty() || st.closed
                })
                .await;
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Option<T> {
        let (v, depth) = {
            let mut st = self.state.borrow_mut();
            let v = st.queue.pop_front();
            let depth = st.queue.len();
            (v, depth)
        };
        if v.is_some() {
            crate::audit::record(crate::audit::DecisionKind::ChanRecv, depth as u64, 0);
            self.notify_send.notify_all();
        }
        v
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn unbounded_send_recv() {
        let sim = Sim::new();
        let (tx, rx) = unbounded::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.delay(10).await;
                tx.send(i).await;
            }
        });
        let got = sim
            .block_on(async move {
                let mut v = Vec::new();
                while let Some(x) = rx.recv().await {
                    v.push(x);
                }
                v
            })
            .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u64>(1);
        let s = sim.clone();
        sim.spawn_named("producer", async move {
            for i in 0..3 {
                tx.send(i).await;
            }
            // Third send cannot complete before the consumer drains at t=10.
            assert!(s.now() >= 10);
        });
        let s = sim.clone();
        sim.spawn_named("consumer", async move {
            s.delay(10).await;
            while let Some(_v) = rx.recv().await {}
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_none_after_all_senders_drop() {
        let sim = Sim::new();
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        sim.spawn(async move {
            tx.send(1).await;
            drop(tx);
        });
        sim.spawn(async move {
            tx2.send(2).await;
            drop(tx2);
        });
        let got = sim
            .block_on(async move {
                let mut v = Vec::new();
                while let Some(x) = rx.recv().await {
                    v.push(x);
                }
                v
            })
            .unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn try_send_full_returns_value() {
        let (tx, _rx) = bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(2));
    }

    #[test]
    fn try_recv_empty_is_none() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), None);
    }
}
