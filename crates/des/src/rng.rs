//! Deterministic random number generation for workloads and fault
//! injection. All randomness in the repository flows through [`DetRng`],
//! seeded explicitly, so every experiment is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, explicitly-seeded RNG.
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Seed deterministically from a 64-bit value.
    pub fn seed_from(seed: u64) -> Self {
        DetRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent child stream, e.g. one per simulated core.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base: u64 = self.inner.random();
        DetRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)) // golden-ratio mix
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// A random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Fill a byte buffer (payload generation).
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = DetRng::seed_from(42);
        let mut parent2 = DetRng::seed_from(42);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
