//! Deterministic random number generation for workloads and fault
//! injection. All randomness in the repository flows through [`DetRng`],
//! seeded explicitly, so every experiment is reproducible.
//!
//! The generator is a self-contained xoshiro256++ with splitmix64 seed
//! expansion — no external crates, so the stream is stable across
//! toolchains and dependency upgrades.

/// A small, fast, explicitly-seeded RNG (xoshiro256++).
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seed deterministically from a 64-bit value.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Derive an independent child stream, e.g. one per simulated core.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base: u64 = self.next_u64();
        DetRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)) // golden-ratio mix
    }

    /// Uniform value in `[lo, hi)`, unbiased (Lemire rejection).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        let mut m = (self.next_u64() as u128) * (span as u128);
        if (m as u64) < span {
            let t = span.wrapping_neg() % span;
            while (m as u64) < t {
                m = (self.next_u64() as u128) * (span as u128);
            }
        }
        lo + (m >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits in [0, 1); strictly below p, so 0.0
        // never fires and 1.0 always does.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A random u64.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        crate::audit::record(crate::audit::DecisionKind::RngDraw, result, 0);
        result
    }

    /// Fill a byte buffer (payload generation).
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = DetRng::seed_from(42);
        let mut parent2 = DetRng::seed_from(42);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_is_deterministic_and_covers_tail() {
        let mut a = DetRng::seed_from(9);
        let mut b = DetRng::seed_from(9);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }
}
