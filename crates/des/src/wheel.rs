//! Hierarchical timer wheel with cancellable entries.
//!
//! Replaces the executor's former `BinaryHeap<Reverse<TimerEntry>>`. The
//! wheel keeps the exact `(deadline, seq)` FIFO tie-break of the heap —
//! two timers registered for the same cycle fire in registration order —
//! while making the common operations cheap:
//!
//! * **insert** — O(1): pick a level from the bits in which the deadline
//!   differs from the wheel base (`deadline ^ base`, six bits per level,
//!   the placement rule of hashed hierarchical wheels), push the slab
//!   index onto that slot's vector.
//! * **cancel** — O(1): tombstone the slab entry. A losing `race` arm or a
//!   dropped [`crate::executor::Delay`] withdraws its timer instead of
//!   leaving it to fire spuriously and drag the virtual clock forward.
//! * **pop** — amortised O(1): walk the base forward over occupancy
//!   bitmaps (`u64` per level, one bit per slot), cascading higher-level
//!   slots down as the base crosses them. Deadlines further than the
//!   wheel span (64⁴ cycles) live in an overflow heap and are promoted
//!   into the wheel when the base gets close enough.
//!
//! The wheel is generic over its payload `P` so the executor can store a
//! plain task id for the common in-task `delay` (fired straight onto the
//! ready queue, no `Waker` machinery) and a boxed waker only for foreign
//! contexts; tests and property checks use bare integers.
//!
//! Determinism notes: a level-0 slot holds exactly one deadline (all its
//! entries agree with the base on every bit above the low six), but
//! cascading can interleave older and newer entries, so the slot is
//! sorted by `seq` when it is turned into the firing batch. Cancelled
//! entries never advance the base: tombstones are purged while walking,
//! and `pop_next` returns `None` without moving anything once no live
//! entry remains.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycles;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64 slots per level
const LEVELS: usize = 4;
/// Deadlines at least this far from the base go to the overflow heap.
pub(crate) const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32); // 64^4 = 2^24

/// Handle to a registered timer; used to withdraw it. The generation
/// guards against cancelling a recycled slab slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerId {
    idx: u32,
    generation: u32,
}

impl TimerId {
    /// `(slab index, generation)` — the audit stream's stable identity
    /// for a cancelled timer.
    pub(crate) fn parts(self) -> (u32, u32) {
        (self.idx, self.generation)
    }
}

struct Entry<P> {
    deadline: Cycles,
    seq: u64,
    /// `None` marks a cancelled tombstone awaiting purge.
    payload: Option<P>,
    generation: u32,
}

/// The wheel itself. One per [`crate::Sim`].
pub struct TimerWheel<P> {
    slab: Vec<Entry<P>>,
    free: Vec<u32>,
    levels: [[Vec<u32>; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    /// Entries too far out for the wheel, ordered by `(deadline, seq)`.
    overflow: BinaryHeap<Reverse<(Cycles, u64, u32)>>,
    /// The wheel origin; never passes a live deadline, never moves back.
    base: Cycles,
    next_seq: u64,
    /// Live (non-cancelled) entries, wherever they sit.
    live: usize,
    /// Current firing batch: one level-0 slot's live entries, seq-sorted.
    firing: VecDeque<u32>,
    firing_deadline: Cycles,
    /// Emptied slot vectors kept for reuse: taking a slot swaps one of
    /// these in, so steady-state insert/fire cycles never return slot
    /// storage to the allocator.
    spare_slots: Vec<Vec<u32>>,
    /// Reusable `load_firing` scratch (seq-sort staging).
    batch: Vec<u32>,
    /// Sequence number of the entry most recently popped; read by the
    /// audit stream to identify which timer fired.
    last_popped_seq: u64,
}

/// Cap on recycled slot vectors; enough for every occupied slot of a
/// busy wheel without hoarding after a burst.
const MAX_SPARE_SLOTS: usize = 64;

fn level_for(xor: u64) -> usize {
    debug_assert!(xor < WHEEL_SPAN);
    if xor < 1 << SLOT_BITS {
        0
    } else if xor < 1 << (2 * SLOT_BITS) {
        1
    } else if xor < 1 << (3 * SLOT_BITS) {
        2
    } else {
        3
    }
}

impl<P> Default for TimerWheel<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> TimerWheel<P> {
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            levels: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            base: 0,
            next_seq: 0,
            live: 0,
            firing: VecDeque::new(),
            firing_deadline: 0,
            spare_slots: Vec::new(),
            batch: Vec::new(),
            last_popped_seq: 0,
        }
    }

    /// Sequence number the next [`Self::insert`] will assign.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the most recently popped entry.
    pub(crate) fn last_popped_seq(&self) -> u64 {
        self.last_popped_seq
    }

    /// Empty `level`/`slot`, handing its vector back for iteration. The
    /// slot is left holding a recycled (empty, pre-sized) vector so the
    /// next `place` into it does not allocate.
    fn take_slot(&mut self, level: usize, slot: usize) -> Vec<u32> {
        let spare = self.spare_slots.pop().unwrap_or_default();
        std::mem::replace(&mut self.levels[level][slot], spare)
    }

    /// Return an iterated slot vector to the spare list.
    fn recycle_slot(&mut self, mut v: Vec<u32>) {
        if v.capacity() > 0 && self.spare_slots.len() < MAX_SPARE_SLOTS {
            v.clear();
            self.spare_slots.push(v);
        }
    }

    /// Number of live (non-cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Register a timer. `deadline` must not lie before the last popped
    /// deadline (the executor only registers timers at or after `now`).
    pub fn insert(&mut self, deadline: Cycles, payload: P) -> TimerId {
        debug_assert!(deadline >= self.base, "timer registered in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let e = &mut self.slab[idx as usize];
                e.deadline = deadline;
                e.seq = seq;
                e.payload = Some(payload);
                idx
            }
            None => {
                let idx = self.slab.len() as u32;
                self.slab.push(Entry { deadline, seq, payload: Some(payload), generation: 0 });
                idx
            }
        };
        self.live += 1;
        self.place(idx, deadline, seq);
        TimerId { idx, generation: self.slab[idx as usize].generation }
    }

    /// Withdraw a timer. Returns `true` if it was still pending (a fired
    /// or already-cancelled id is a no-op). The entry stays in its slot
    /// as a tombstone and is reclaimed lazily; crucially, a slot holding
    /// only tombstones never advances the virtual clock.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.slab.get_mut(id.idx as usize) {
            Some(e) if e.generation == id.generation && e.payload.is_some() => {
                e.payload = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Earliest live deadline, if any. Positions the wheel so the
    /// following `pop_next` is cheap.
    pub fn peek_deadline(&mut self) -> Option<Cycles> {
        self.peek_capped(Cycles::MAX)
    }

    /// Like [`Self::peek_deadline`], but never walks the base past `cap`:
    /// returns `None` when every live deadline lies beyond it. Keeps the
    /// invariant that the base never overtakes the executor's `now`, so
    /// later inserts at `now + δ` stay legal.
    fn peek_capped(&mut self, cap: Cycles) -> Option<Cycles> {
        loop {
            match self.firing.front() {
                Some(&idx) if self.slab[idx as usize].payload.is_some() => {
                    return Some(self.firing_deadline);
                }
                Some(&idx) => {
                    self.firing.pop_front();
                    self.release(idx);
                }
                None => break,
            }
        }
        if self.settle(cap) {
            Some(self.firing_deadline)
        } else {
            None
        }
    }

    fn pop_front_validated(&mut self) -> (Cycles, P) {
        let idx = self.firing.pop_front().expect("peek positioned a live entry");
        let payload = self.slab[idx as usize].payload.take().expect("peek validated liveness");
        self.last_popped_seq = self.slab[idx as usize].seq;
        self.release(idx);
        self.live -= 1;
        (self.firing_deadline, payload)
    }

    /// Pop the earliest live timer in `(deadline, seq)` order.
    pub fn pop_next(&mut self) -> Option<(Cycles, P)> {
        self.peek_capped(Cycles::MAX)?;
        Some(self.pop_front_validated())
    }

    /// Pop the earliest live timer whose deadline is at or before `cap`;
    /// `None` leaves the base at or before `cap`, so an epoch-sliced run
    /// can later insert cross-window deliveries below any further-out
    /// deadline without tripping the past-insert guard.
    pub fn pop_next_capped(&mut self, cap: Cycles) -> Option<(Cycles, P)> {
        self.peek_capped(cap)?;
        Some(self.pop_front_validated())
    }

    /// Earliest live deadline *without* walking the base (O(slab) scan).
    /// The epoch driver calls this between windows, where a later insert
    /// below the scanned deadline must stay legal — `peek_deadline` would
    /// advance the base past it.
    pub fn earliest_live_deadline(&self) -> Option<Cycles> {
        if self.live == 0 {
            return None;
        }
        self.slab.iter().filter_map(|e| e.payload.as_ref().map(|_| e.deadline)).min()
    }

    /// Pop the earliest live timer only if it fires exactly at `deadline`
    /// (used to batch same-timestamp wakeups). The base never advances
    /// past `deadline` here, even when the next timer is far out.
    pub fn pop_next_at(&mut self, deadline: Cycles) -> Option<P> {
        if self.peek_capped(deadline)? == deadline {
            Some(self.pop_front_validated().1)
        } else {
            None
        }
    }

    fn release(&mut self, idx: u32) {
        let e = &mut self.slab[idx as usize];
        e.payload = None;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(idx);
    }

    /// Drop a whole slot vector of tombstones (entries whose deadline the
    /// base already passed; live entries can never sit behind the base).
    fn purge_slot(&mut self, level: usize, slot: usize) {
        let v = self.take_slot(level, slot);
        self.occupied[level] &= !(1 << slot);
        for &idx in &v {
            debug_assert!(self.slab[idx as usize].payload.is_none(), "live timer behind the base");
            self.release(idx);
        }
        self.recycle_slot(v);
    }

    fn place(&mut self, idx: u32, deadline: Cycles, seq: u64) {
        let xor = deadline ^ self.base;
        if xor >= WHEEL_SPAN {
            self.overflow.push(Reverse((deadline, seq, idx)));
            return;
        }
        let level = level_for(xor);
        let slot = ((deadline >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(idx);
        self.occupied[level] |= 1 << slot;
    }

    /// Advance the base to the earliest live deadline (never past `cap`)
    /// and load that level-0 slot into the firing batch. Returns `false`
    /// when no live entry remains at or before `cap` (the base stays put
    /// on tombstone-only content: cancelled timers never move time).
    fn settle(&mut self, cap: Cycles) -> bool {
        if self.live == 0 {
            return false;
        }
        loop {
            // Purge cancelled overflow tops, then promote entries whose
            // deadline now fits the wheel (high bits agree with the base).
            while let Some(&Reverse((deadline, seq, idx))) = self.overflow.peek() {
                if self.slab[idx as usize].payload.is_none() {
                    self.overflow.pop();
                    self.release(idx);
                } else if deadline ^ self.base < WHEEL_SPAN {
                    self.overflow.pop();
                    self.place(idx, deadline, seq);
                } else {
                    break;
                }
            }
            // Cascade every level whose *current* slot is occupied: its
            // entries now differ from the base only below that level (XOR
            // placement), i.e. they may be due before anything else —
            // they must reach level 0 before any base jump is planned.
            if let Some(level) = (1..LEVELS).find(|&l| {
                let cur = (self.base >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1);
                self.occupied[l] & (1 << cur) != 0
            }) {
                let shift = SLOT_BITS * level as u32;
                let cur = ((self.base >> shift) & (SLOTS as u64 - 1)) as usize;
                let v = self.take_slot(level, cur);
                self.occupied[level] &= !(1 << cur);
                for &idx in &v {
                    let e = &self.slab[idx as usize];
                    if e.payload.is_none() {
                        self.release(idx);
                    } else {
                        let (deadline, seq) = (e.deadline, e.seq);
                        debug_assert!((deadline ^ self.base) < (1u64 << shift));
                        self.place(idx, deadline, seq);
                    }
                }
                self.recycle_slot(v);
                continue;
            }
            if self.occupied[0] != 0 {
                let cur = (self.base & (SLOTS as u64 - 1)) as u32;
                let rotated = self.occupied[0].rotate_right(cur);
                let dist = rotated.trailing_zeros() as u64;
                let slot = ((cur as u64 + dist) % SLOTS as u64) as usize;
                if (slot as u64) < cur as u64 {
                    // Wrapped: a stale slot from a finished rotation —
                    // live entries can't live behind the base.
                    self.purge_slot(0, slot);
                    continue;
                }
                let deadline = self.base + dist;
                if deadline > cap {
                    return false;
                }
                if self.load_firing(slot, deadline) {
                    return true;
                }
                continue;
            }
            let Some(level) = (1..LEVELS).find(|&l| self.occupied[l] != 0) else {
                match self.overflow.peek() {
                    // The wheel is empty: jump straight to the overflow
                    // top (tombstoned tops were purged above).
                    Some(&Reverse((deadline, _, _))) => {
                        if deadline > cap {
                            return false;
                        }
                        self.base = deadline;
                        continue;
                    }
                    None => {
                        debug_assert_eq!(self.live, 0, "live timer unaccounted for");
                        return false;
                    }
                }
            };
            let shift = SLOT_BITS * level as u32;
            let span = 1u64 << shift;
            let cur = ((self.base >> shift) & (SLOTS as u64 - 1)) as u32;
            let rotated = self.occupied[level].rotate_right(cur);
            let dist = rotated.trailing_zeros() as u64;
            debug_assert!(dist > 0, "current slot cascades were exhausted above");
            let slot = ((cur as u64 + dist) % SLOTS as u64) as usize;
            if (slot as u64) < cur as u64 {
                self.purge_slot(level, slot);
                continue;
            }
            // Jump to the start of the next occupied slot at this level,
            // but never past a higher level's next slot boundary (its
            // occupants may cascade to earlier deadlines) or past the
            // point where the overflow top becomes promotable. No level's
            // current slot is occupied here, so every live deadline is at
            // or beyond the smallest of these candidates.
            let mut target = (self.base & !(span * SLOTS as u64 - 1)) + (slot as u64) * span;
            for l in (level + 1)..LEVELS {
                if self.occupied[l] != 0 {
                    let lspan = 1u64 << (SLOT_BITS * l as u32);
                    target = target.min((self.base & !(lspan - 1)) + lspan);
                }
            }
            if let Some(&Reverse((deadline, _, _))) = self.overflow.peek() {
                target = target.min(deadline & !(WHEEL_SPAN - 1));
            }
            if target > cap {
                return false;
            }
            debug_assert!(target > self.base, "base walk must make progress");
            self.base = target;
        }
    }

    /// Turn level-0 slot `slot` (single deadline `deadline`) into the
    /// firing batch, seq-sorted, tombstones dropped. Returns `false` if
    /// the slot held only tombstones.
    fn load_firing(&mut self, slot: usize, deadline: Cycles) -> bool {
        let v = self.take_slot(0, slot);
        self.occupied[0] &= !(1 << slot);
        debug_assert!(self.firing.is_empty());
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        for &idx in &v {
            let e = &self.slab[idx as usize];
            if e.payload.is_none() {
                self.release(idx);
            } else {
                debug_assert_eq!(e.deadline, deadline, "level-0 slot must hold one deadline");
                batch.push(idx);
            }
        }
        self.recycle_slot(v);
        let loaded = !batch.is_empty();
        if loaded {
            batch.sort_unstable_by_key(|&idx| self.slab[idx as usize].seq);
            self.firing.extend(batch.iter().copied());
            self.firing_deadline = deadline;
        }
        self.batch = batch;
        loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<Cycles> {
        let mut out = Vec::new();
        while let Some((d, _)) = wheel.pop_next() {
            out.push(d);
        }
        out
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut wh = TimerWheel::new();
        for d in [500u64, 3, 70_000, 3, 1 << 30, 64, 0] {
            wh.insert(d, 0u32);
        }
        assert_eq!(drain(&mut wh), vec![0, 3, 3, 64, 500, 70_000, 1 << 30]);
    }

    #[test]
    fn same_deadline_fifo_by_seq() {
        let mut wh = TimerWheel::new();
        let ids: Vec<TimerId> = (0..10u32).map(|i| wh.insert(1_000, i)).collect();
        // Cancel a couple in the middle; the rest keep insertion order.
        wh.cancel(ids[3]);
        wh.cancel(ids[7]);
        let mut fired = Vec::new();
        while let Some((d, payload)) = wh.pop_next() {
            assert_eq!(d, 1_000);
            fired.push(payload);
        }
        assert_eq!(fired, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn cancelled_only_entries_never_advance() {
        let mut wh = TimerWheel::new();
        let a = wh.insert(10, 0u32);
        let b = wh.insert(1 << 28, 1);
        wh.cancel(a);
        wh.cancel(b);
        assert!(wh.is_empty());
        assert_eq!(wh.pop_next().map(|(d, _)| d), None);
        // Base never walked: a fresh earlier timer still works.
        wh.insert(5, 2);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(5));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut wh = TimerWheel::new();
        let id = wh.insert(7, 0u32);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(7));
        assert!(!wh.cancel(id));
        // The slab slot got recycled; the stale id must not hit it.
        let id2 = wh.insert(9, 1);
        assert!(!wh.cancel(id));
        assert!(wh.cancel(id2));
    }

    #[test]
    fn overflow_promotion_preserves_order() {
        let mut wh = TimerWheel::new();
        // Far beyond the wheel span, interleaved with near deadlines.
        let far = WHEEL_SPAN * 3 + 17;
        wh.insert(far, 0u32);
        wh.insert(far, 1);
        wh.insert(2, 2);
        assert_eq!(drain(&mut wh), vec![2, far, far]);
    }

    #[test]
    fn boundary_crossing_small_delta() {
        // delta=1 across a span boundary must not round-trip through the
        // overflow heap forever.
        let mut wh = TimerWheel::new();
        wh.insert(WHEEL_SPAN - 1, 0u32);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(WHEEL_SPAN - 1));
        wh.insert(WHEEL_SPAN, 1);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(WHEEL_SPAN));
    }

    #[test]
    fn pop_next_at_batches_one_deadline() {
        let mut wh = TimerWheel::new();
        wh.insert(5, 0u32);
        wh.insert(5, 1);
        wh.insert(6, 2);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(5));
        assert!(wh.pop_next_at(5).is_some());
        assert!(wh.pop_next_at(5).is_none());
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(6));
    }

    #[test]
    fn pop_next_capped_holds_the_base() {
        let mut wh = TimerWheel::new();
        wh.insert(70_000, 0u32);
        // Everything lives beyond the cap: nothing pops, and the base
        // must not have walked past the cap — an insert below the far
        // deadline stays legal.
        assert_eq!(wh.pop_next_capped(1_000), None);
        wh.insert(500, 1);
        assert_eq!(wh.pop_next_capped(1_000), Some((500, 1)));
        assert_eq!(wh.pop_next_capped(1_000), None);
        assert_eq!(wh.pop_next(), Some((70_000, 0)));
    }

    #[test]
    fn earliest_live_deadline_is_non_mutating() {
        let mut wh = TimerWheel::new();
        assert_eq!(wh.earliest_live_deadline(), None);
        let a = wh.insert(9_000, 0u32);
        wh.insert(WHEEL_SPAN * 2, 1);
        assert_eq!(wh.earliest_live_deadline(), Some(9_000));
        // The scan must not have advanced the base: inserting well below
        // the scanned deadline is still legal.
        wh.insert(3, 2);
        assert_eq!(wh.earliest_live_deadline(), Some(3));
        wh.cancel(a);
        assert_eq!(wh.pop_next(), Some((3, 2)));
        assert_eq!(wh.earliest_live_deadline(), Some(WHEEL_SPAN * 2));
    }

    #[test]
    fn huge_deadline_saturates() {
        let mut wh = TimerWheel::new();
        wh.insert(Cycles::MAX, 0u32);
        wh.insert(1, 1);
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(1));
        assert_eq!(wh.pop_next().map(|(d, _)| d), Some(Cycles::MAX));
    }
}
