//! Deterministic discrete-event simulation engine.
//!
//! The engine drives *simulated hardware time* measured in cycles. Simulated
//! actors (processor cores, host daemon threads, DMA engines, …) are written
//! as ordinary `async fn`s and scheduled on a single-threaded executor whose
//! clock only advances when every runnable task has yielded. This gives
//! bit-reproducible runs: the same program and seed always produce the same
//! event order and the same final timestamp.
//!
//! The design follows the single-threaded-executor pattern: tasks are woken
//! through [`std::task::Waker`]s that push task ids onto a wake queue, timers
//! live in a hierarchical timer wheel ([`wheel::TimerWheel`]) that keys by
//! `(deadline, sequence)` and supports cancellation, and all shared
//! simulation state is interior-mutable behind `Rc`.
//!
//! # Quick example
//!
//! ```
//! use des::Sim;
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! sim.spawn(async move {
//!     s.delay(100).await;
//!     assert_eq!(s.now(), 100);
//! });
//! sim.run().unwrap();
//! assert_eq!(sim.now(), 100);
//! ```

pub mod audit;
pub mod bytes;
pub mod channel;
pub mod critpath;
pub mod event;
mod executor;
pub mod faultplan;
pub mod link;
pub mod obs;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;
pub mod wheel;

pub use executor::{EngineStats, JoinHandle, RunStatus, Sim, SimError};
pub use time::{Cycles, Freq};
