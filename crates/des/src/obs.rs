//! Observability: a metrics registry and machine-readable exporters.
//!
//! The registry names the primitive instruments of [`crate::stats`] with
//! hierarchical dot-separated keys (`host.swcache.hits`,
//! `pcie.link0.bytes`, `rcce.send.lock_wait_cycles`) and snapshots them
//! as a sorted text table or JSON. The exporters turn a
//! [`crate::trace::Trace`] into Chrome-trace-event JSON (loadable in
//! Perfetto; `ts` is the virtual clock in cycles) and a [`Registry`]
//! into a metrics-snapshot JSON, both gated on environment variables:
//!
//! - `VSCC_TRACE=path.json` — write the Chrome trace of the run there.
//! - `VSCC_METRICS=path.json` — write the metrics snapshot there.
//!
//! Everything is deterministic: timestamps are [`crate::time::Cycles`],
//! iteration is insertion-ordered (trace) or name-sorted (metrics), and
//! two seeded runs produce byte-identical exports.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::stats::{Counter, Gauge, Log2Histogram};
use crate::trace::{SpanPhase, Trace};

pub mod timeseries;

pub use timeseries::{
    PointValue, SamplerSpec, SeriesExport, SeriesKind, TimeSeries, DEFAULT_CADENCE,
};

/// Environment variable naming the Chrome-trace output file.
pub const TRACE_ENV: &str = "VSCC_TRACE";
/// Environment variable naming the metrics-snapshot output file.
pub const METRICS_ENV: &str = "VSCC_METRICS";
/// Environment variable naming the time-series output file
/// (`VSCC_TIMESERIES=out.json`; see [`timeseries`]).
pub const TIMESERIES_ENV: &str = "VSCC_TIMESERIES";
/// Environment variable enabling the critical-path attribution tables
/// (see [`crate::critpath`]); any non-empty value turns them on.
pub const CRITPATH_ENV: &str = "VSCC_CRITPATH";
/// Environment variable bounding the trace as a flight recorder:
/// `VSCC_FLIGHT=N` keeps only the last N events.
pub const FLIGHT_ENV: &str = "VSCC_FLIGHT";
/// Environment variable naming a fault plan to inject
/// (`VSCC_FAULTS=<spec>`; see [`crate::faultplan::FaultSpec::parse`] for
/// the grammar).
pub const FAULTS_ENV: &str = "VSCC_FAULTS";
/// Environment variable naming the audit-stream output file
/// (`VSCC_AUDIT=out.json`; see [`crate::audit`]).
pub const AUDIT_ENV: &str = "VSCC_AUDIT";
/// Environment variable selecting the audit zoom epoch
/// (`VSCC_AUDIT_ZOOM=<epoch>`; raw decisions are recorded and every
/// trace category armed only inside that epoch).
pub const AUDIT_ZOOM_ENV: &str = "VSCC_AUDIT_ZOOM";

/// Whether `VSCC_CRITPATH` asks for critical-path tables.
pub fn critpath_requested() -> bool {
    std::env::var(CRITPATH_ENV).map(|v| !v.is_empty()).unwrap_or(false)
}

/// The `VSCC_FLIGHT=N` flight-recorder bound, if set to a positive count.
pub fn flight_capacity_from_env() -> Option<usize> {
    std::env::var(FLIGHT_ENV).ok()?.parse::<usize>().ok().filter(|&n| n > 0)
}

/// Whether `VSCC_AUDIT` asks for an audit-stream export.
pub fn audit_requested() -> bool {
    std::env::var(AUDIT_ENV).map(|v| !v.is_empty()).unwrap_or(false)
}

/// The `VSCC_AUDIT_ZOOM=<epoch>` zoom target, if set.
pub fn audit_zoom_from_env() -> Option<u64> {
    std::env::var(AUDIT_ZOOM_ENV).ok()?.parse().ok()
}

/// One registered instrument.
#[derive(Clone)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Log2Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    /// Slab of `(full_name, instrument)` in registration order; a
    /// [`MetricId`] is an index into it — resolution is one bounds check,
    /// no string hash.
    slab: Vec<(Rc<str>, Metric)>,
    /// Name → slab index, used only at registration / lookup time.
    index: HashMap<Rc<str>, u32>,
}

/// Slab index of a registered metric. Obtained at registration time
/// (from [`Registry::register_counter`] and friends, or the `adopt_*`
/// calls); resolves back to the instrument or its full name in O(1)
/// without hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

/// A pre-registered counter: the resolved instrument plus its slab id.
/// Every operation is a direct `Cell` update — no registry access, no
/// string hash, no allocation. The default value is a *detached* counter
/// (not in any registry), for subsystems that only sometimes register.
#[derive(Clone, Default)]
pub struct CounterHandle {
    c: Counter,
    id: Option<MetricId>,
}

impl CounterHandle {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.c.inc();
    }

    /// Add `k`.
    #[inline]
    pub fn add(&self, k: u64) {
        self.c.add(k);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.c.get()
    }

    /// The slab id, if this handle came from a registry.
    pub fn id(&self) -> Option<MetricId> {
        self.id
    }
}

/// A pre-registered gauge; see [`CounterHandle`] for the cost model.
#[derive(Clone, Default)]
pub struct GaugeHandle {
    g: Gauge,
    id: Option<MetricId>,
}

impl GaugeHandle {
    /// Set the current level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.g.set(v);
    }

    /// Move the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.g.add(d);
    }

    /// Decrease the level by `d`.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.g.sub(d);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.g.get()
    }

    /// Highest level ever set.
    #[inline]
    pub fn high_watermark(&self) -> i64 {
        self.g.high_watermark()
    }

    /// The slab id, if this handle came from a registry.
    pub fn id(&self) -> Option<MetricId> {
        self.id
    }
}

/// A pre-registered log2 histogram; see [`CounterHandle`] for the cost
/// model.
#[derive(Clone, Default)]
pub struct HistogramHandle {
    h: Log2Histogram,
    id: Option<MetricId>,
}

impl HistogramHandle {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.h.record(v);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.h.count()
    }

    /// Arithmetic mean of samples (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.h.mean()
    }

    /// Largest sample.
    #[inline]
    pub fn max(&self) -> u64 {
        self.h.max()
    }

    /// The slab id, if this handle came from a registry.
    pub fn id(&self) -> Option<MetricId> {
        self.id
    }
}

/// A shared, hierarchically-named metrics registry.
///
/// Handles are cheap clones over one store; [`Registry::scoped`] derives
/// a view that prefixes every name, so a subsystem can register
/// `"hits"` and have it appear as `"host.swcache.hits"`.
///
/// Hot sites register once — [`Registry::register_counter`] /
/// [`Registry::register_gauge`] / [`Registry::register_histogram`] hand
/// back a [`CounterHandle`]-family handle whose per-operation cost is a
/// `Cell` update. The string-keyed accessors ([`Registry::counter`], …)
/// stay as the registration-time / test-convenience API.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
    prefix: String,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A view of the same registry that prefixes names with `segment.`.
    pub fn scoped(&self, segment: &str) -> Registry {
        Registry { inner: self.inner.clone(), prefix: format!("{}{segment}.", self.prefix) }
    }

    fn full_name(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> (MetricId, Metric) {
        let full = self.full_name(name);
        let mut inner = self.inner.borrow_mut();
        if let Some(&idx) = inner.index.get(full.as_str()) {
            return (MetricId(idx), inner.slab[idx as usize].1.clone());
        }
        let m = make();
        let idx = inner.slab.len() as u32;
        let key: Rc<str> = Rc::from(full);
        inner.slab.push((key.clone(), m.clone()));
        inner.index.insert(key, idx);
        (MetricId(idx), m)
    }

    /// Get or register the counter `name`.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())).1 {
            Metric::Counter(c) => c,
            m => panic!("metric {:?} is a {}, not a counter", self.full_name(name), m.kind()),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())).1 {
            Metric::Gauge(g) => g,
            m => panic!("metric {:?} is a {}, not a gauge", self.full_name(name), m.kind()),
        }
    }

    /// Get or register the log2 histogram `name`.
    pub fn histogram(&self, name: &str) -> Log2Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Log2Histogram::new())).1 {
            Metric::Histogram(h) => h,
            m => panic!("metric {:?} is a {}, not a histogram", self.full_name(name), m.kind()),
        }
    }

    /// Get or register the counter `name` as a pre-resolved handle (the
    /// hot-site API: one hash at registration, `Cell` updates after).
    pub fn register_counter(&self, name: &str) -> CounterHandle {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            (id, Metric::Counter(c)) => CounterHandle { c, id: Some(id) },
            (_, m) => panic!("metric {:?} is a {}, not a counter", self.full_name(name), m.kind()),
        }
    }

    /// Get or register the gauge `name` as a pre-resolved handle.
    pub fn register_gauge(&self, name: &str) -> GaugeHandle {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            (id, Metric::Gauge(g)) => GaugeHandle { g, id: Some(id) },
            (_, m) => panic!("metric {:?} is a {}, not a gauge", self.full_name(name), m.kind()),
        }
    }

    /// Get or register the histogram `name` as a pre-resolved handle.
    pub fn register_histogram(&self, name: &str) -> HistogramHandle {
        match self.get_or_insert(name, || Metric::Histogram(Log2Histogram::new())) {
            (id, Metric::Histogram(h)) => HistogramHandle { h, id: Some(id) },
            (_, m) => {
                panic!("metric {:?} is a {}, not a histogram", self.full_name(name), m.kind())
            }
        }
    }

    /// Register an *existing* counter handle under `name`, so a value
    /// already shared elsewhere (e.g. a link's byte counter) surfaces in
    /// snapshots without double counting. Returns the slab id.
    ///
    /// Panics if `name` is already registered.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) -> MetricId {
        self.adopt(name, Metric::Counter(counter.clone()))
    }

    /// Register an existing gauge handle under `name`.
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) -> MetricId {
        self.adopt(name, Metric::Gauge(gauge.clone()))
    }

    /// Register an existing histogram handle under `name`.
    pub fn adopt_histogram(&self, name: &str, histogram: &Log2Histogram) -> MetricId {
        self.adopt(name, Metric::Histogram(histogram.clone()))
    }

    fn adopt(&self, name: &str, metric: Metric) -> MetricId {
        let full = self.full_name(name);
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.index.contains_key(full.as_str()), "metric {full:?} registered twice");
        let idx = inner.slab.len() as u32;
        let key: Rc<str> = Rc::from(full);
        inner.slab.push((key.clone(), metric));
        inner.index.insert(key, idx);
        MetricId(idx)
    }

    /// All registered full names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().slab.iter().map(|(n, _)| n.to_string()).collect()
    }

    /// Look up a metric by full name.
    pub fn get(&self, full_name: &str) -> Option<Metric> {
        let inner = self.inner.borrow();
        inner.index.get(full_name).map(|&idx| inner.slab[idx as usize].1.clone())
    }

    /// Resolve a slab id to its instrument — O(1), no hashing.
    pub fn get_by_id(&self, id: MetricId) -> Option<Metric> {
        self.inner.borrow().slab.get(id.0 as usize).map(|(_, m)| m.clone())
    }

    /// Resolve a slab id to its full name — O(1), no hashing.
    pub fn name_by_id(&self, id: MetricId) -> Option<Rc<str>> {
        self.inner.borrow().slab.get(id.0 as usize).map(|(n, _)| n.clone())
    }

    /// A point-in-time copy of every metric's value, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.borrow();
        let mut entries: Vec<(String, MetricValue)> = inner
            .slab
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter { value: c.get() },
                    Metric::Gauge(g) => {
                        MetricValue::Gauge { value: g.get(), high_watermark: g.high_watermark() }
                    }
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        p50: h.quantile_interpolated(0.5),
                        p99: h.quantile_interpolated(0.99),
                        buckets: h.buckets(),
                    },
                };
                (name.to_string(), value)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

/// A snapshot of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter { value: u64 },
    Gauge { value: i64, high_watermark: i64 },
    Histogram { count: u64, sum: u128, max: u64, p50: u64, p99: u64, buckets: Vec<u64> },
}

/// A point-in-time, name-sorted copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(full_name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Render as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter { value } => {
                    let _ = writeln!(out, "{name:<48} {value:>12}");
                }
                MetricValue::Gauge { value, high_watermark } => {
                    let _ = writeln!(out, "{name:<48} {value:>12}  (max {high_watermark})");
                }
                MetricValue::Histogram { count, max, p50, p99, .. } => {
                    let _ = writeln!(out, "{name:<48} {count:>12}  p50={p50} p99={p99} max={max}");
                }
            }
        }
        out
    }

    /// Serialize as deterministic JSON (sorted keys, integer values).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": {");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", json_escape(name));
            match value {
                MetricValue::Counter { value } => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {value}}}");
                }
                MetricValue::Gauge { value, high_watermark } => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"gauge\", \"value\": {value}, \"high_watermark\": {high_watermark}}}"
                    );
                }
                MetricValue::Histogram { count, sum, max, p50, p99, buckets } => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"histogram\", \"count\": {count}, \"sum\": {sum}, \"max\": {max}, \"p50\": {p50}, \"p99\": {p99}, \"buckets\": ["
                    );
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Compare two snapshots; `self` is the old side, `other` the new.
    ///
    /// The result is name-sorted, so rendering it is the "diff two metrics
    /// exports to bisect a determinism bug" workflow in one call.
    pub fn diff(&self, other: &Snapshot) -> SnapshotDiff {
        let mut diff = SnapshotDiff::default();
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some((an, av)), Some((bn, bv))) if an == bn => {
                    if av != bv {
                        diff.changed.push((an.clone(), av.clone(), bv.clone()));
                    }
                    i += 1;
                    j += 1;
                }
                (Some((an, av)), Some((bn, _))) if an < bn => {
                    diff.removed.push((an.clone(), av.clone()));
                    i += 1;
                }
                (Some(_), Some((bn, bv))) => {
                    diff.added.push((bn.clone(), bv.clone()));
                    j += 1;
                }
                (Some((an, av)), None) => {
                    diff.removed.push((an.clone(), av.clone()));
                    i += 1;
                }
                (None, Some((bn, bv))) => {
                    diff.added.push((bn.clone(), bv.clone()));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        diff
    }
}

/// The delta between two [`Snapshot`]s, each section name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Metrics present in both with different values: `(name, old, new)`.
    pub changed: Vec<(String, MetricValue, MetricValue)>,
    /// Metrics only in the new snapshot.
    pub added: Vec<(String, MetricValue)>,
    /// Metrics only in the old snapshot.
    pub removed: Vec<(String, MetricValue)>,
}

impl SnapshotDiff {
    /// True when the snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// Render as an aligned delta table (empty string when identical).
    pub fn render_table(&self) -> String {
        fn brief(v: &MetricValue) -> String {
            match v {
                MetricValue::Counter { value } => value.to_string(),
                MetricValue::Gauge { value, high_watermark } => {
                    format!("{value} (max {high_watermark})")
                }
                MetricValue::Histogram { count, p50, p99, max, .. } => {
                    format!("count={count} p50={p50} p99={p99} max={max}")
                }
            }
        }
        let mut out = String::new();
        for (name, old, new) in &self.changed {
            let _ = writeln!(out, "~ {name:<48} {} -> {}", brief(old), brief(new));
        }
        for (name, new) in &self.added {
            let _ = writeln!(out, "+ {name:<48} {}", brief(new));
        }
        for (name, old) in &self.removed {
            let _ = writeln!(out, "- {name:<48} {}", brief(old));
        }
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize traces as Chrome-trace-event JSON (the "JSON array format"
/// Perfetto and `chrome://tracing` load).
///
/// Each `(process_name, trace)` pair becomes one `pid`; actors become
/// `tid`s in order of first appearance, with `process_name` /
/// `thread_name` metadata events so the Perfetto UI shows real names.
/// `ts` is the virtual clock in cycles (exported as microseconds purely
/// so the UI's time axis is readable).
///
/// Events carrying a flow id additionally emit Chrome flow events
/// (`ph:"s"` at the flow's first hop, `ph:"t"` at intermediate hops,
/// `ph:"f"` at the last) so Perfetto draws cross-actor arrows along each
/// message's path. Flows with a single recorded hop are skipped — an
/// arrow needs two ends.
pub fn chrome_trace_json(processes: &[(&str, &Trace)]) -> String {
    chrome_trace_json_with_tracks(processes, &[])
}

/// [`chrome_trace_json`], additionally merging sampled time-series as
/// Perfetto *counter tracks* (`ph:"C"`): each `(track_name, series)`
/// pair becomes one extra `pid` after the trace processes, every series
/// in it one counter whose curve renders alongside the actor spans.
/// Virtual-clock timestamps, name-sorted series, time-ordered points —
/// the export stays byte-identical across identical runs.
pub fn chrome_trace_json_with_tracks(
    processes: &[(&str, &Trace)],
    tracks: &[(&str, &timeseries::TimeSeries)],
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push_line = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (pid, (pname, trace)) in processes.iter().enumerate() {
        push_line(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(pname)
            ),
        );
        trace.with_events(|events| {
            // First/last event index per flow id, so each hop knows
            // whether it starts ("s"), continues ("t"), or finishes
            // ("f") its flow's arrow chain.
            let mut flow_bounds: HashMap<u64, (usize, usize)> = HashMap::new();
            for (idx, event) in events.iter().enumerate() {
                if let Some(flow) = event.flow {
                    flow_bounds
                        .entry(flow)
                        .and_modify(|(_, last)| *last = idx)
                        .or_insert((idx, idx));
                }
            }
            let mut tids: HashMap<std::rc::Rc<str>, usize> = HashMap::new();
            for (idx, event) in events.iter().enumerate() {
                let next_tid = tids.len();
                let tid = match tids.get(&*event.actor) {
                    Some(&t) => t,
                    None => {
                        tids.insert(event.actor.clone(), next_tid);
                        push_line(
                            &mut out,
                            format!(
                                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{next_tid},\"args\":{{\"name\":\"{}\"}}}}",
                                json_escape(&event.actor)
                            ),
                        );
                        next_tid
                    }
                };
                let ph = match event.phase {
                    SpanPhase::Instant => "i",
                    SpanPhase::Begin => "B",
                    SpanPhase::End => "E",
                };
                let mut line = format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}",
                    json_escape(event.kind),
                    event.cat.name(),
                    event.time,
                );
                if event.phase == SpanPhase::Instant {
                    line.push_str(",\"s\":\"t\"");
                }
                let mut args: Vec<(&str, String)> = Vec::new();
                if let Some(flow) = event.flow {
                    args.push(("flow", flow.to_string()));
                }
                for (name, value) in &event.fields {
                    use crate::trace::FieldValue;
                    let rendered = match value {
                        FieldValue::U64(v) => v.to_string(),
                        FieldValue::I64(v) => v.to_string(),
                        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
                        FieldValue::Text(s) => format!("\"{}\"", json_escape(s)),
                    };
                    args.push((name, rendered));
                }
                if !args.is_empty() {
                    line.push_str(",\"args\":{");
                    for (i, (name, rendered)) in args.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        let _ = write!(line, "\"{}\":{rendered}", json_escape(name));
                    }
                    line.push('}');
                }
                line.push('}');
                push_line(&mut out, line);
                if let Some(flow) = event.flow {
                    let (first_idx, last_idx) = flow_bounds[&flow];
                    if first_idx != last_idx {
                        let fph = if idx == first_idx {
                            "s"
                        } else if idx == last_idx {
                            "f"
                        } else {
                            "t"
                        };
                        // Chrome flow ids are global to the export, but each
                        // (process_name, trace) pair allocates flows from 1 —
                        // namespace by pid so arrows never cross sub-traces.
                        let arrow_id = ((pid as u64) << 56) | flow;
                        let mut fline = format!(
                            "{{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"{fph}\",\"id\":{arrow_id},\"ts\":{},\"pid\":{pid},\"tid\":{tid}",
                            event.time,
                        );
                        if fph == "f" {
                            fline.push_str(",\"bp\":\"e\"");
                        }
                        fline.push('}');
                        push_line(&mut out, fline);
                    }
                }
            }
        });
    }
    for (k, (tname, series)) in tracks.iter().enumerate() {
        let pid = processes.len() + k;
        push_line(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(tname)
            ),
        );
        for s in series.series() {
            for (t, v) in &s.points {
                use timeseries::PointValue;
                let args = match v {
                    PointValue::Rate(r) => format!("\"rate\":{r}"),
                    PointValue::Busy(pct) => format!("\"busy_pct\":{pct}"),
                    PointValue::Level(l) => format!("\"level\":{l}"),
                    PointValue::Window { count, p50, p99 } => {
                        format!("\"count\":{count},\"p50\":{p50},\"p99\":{p99}")
                    }
                };
                push_line(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"tid\":0,\"args\":{{{args}}}}}",
                        json_escape(&s.name)
                    ),
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// If `VSCC_TRACE` is set, write the Chrome trace there and return the
/// path written.
pub fn export_trace_if_env(processes: &[(&str, &Trace)]) -> std::io::Result<Option<String>> {
    export_trace_if_env_with_tracks(processes, &[])
}

/// [`export_trace_if_env`], with sampled time-series merged into the
/// export as Perfetto counter tracks.
pub fn export_trace_if_env_with_tracks(
    processes: &[(&str, &Trace)],
    tracks: &[(&str, &timeseries::TimeSeries)],
) -> std::io::Result<Option<String>> {
    match std::env::var(TRACE_ENV) {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, chrome_trace_json_with_tracks(processes, tracks))?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

/// If `VSCC_METRICS` is set, write the snapshot JSON there and return the
/// path written.
pub fn export_metrics_if_env(registry: &Registry) -> std::io::Result<Option<String>> {
    match std::env::var(METRICS_ENV) {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, registry.snapshot().to_json())?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

/// If `VSCC_TIMESERIES` is set, write the time-series JSON there and
/// return the path written.
pub fn export_timeseries_if_env(
    series: &timeseries::TimeSeries,
) -> std::io::Result<Option<String>> {
    match std::env::var(TIMESERIES_ENV) {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, series.to_json())?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

/// If `VSCC_AUDIT` is set, write the audit-stream JSON there and return
/// the path written.
pub fn export_audit_if_env(audit: &crate::audit::Audit) -> std::io::Result<Option<String>> {
    match std::env::var(AUDIT_ENV) {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, audit.to_json())?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;
    use crate::trace::Category;

    #[test]
    fn registry_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("host.hits");
        let b = reg.counter("host.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("host.hits").get(), 3);
    }

    #[test]
    fn scoped_views_prefix_names() {
        let reg = Registry::new();
        let host = reg.scoped("host");
        let swcache = host.scoped("swcache");
        swcache.counter("hits").inc();
        host.gauge("depth").set(4);
        assert_eq!(reg.names(), vec!["host.swcache.hits", "host.depth"]);
        assert_eq!(reg.counter("host.swcache.hits").get(), 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn handles_share_state_with_string_api() {
        let reg = Registry::new();
        let h = reg.register_counter("host.hits");
        h.inc();
        h.add(4);
        // The string accessor resolves to the same instrument.
        assert_eq!(reg.counter("host.hits").get(), 5);
        // And the slab id round-trips without hashing.
        let id = h.id().expect("registered handle has an id");
        assert_eq!(reg.name_by_id(id).unwrap().as_ref(), "host.hits");
        match reg.get_by_id(id).unwrap() {
            Metric::Counter(c) => assert_eq!(c.get(), 5),
            other => panic!("expected counter, got {}", other.kind()),
        }
    }

    #[test]
    fn gauge_and_histogram_handles() {
        let reg = Registry::new();
        let g = reg.register_gauge("depth");
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 3);
        let h = reg.register_histogram("lat");
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 7);
        assert_eq!(reg.names(), vec!["depth", "lat"]);
    }

    #[test]
    fn detached_handles_work_unregistered() {
        let c = CounterHandle::default();
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(c.id(), None);
        let g = GaugeHandle::default();
        g.set(-2);
        assert_eq!(g.get(), -2);
        let h = HistogramHandle::default();
        h.record(9);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn register_kind_mismatch_panics() {
        let reg = Registry::new();
        reg.register_counter("x");
        reg.register_gauge("x");
    }

    #[test]
    fn adopt_returns_resolvable_id() {
        let reg = Registry::new();
        let c = Counter::new();
        let id = reg.adopt_counter("link.bytes", &c);
        c.add(3);
        assert_eq!(reg.name_by_id(id).unwrap().as_ref(), "link.bytes");
        match reg.get_by_id(id).unwrap() {
            Metric::Counter(seen) => assert_eq!(seen.get(), 3),
            other => panic!("expected counter, got {}", other.kind()),
        }
    }

    #[test]
    fn adopted_counter_is_not_double_counted() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(5);
        reg.adopt_counter("link.bytes", &c);
        c.add(2);
        assert_eq!(reg.counter("link.bytes").get(), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.lat").record(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.lat", "z.last"]);
        assert_eq!(snap.entries[0].1, MetricValue::Counter { value: 2 });
        match &snap.entries[1].1 {
            MetricValue::Histogram { count, p50, .. } => {
                assert_eq!(*count, 1);
                // Interpolated within bucket [4, 8), clamped to the max
                // recorded sample (5).
                assert_eq!(*p50, 5);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let build = || {
            let reg = Registry::new();
            reg.counter("b").add(2);
            reg.counter("a").add(1);
            reg.gauge("g").set(-3);
            reg.histogram("h").record(0);
            reg.snapshot().to_json()
        };
        let j1 = build();
        let j2 = build();
        assert_eq!(j1, j2);
        let a = j1.find("\"a\"").unwrap();
        let b = j1.find("\"b\"").unwrap();
        let g = j1.find("\"g\"").unwrap();
        assert!(a < b && b < g);
        assert!(j1.contains("\"high_watermark\": 0"));
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Trace::enabled();
        t.begin(10, Category::Protocol, "send", || "rank0", || fields![bytes = 64u64]);
        t.instant(12, Category::Mpb, "flag_set", || "rank1", Vec::new);
        t.end(20, Category::Protocol, "send", || "rank0");
        let json = chrome_trace_json(&[("run", &t)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\",\"ts\":10"));
        assert!(json.contains("\"ph\":\"i\",\"ts\":12"));
        assert!(json.contains("\"ph\":\"E\",\"ts\":20"));
        assert!(json.contains("\"args\":{\"bytes\":64}"));
        // rank0 saw tid 0, rank1 tid 1, by first appearance.
        assert!(json.contains("\"tid\":1,\"args\":{\"name\":\"rank1\"}"));
        // Balanced braces/brackets — cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_flow_events_pair_up() {
        let t = Trace::enabled();
        t.instant_f(1, Category::Protocol, "put", Some(7), || "rank0", Vec::new);
        t.instant_f(5, Category::Vdma, "vdma", Some(7), || "host", Vec::new);
        t.instant_f(9, Category::Protocol, "get", Some(7), || "rank1", Vec::new);
        // A single-hop flow must not emit an unpaired "s".
        t.instant_f(11, Category::Protocol, "lonely", Some(8), || "rank0", Vec::new);
        let json = chrome_trace_json(&[("run", &t)]);
        assert!(json.contains("\"ph\":\"s\",\"id\":7,\"ts\":1"));
        assert!(json.contains("\"ph\":\"t\",\"id\":7,\"ts\":5"));
        assert!(json.contains("\"ph\":\"f\",\"id\":7,\"ts\":9,"));
        assert!(json.contains("\"bp\":\"e\""));
        assert!(!json.contains("\"id\":8"));
        assert!(json.contains("\"args\":{\"flow\":7}"));
        assert_eq!(json.matches("\"ph\":\"s\"").count(), json.matches("\"ph\":\"f\"").count());
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }

    #[test]
    fn snapshot_diff_classifies_and_renders() {
        let old = Registry::new();
        old.counter("same").add(1);
        old.counter("bumped").add(2);
        old.counter("gone").add(9);
        let new = Registry::new();
        new.counter("same").add(1);
        new.counter("bumped").add(5);
        new.gauge("fresh").set(3);
        let d = old.snapshot().diff(&new.snapshot());
        assert!(!d.is_empty());
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].0, "bumped");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].0, "fresh");
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.removed[0].0, "gone");
        let table = d.render_table();
        assert!(table.contains("~ bumped"));
        assert!(table.contains("2 -> 5"));
        assert!(table.contains("+ fresh"));
        assert!(table.contains("- gone"));
        let identical = old.snapshot().diff(&old.snapshot());
        assert!(identical.is_empty());
        assert_eq!(identical.render_table(), "");
    }

    #[test]
    fn flight_env_parses_positive_counts() {
        // Not set in the test environment: both helpers take the default.
        assert!(!critpath_requested() || std::env::var(CRITPATH_ENV).is_ok());
        assert!(flight_capacity_from_env().is_none() || std::env::var(FLIGHT_ENV).is_ok());
    }

    #[test]
    fn chrome_trace_two_processes() {
        let a = Trace::enabled();
        a.instant(1, Category::App, "x", || "r0", Vec::new);
        let b = Trace::enabled();
        b.instant(2, Category::App, "y", || "r0", Vec::new);
        let json = chrome_trace_json(&[("blocking", &a), ("pipelined", &b)]);
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"name\":\"blocking\""));
        assert!(json.contains("\"name\":\"pipelined\""));
    }
}
