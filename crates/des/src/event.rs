//! Notification primitives: one-shot events, notify cells, and condition
//! re-check helpers.
//!
//! These model the *hardware* wake-up mechanisms of the simulated system
//! (e.g. "a byte in this MPB changed"), not OS synchronization: RCCE and the
//! communication task busy-wait in reality, and the engine turns a busy-wait
//! into "sleep until someone touches the watched state, then re-check".

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A level-triggered notification source.
///
/// `notify_all` wakes every currently-registered waiter; waiters must
/// re-check their predicate (spurious wakeups are expected).
#[derive(Clone, Default)]
pub struct Notify {
    waiters: Rc<RefCell<Vec<Waker>>>,
}

impl Notify {
    /// Create a fresh notifier with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake all registered waiters.
    pub fn notify_all(&self) {
        for w in self.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Number of registered waiters (diagnostics).
    pub fn waiter_count(&self) -> usize {
        self.waiters.borrow().len()
    }

    /// Wait until `pred()` returns `Some(v)`, re-checking after every
    /// notification. The predicate is checked immediately before any
    /// registration, so an already-true condition never blocks.
    pub async fn wait_for<T>(&self, mut pred: impl FnMut() -> Option<T>) -> T {
        loop {
            if let Some(v) = pred() {
                return v;
            }
            Waiting { notify: self, armed: false }.await;
        }
    }

    /// Wait until `pred()` returns true.
    pub async fn wait_until(&self, mut pred: impl FnMut() -> bool) {
        self.wait_for(|| if pred() { Some(()) } else { None }).await;
    }
}

/// One registration/wakeup round on a [`Notify`].
struct Waiting<'a> {
    notify: &'a Notify,
    armed: bool,
}

impl Future for Waiting<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.armed {
            // We were woken (possibly spuriously); let the caller re-check.
            Poll::Ready(())
        } else {
            self.armed = true;
            self.notify.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

struct OneshotState<T> {
    value: Option<T>,
    waiter: Option<Waker>,
    sender_dropped: bool,
}

/// Sending half of a one-shot rendezvous (e.g. a DMA-completion reply).
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a one-shot rendezvous.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Create a one-shot channel. The receiver resolves once the sender fires;
/// if the sender is dropped first the receiver resolves to `None`.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state =
        Rc::new(RefCell::new(OneshotState { value: None, waiter: None, sender_dropped: false }));
    (OneshotSender { state: state.clone() }, OneshotReceiver { state })
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut st = self.state.borrow_mut();
        st.value = Some(value);
        if let Some(w) = st.waiter.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.sender_dropped = true;
        if let Some(w) = st.waiter.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.value.take() {
            Poll::Ready(Some(v))
        } else if st.sender_dropped {
            Poll::Ready(None)
        } else {
            st.waiter = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::cell::Cell;

    #[test]
    fn notify_wakes_waiter() {
        let sim = Sim::new();
        let notify = Notify::new();
        let flag = Rc::new(Cell::new(false));

        let (n2, f2, s2) = (notify.clone(), flag.clone(), sim.clone());
        sim.spawn_named("waiter", async move {
            n2.wait_until(|| f2.get()).await;
            assert_eq!(s2.now(), 500);
        });
        let s3 = sim.clone();
        sim.spawn_named("setter", async move {
            s3.delay(500).await;
            flag.set(true);
            notify.notify_all();
        });
        assert_eq!(sim.run().unwrap(), 500);
    }

    #[test]
    fn already_true_predicate_does_not_block() {
        let sim = Sim::new();
        let notify = Notify::new();
        sim.spawn(async move {
            notify.wait_until(|| true).await;
        });
        assert_eq!(sim.run().unwrap(), 0);
    }

    #[test]
    fn spurious_wakeups_recheck() {
        let sim = Sim::new();
        let notify = Notify::new();
        let counter = Rc::new(Cell::new(0u32));

        let (n2, c2) = (notify.clone(), counter.clone());
        sim.spawn_named("waiter", async move {
            n2.wait_until(|| c2.get() >= 3).await;
        });
        let s = sim.clone();
        sim.spawn_named("ticker", async move {
            for _ in 0..3 {
                s.delay(10).await;
                counter.set(counter.get() + 1);
                notify.notify_all();
            }
        });
        assert_eq!(sim.run().unwrap(), 30);
    }

    #[test]
    fn oneshot_delivers() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(9).await;
            tx.send(1234);
        });
        let got = sim.block_on(rx).unwrap();
        assert_eq!(got, Some(1234));
    }

    #[test]
    fn oneshot_sender_dropped_yields_none() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(3).await;
            drop(tx);
        });
        let got = sim.block_on(rx).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn many_waiters_all_wake() {
        let sim = Sim::new();
        let notify = Notify::new();
        let flag = Rc::new(Cell::new(false));
        for _ in 0..16 {
            let (n, f) = (notify.clone(), flag.clone());
            sim.spawn(async move { n.wait_until(|| f.get()).await });
        }
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(1).await;
            flag.set(true);
            notify.notify_all();
        });
        assert_eq!(sim.run().unwrap(), 1);
    }
}
