//! The virtual-clock executor.
//!
//! Single-threaded and strictly deterministic: the ready queue is FIFO, the
//! timer heap breaks deadline ties by insertion sequence, and wakers enqueue
//! task ids in wake order. Simulated time advances only when no task is
//! runnable.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use std::sync::{Mutex, PoisonError};

use crate::time::Cycles;

type TaskId = usize;
type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Error returned by [`Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No task is runnable, no timer is pending, but live tasks remain: the
    /// simulated system is deadlocked. Carries the names of the stuck tasks.
    Deadlock(Vec<String>),
    /// The simulation exceeded the configured cycle horizon.
    HorizonExceeded(Cycles),
    /// A task requested a diagnosed abort via [`Sim::abort`] (e.g. a poll
    /// watchdog converting an infinite flag wait into a timeout). Carries
    /// the abort reason.
    Aborted(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(names) => {
                write!(f, "simulated deadlock; stuck tasks: {}", names.join(", "))
            }
            SimError::HorizonExceeded(h) => write!(f, "simulation exceeded horizon of {h} cycles"),
            SimError::Aborted(reason) => write!(f, "simulation aborted: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Wake queue shared with wakers. Wakers may technically be sent across
/// threads, so this is the one `Send`-safe piece of the executor.
#[derive(Default)]
struct WakeQueue {
    ids: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.ids.lock().unwrap_or_else(PoisonError::into_inner).push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.ids.lock().unwrap_or_else(PoisonError::into_inner).push(self.id);
    }
}

struct TimerEntry {
    deadline: Cycles,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct Slot {
    fut: Option<BoxFuture>,
    name: Rc<str>,
    /// Task is in the ready queue (dedupes spurious wakes).
    queued: bool,
    /// Slot is occupied by a live task.
    live: bool,
    /// Daemon tasks (e.g. host service loops) do not keep the simulation
    /// alive: the run ends when every non-daemon task finished.
    daemon: bool,
}

struct Inner {
    now: Cell<Cycles>,
    horizon: Cell<Cycles>,
    timer_seq: Cell<u64>,
    tasks: RefCell<Vec<Slot>>,
    free: RefCell<Vec<TaskId>>,
    ready: RefCell<VecDeque<TaskId>>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    wake_queue: Arc<WakeQueue>,
    live: Cell<usize>,
    /// A diagnosed abort requested by a task; surfaced by [`Sim::run`]
    /// before the next task poll. First request wins.
    abort: RefCell<Option<String>>,
}

/// Handle to the simulation. Cheap to clone; all clones share the clock,
/// scheduler, and task set.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at time 0 with an effectively unbounded
    /// horizon.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(0),
                horizon: Cell::new(Cycles::MAX),
                timer_seq: Cell::new(0),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                ready: RefCell::new(VecDeque::new()),
                timers: RefCell::new(BinaryHeap::new()),
                wake_queue: Arc::new(WakeQueue::default()),
                live: Cell::new(0),
                abort: RefCell::new(None),
            }),
        }
    }

    /// Abort the run with [`SimError::HorizonExceeded`] if the clock would
    /// pass `cycles`. Guards against livelock in protocol bugs.
    pub fn set_horizon(&self, cycles: Cycles) {
        self.inner.horizon.set(cycles);
    }

    /// Current simulated time in core cycles.
    pub fn now(&self) -> Cycles {
        self.inner.now.get()
    }

    /// Request a diagnosed abort: [`Sim::run`] returns
    /// [`SimError::Aborted`] with `reason` before polling another task.
    /// The first abort request wins; later ones are ignored. The caller
    /// should park itself afterwards (e.g. `std::future::pending().await`)
    /// — the run loop never polls again once the abort surfaces.
    pub fn abort(&self, reason: impl Into<String>) {
        let mut slot = self.inner.abort.borrow_mut();
        if slot.is_none() {
            *slot = Some(reason.into());
        }
    }

    /// Number of unfinished tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }

    /// Spawn an anonymous task.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.spawn_named("task", fut)
    }

    /// Spawn a task with a diagnostic name (shown in deadlock reports).
    pub fn spawn_named<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, fut, false)
    }

    /// Spawn a daemon task: it serves the simulation but does not keep it
    /// alive — [`Sim::run`] returns once all non-daemon tasks finished.
    pub fn spawn_daemon<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, fut, true)
    }

    fn spawn_inner<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
        daemon: bool,
    ) -> JoinHandle<T> {
        let state =
            Rc::new(RefCell::new(JoinState { result: None, waiters: Vec::new(), detached: false }));
        let task_state = state.clone();
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = task_state.borrow_mut();
            st.result = Some(out);
            for w in st.waiters.drain(..) {
                w.wake();
            }
        });
        let name: Rc<str> = Rc::from(name.into());
        let id = {
            let mut tasks = self.inner.tasks.borrow_mut();
            if let Some(id) = self.inner.free.borrow_mut().pop() {
                tasks[id] = Slot { fut: Some(wrapped), name, queued: true, live: true, daemon };
                id
            } else {
                tasks.push(Slot { fut: Some(wrapped), name, queued: true, live: true, daemon });
                tasks.len() - 1
            }
        };
        if !daemon {
            self.inner.live.set(self.inner.live.get() + 1);
        }
        self.inner.ready.borrow_mut().push_back(id);
        JoinHandle { state }
    }

    /// Sleep for `cycles` of simulated time.
    pub fn delay(&self, cycles: Cycles) -> Delay {
        Delay { sim: self.clone(), deadline: self.now().saturating_add(cycles), registered: false }
    }

    /// Sleep until the absolute simulated timestamp `deadline` (no-op if it
    /// is already in the past).
    pub fn delay_until(&self, deadline: Cycles) -> Delay {
        Delay { sim: self.clone(), deadline, registered: false }
    }

    /// Yield to other runnable tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn register_timer(&self, deadline: Cycles, waker: Waker) {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry { deadline, seq, waker }));
    }

    fn drain_wake_queue(&self) {
        let ids: Vec<TaskId> = std::mem::take(
            &mut *self.inner.wake_queue.ids.lock().unwrap_or_else(PoisonError::into_inner),
        );
        let mut tasks = self.inner.tasks.borrow_mut();
        let mut ready = self.inner.ready.borrow_mut();
        for id in ids {
            if let Some(slot) = tasks.get_mut(id) {
                if slot.live && !slot.queued {
                    slot.queued = true;
                    ready.push_back(id);
                }
            }
        }
    }

    /// Run until every task has finished.
    ///
    /// Returns the final timestamp, or an error on deadlock / horizon
    /// overrun (the simulation state stays inspectable after an error).
    pub fn run(&self) -> Result<Cycles, SimError> {
        loop {
            if let Some(reason) = self.inner.abort.borrow_mut().take() {
                return Err(SimError::Aborted(reason));
            }
            self.drain_wake_queue();
            let next = self.inner.ready.borrow_mut().pop_front();
            if let Some(id) = next {
                self.poll_task(id);
                continue;
            }
            // All non-daemon tasks done: the run is complete (daemon
            // service loops never finish by design).
            if self.inner.live.get() == 0 {
                return Ok(self.inner.now.get());
            }
            // No runnable task: advance time to the next timer.
            let fired = {
                let mut timers = self.inner.timers.borrow_mut();
                timers.pop()
            };
            match fired {
                Some(Reverse(entry)) => {
                    debug_assert!(entry.deadline >= self.inner.now.get());
                    if entry.deadline > self.inner.horizon.get() {
                        return Err(SimError::HorizonExceeded(self.inner.horizon.get()));
                    }
                    self.inner.now.set(entry.deadline.max(self.inner.now.get()));
                    entry.waker.wake();
                    // Fire every timer that shares this deadline before
                    // polling, so same-timestamp wakeups are batched
                    // deterministically.
                    loop {
                        let mut timers = self.inner.timers.borrow_mut();
                        match timers.peek() {
                            Some(Reverse(e)) if e.deadline == entry.deadline => {
                                let Reverse(e) = timers.pop().expect("peeked");
                                drop(timers);
                                e.waker.wake();
                            }
                            _ => break,
                        }
                    }
                }
                None => {
                    let names = {
                        let tasks = self.inner.tasks.borrow();
                        tasks
                            .iter()
                            .filter(|s| s.live && !s.daemon)
                            .map(|s| s.name.to_string())
                            .collect()
                    };
                    return Err(SimError::Deadlock(names));
                }
            }
        }
    }

    /// Spawn `fut`, run the simulation to completion, and return its output.
    pub fn block_on<T: 'static>(
        &self,
        fut: impl Future<Output = T> + 'static,
    ) -> Result<T, SimError> {
        let handle = self.spawn_named("block_on", fut);
        self.run()?;
        Ok(handle.try_take().expect("block_on: run() completed, result must be present"))
    }

    fn poll_task(&self, id: TaskId) {
        let (mut fut, _name) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let slot = &mut tasks[id];
            slot.queued = false;
            if !slot.live {
                return;
            }
            (slot.fut.take().expect("live task has future"), slot.name.clone())
        };
        let waker = Waker::from(Arc::new(TaskWaker { id, queue: self.inner.wake_queue.clone() }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                let slot = &mut tasks[id];
                slot.live = false;
                slot.fut = None;
                let was_daemon = slot.daemon;
                self.inner.free.borrow_mut().push(id);
                if !was_daemon {
                    self.inner.live.set(self.inner.live.get() - 1);
                }
            }
            Poll::Pending => {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks[id].fut = Some(fut);
            }
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiters: Vec<Waker>,
    detached: bool,
}

/// Await the completion of a spawned task and obtain its output.
///
/// Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the result if the task already finished.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Whether the task has finished (result may already have been taken).
    pub fn is_finished(&self) -> bool {
        let st = self.state.borrow();
        st.result.is_some() || st.detached
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::delay`] / [`Sim::delay_until`].
pub struct Delay {
    sim: Sim,
    deadline: Cycles,
    registered: bool,
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            self.sim.register_timer(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run().unwrap(), 0);
    }

    #[test]
    fn delay_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(42).await;
            assert_eq!(s.now(), 42);
            s.delay(8).await;
            assert_eq!(s.now(), 50);
        });
        assert_eq!(sim.run().unwrap(), 50);
    }

    #[test]
    fn zero_delay_is_ready_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(0).await;
            assert_eq!(s.now(), 0);
        });
        assert_eq!(sim.run().unwrap(), 0);
    }

    #[test]
    fn parallel_tasks_share_clock() {
        let sim = Sim::new();
        for d in [10u64, 20, 30] {
            let s = sim.clone();
            sim.spawn(async move {
                s.delay(d).await;
            });
        }
        assert_eq!(sim.run().unwrap(), 30);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                let h = s.spawn(async { 7u32 });
                h.await + 1
            })
            .unwrap();
        assert_eq!(out, 8);
    }

    #[test]
    fn join_waits_for_delayed_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                let s2 = s.clone();
                let h = s.spawn(async move {
                    s2.delay(100).await;
                    s2.now()
                });
                h.await
            })
            .unwrap();
        assert_eq!(out, 100);
    }

    #[test]
    fn deterministic_interleaving() {
        // Two identical runs must produce identical event logs.
        fn run_once() -> Vec<(u64, u32)> {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..4u32 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    for k in 0..3u64 {
                        s.delay(7 * (i as u64 + 1) + k).await;
                        l.borrow_mut().push((s.now(), i));
                    }
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_named("stuck-one", async move {
            // Waits on a join handle of a task that never gets spawned's
            // equivalent: a pending future that nobody wakes.
            std::future::pending::<()>().await;
            drop(s);
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck-one".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn horizon_guard_fires() {
        let sim = Sim::new();
        sim.set_horizon(1_000);
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(10_000).await;
        });
        assert_eq!(sim.run(), Err(SimError::HorizonExceeded(1_000)));
    }

    #[test]
    fn yield_now_round_robins() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2u32 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                for _ in 0..2 {
                    l.borrow_mut().push(i);
                    s.yield_now().await;
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(&*log.borrow(), &[0, 1, 0, 1]);
    }

    #[test]
    fn same_deadline_fifo_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.delay(100).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn spawn_from_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim
            .block_on(async move {
                let mut handles = Vec::new();
                for i in 0..10u64 {
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        s2.delay(i).await;
                        i
                    }));
                }
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                sum
            })
            .unwrap();
        assert_eq!(total, 45);
    }

    #[test]
    fn abort_surfaces_from_run() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_named("watchdog-victim", async move {
            s.delay(500).await;
            s.abort("flag poll timed out");
            std::future::pending::<()>().await;
        });
        assert_eq!(sim.run(), Err(SimError::Aborted("flag poll timed out".into())));
        assert_eq!(sim.now(), 500);
    }

    #[test]
    fn first_abort_reason_wins() {
        let sim = Sim::new();
        for (d, msg) in [(10u64, "first"), (20, "second")] {
            let s = sim.clone();
            sim.spawn(async move {
                s.delay(d).await;
                s.abort(msg);
                std::future::pending::<()>().await;
            });
        }
        assert_eq!(sim.run(), Err(SimError::Aborted("first".into())));
    }

    #[test]
    fn task_slots_are_reused() {
        let sim = Sim::new();
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        assert!(sim.inner.tasks.borrow().len() <= 100);
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        // Slots freed by the first wave must have been recycled.
        assert!(sim.inner.tasks.borrow().len() <= 100);
    }
}
