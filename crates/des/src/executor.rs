//! The virtual-clock executor.
//!
//! Single-threaded and strictly deterministic: the ready queue is FIFO, the
//! timer wheel breaks deadline ties by insertion sequence, and wakers enqueue
//! task ids in wake order. Simulated time advances only when no task is
//! runnable.
//!
//! The hot paths are allocation-free in steady state: timers live in a
//! hierarchical [`crate::wheel::TimerWheel`] (slab-backed, cancellable —
//! a dropped [`Delay`] withdraws its entry instead of leaving it to fire)
//! and carry a bare task id that is pushed straight onto the ready queue
//! when they fire — an in-task `delay` never touches a [`Waker`] at all.
//! Polls receive a per-`Sim` *hub* waker (a borrowed [`RawWaker`] over the
//! executor itself); cloning it — which only foreign futures such as
//! channels or `JoinHandle`s do — materialises a cached per-task
//! `Arc<TaskWaker>` that is fully thread-safe. The wake queue drains
//! through a reusable swap buffer, and task names are interned ids
//! resolved to strings only on the deadlock error path.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Wake, Waker};

use std::sync::{Mutex, PoisonError};

use crate::time::Cycles;
use crate::wheel::{TimerId, TimerWheel};

type TaskId = usize;

/// A spawned task. Its future and its join state share one `Rc`
/// allocation: the executor drives it through [`RunTask`], the
/// [`JoinHandle`] reads the result through [`JoinAccess`] — two
/// trait-object views of the same `Rc<TaskCell<F>>`.
enum TaskState<F: Future> {
    /// The future, structurally pinned inside the `Rc` (never moved; see
    /// the safety comment in `poll_cell`).
    Running(F),
    /// Completion overwrites the future in place; holds the result until
    /// the join handle takes it.
    Finished(Option<F::Output>),
}

struct TaskCell<F: Future> {
    state: RefCell<TaskState<F>>,
    waiters: RefCell<Vec<Waker>>,
}

trait RunTask {
    /// Poll the task; `true` means it completed (waiters were woken).
    fn poll_cell(&self, cx: &mut Context<'_>) -> bool;
}

impl<F: Future> RunTask for TaskCell<F> {
    fn poll_cell(&self, cx: &mut Context<'_>) -> bool {
        let mut state = self.state.borrow_mut();
        let fut = match &mut *state {
            TaskState::Running(f) => f,
            TaskState::Finished(_) => return true,
        };
        // SAFETY: the future lives inside the `Rc<TaskCell<F>>` allocation
        // and is never moved out of it. Completion overwrites the enum
        // variant in place, which drops the future at its pinned address
        // before the slot is reused — exactly the drop guarantee `Pin`
        // requires. This is the executor's only unsafe pinning.
        let fut = unsafe { Pin::new_unchecked(fut) };
        match fut.poll(cx) {
            Poll::Ready(out) => {
                *state = TaskState::Finished(Some(out));
                drop(state);
                for w in self.waiters.borrow_mut().drain(..) {
                    w.wake();
                }
                true
            }
            Poll::Pending => false,
        }
    }
}

trait JoinAccess<T> {
    /// Take the result, or enqueue `waker` for completion.
    fn take_or_wait(&self, waker: &Waker) -> Option<T>;
    fn try_take(&self) -> Option<T>;
    fn is_finished(&self) -> bool;
}

impl<F: Future> JoinAccess<F::Output> for TaskCell<F> {
    fn take_or_wait(&self, waker: &Waker) -> Option<F::Output> {
        if let TaskState::Finished(result) = &mut *self.state.borrow_mut() {
            if let Some(v) = result.take() {
                return Some(v);
            }
        }
        self.waiters.borrow_mut().push(waker.clone());
        None
    }

    fn try_take(&self) -> Option<F::Output> {
        match &mut *self.state.borrow_mut() {
            TaskState::Finished(result) => result.take(),
            TaskState::Running(_) => None,
        }
    }

    fn is_finished(&self) -> bool {
        matches!(&*self.state.borrow(), TaskState::Finished(Some(_)))
    }
}

/// Error returned by [`Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No task is runnable, no timer is pending, but live tasks remain: the
    /// simulated system is deadlocked. Carries the names of the stuck tasks.
    Deadlock(Vec<String>),
    /// The simulation exceeded the configured cycle horizon.
    HorizonExceeded(Cycles),
    /// A task requested a diagnosed abort via [`Sim::abort`] (e.g. a poll
    /// watchdog converting an infinite flag wait into a timeout). Carries
    /// the abort reason.
    Aborted(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(names) => {
                write!(f, "simulated deadlock; stuck tasks: {}", names.join(", "))
            }
            SimError::HorizonExceeded(h) => write!(f, "simulation exceeded horizon of {h} cycles"),
            SimError::Aborted(reason) => write!(f, "simulation aborted: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a bounded scheduling window (see [`Sim::run_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every non-daemon task finished; carries the final timestamp.
    Done(Cycles),
    /// The window is exhausted: nothing is runnable and the next pending
    /// timer fires at or beyond the bound. More work remains.
    Bound,
    /// Live tasks remain but nothing is runnable and no timer is pending
    /// at all. In a standalone run this is a deadlock; in a sharded run
    /// it may just mean the shard is waiting on a cross-shard message.
    Stalled,
}

/// Host-side scheduler counters, for the wall-clock perf harness
/// (`engine_micro`). These count *engine operations*, not simulated
/// cycles, and never feed the virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tasks spawned (including daemons).
    pub spawned: u64,
    /// Future polls executed.
    pub polls: u64,
    /// Timers registered.
    pub timers_set: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Timers withdrawn before firing (dropped delays, race losers).
    pub timers_cancelled: u64,
    /// Task wakeups drained from the wake queue.
    pub wakes: u64,
}

impl std::ops::AddAssign for EngineStats {
    /// Aggregate counters across shard workers (see [`crate::shard`]).
    fn add_assign(&mut self, o: EngineStats) {
        self.spawned += o.spawned;
        self.polls += o.polls;
        self.timers_set += o.timers_set;
        self.timers_fired += o.timers_fired;
        self.timers_cancelled += o.timers_cancelled;
        self.wakes += o.wakes;
    }
}

impl EngineStats {
    /// Total scheduler operations — the "events" of an events/sec figure.
    pub fn events(&self) -> u64 {
        self.polls + self.timers_set + self.timers_fired + self.timers_cancelled + self.wakes
    }
}

/// Wake queue shared with wakers. Wakers may technically be sent across
/// threads, so this is the one `Send`-safe piece of the executor.
#[derive(Default)]
struct WakeQueue {
    ids: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.ids.lock().unwrap_or_else(PoisonError::into_inner).push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.ids.lock().unwrap_or_else(PoisonError::into_inner).push(self.id);
    }
}

/// What a fired timer wakes. In-task delays store the bare task id —
/// firing one is a ready-queue push, no `Waker`, no queue lock. Foreign
/// contexts (a `Delay` polled outside the executor's own tasks) fall back
/// to a real waker.
enum WakeTarget {
    Task(TaskId),
    External(Waker),
}

/// Sentinel for "no task is being polled right now".
const NO_TASK: TaskId = usize::MAX;

/// The executor's shared waker plumbing. During a poll, `current` holds
/// the polled task's id; the *hub waker* handed to every poll is a
/// borrowed [`RawWaker`] over this struct. `wake(_by_ref)` on it enqueues
/// `current`; `clone` materialises (and caches) a real per-task
/// `Arc<TaskWaker>`, so only futures that actually store wakers —
/// channels, semaphores, `JoinHandle`s — pay for one.
struct WakerHub {
    current: Cell<TaskId>,
    queue: Arc<WakeQueue>,
    /// Lazily-built `Arc<TaskWaker>` per task id. Task ids are stable
    /// across slot reuse, so a cached waker serves every task the slot
    /// ever hosts.
    cache: RefCell<Vec<Option<Arc<TaskWaker>>>>,
}

// SAFETY contract for the hub vtable: the raw hub waker exists only for
// the duration of one `poll_task` call on the executor's own thread, and
// `Inner` (which owns the hub) outlives every poll. The un-cloned waker
// must never cross a thread: every clone goes through `hub_clone`, which
// returns an ordinary thread-safe `Arc<TaskWaker>`-backed waker, so a
// future that stores or sends `cx.waker().clone()` is always safe. All
// futures in this workspace are `!Send` (they hold `Rc`s), which keeps
// the borrowed waker on-thread in practice.
unsafe fn hub_clone(data: *const ()) -> RawWaker {
    let hub = &*(data as *const WakerHub);
    let id = hub.current.get();
    debug_assert_ne!(id, NO_TASK, "hub waker cloned outside a poll");
    let mut cache = hub.cache.borrow_mut();
    if cache.len() <= id {
        cache.resize_with(id + 1, || None);
    }
    let arc = cache[id]
        .get_or_insert_with(|| Arc::new(TaskWaker { id, queue: hub.queue.clone() }))
        .clone();
    RawWaker::from(arc)
}

unsafe fn hub_wake(data: *const ()) {
    hub_wake_by_ref(data);
}

unsafe fn hub_wake_by_ref(data: *const ()) {
    let hub = &*(data as *const WakerHub);
    let id = hub.current.get();
    debug_assert_ne!(id, NO_TASK, "hub waker used outside a poll");
    hub.queue.ids.lock().unwrap_or_else(PoisonError::into_inner).push(id);
}

unsafe fn hub_drop(_data: *const ()) {}

static HUB_VTABLE: RawWakerVTable =
    RawWakerVTable::new(hub_clone, hub_wake, hub_wake_by_ref, hub_drop);

struct Slot {
    task: Option<Rc<dyn RunTask>>,
    /// Index into the interned name table (resolved only for diagnostics).
    name: u32,
    /// Task is in the ready queue (dedupes spurious wakes).
    queued: bool,
    /// Slot is occupied by a live task.
    live: bool,
    /// Daemon tasks (e.g. host service loops) do not keep the simulation
    /// alive: the run ends when every non-daemon task finished.
    daemon: bool,
}

/// Interned task names: spawning with a name already seen costs one hash
/// lookup and zero allocations.
struct Names {
    by_name: HashMap<Rc<str>, u32>,
    list: Vec<Rc<str>>,
}

impl Names {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let rc: Rc<str> = Rc::from(name);
        let id = self.list.len() as u32;
        self.list.push(rc.clone());
        self.by_name.insert(rc, id);
        id
    }
}

/// Pre-interned name id for anonymous tasks (see [`Sim::new`]).
const ANON_NAME: u32 = 0;

struct Inner {
    now: Cell<Cycles>,
    horizon: Cell<Cycles>,
    /// Lockstep window width for epoch-sliced runs (0 = disabled; see
    /// [`Sim::set_epoch_slice`]).
    epoch_slice: Cell<Cycles>,
    tasks: RefCell<Vec<Slot>>,
    free: RefCell<Vec<TaskId>>,
    ready: RefCell<VecDeque<TaskId>>,
    timers: RefCell<TimerWheel<WakeTarget>>,
    wake_queue: Arc<WakeQueue>,
    /// Reusable drain buffer swapped with the wake queue under one lock.
    wake_scratch: RefCell<Vec<TaskId>>,
    hub: WakerHub,
    names: RefCell<Names>,
    live: Cell<usize>,
    /// Fast flag mirroring `abort_reason`, checked once per loop turn.
    abort: Cell<bool>,
    /// A diagnosed abort requested by a task; surfaced by [`Sim::run`]
    /// before the next task poll. First request wins.
    abort_reason: RefCell<Option<String>>,
    stat_spawned: Cell<u64>,
    stat_polls: Cell<u64>,
    stat_timers_set: Cell<u64>,
    stat_timers_fired: Cell<u64>,
    stat_timers_cancelled: Cell<u64>,
    stat_wakes: Cell<u64>,
}

/// Handle to the simulation. Cheap to clone; all clones share the clock,
/// scheduler, and task set.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at time 0 with an effectively unbounded
    /// horizon.
    pub fn new() -> Self {
        let mut names = Names { by_name: HashMap::new(), list: Vec::new() };
        let anon = names.intern("task");
        debug_assert_eq!(anon, ANON_NAME);
        let wake_queue = Arc::new(WakeQueue::default());
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(0),
                horizon: Cell::new(Cycles::MAX),
                epoch_slice: Cell::new(0),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                ready: RefCell::new(VecDeque::new()),
                timers: RefCell::new(TimerWheel::new()),
                wake_queue: wake_queue.clone(),
                wake_scratch: RefCell::new(Vec::new()),
                hub: WakerHub {
                    current: Cell::new(NO_TASK),
                    queue: wake_queue,
                    cache: RefCell::new(Vec::new()),
                },
                names: RefCell::new(names),
                live: Cell::new(0),
                abort: Cell::new(false),
                abort_reason: RefCell::new(None),
                stat_spawned: Cell::new(0),
                stat_polls: Cell::new(0),
                stat_timers_set: Cell::new(0),
                stat_timers_fired: Cell::new(0),
                stat_timers_cancelled: Cell::new(0),
                stat_wakes: Cell::new(0),
            }),
        }
    }

    /// Abort the run with [`SimError::HorizonExceeded`] if the clock would
    /// pass `cycles`. Guards against livelock in protocol bugs.
    pub fn set_horizon(&self, cycles: Cycles) {
        self.inner.horizon.set(cycles);
    }

    /// Current simulated time in core cycles.
    pub fn now(&self) -> Cycles {
        self.inner.now.get()
    }

    /// Request a diagnosed abort: [`Sim::run`] returns
    /// [`SimError::Aborted`] with `reason` before polling another task.
    /// The first abort request wins; later ones are ignored. The caller
    /// should park itself afterwards (e.g. `std::future::pending().await`)
    /// — the run loop never polls again once the abort surfaces.
    pub fn abort(&self, reason: impl Into<String>) {
        let mut slot = self.inner.abort_reason.borrow_mut();
        if slot.is_none() {
            *slot = Some(reason.into());
            self.inner.abort.set(true);
        }
    }

    /// Number of unfinished tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }

    /// Number of registered-but-unfired timers. After a clean run this is
    /// zero: dropped delays (e.g. losing `race` arms and poll-watchdog
    /// budgets) withdraw their wheel entries.
    pub fn pending_timers(&self) -> usize {
        self.inner.timers.borrow().len()
    }

    /// Snapshot of the host-side scheduler counters (see [`EngineStats`]).
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            spawned: self.inner.stat_spawned.get(),
            polls: self.inner.stat_polls.get(),
            timers_set: self.inner.stat_timers_set.get(),
            timers_fired: self.inner.stat_timers_fired.get(),
            timers_cancelled: self.inner.stat_timers_cancelled.get(),
            wakes: self.inner.stat_wakes.get(),
        }
    }

    /// Spawn an anonymous task.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.spawn_inner(ANON_NAME, fut, false)
    }

    /// Spawn a task with a diagnostic name (shown in deadlock reports).
    pub fn spawn_named<T: 'static>(
        &self,
        name: impl AsRef<str>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let name = self.inner.names.borrow_mut().intern(name.as_ref());
        self.spawn_inner(name, fut, false)
    }

    /// Spawn a daemon task: it serves the simulation but does not keep it
    /// alive — [`Sim::run`] returns once all non-daemon tasks finished.
    pub fn spawn_daemon<T: 'static>(
        &self,
        name: impl AsRef<str>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let name = self.inner.names.borrow_mut().intern(name.as_ref());
        self.spawn_inner(name, fut, true)
    }

    fn spawn_inner<T: 'static>(
        &self,
        name: u32,
        fut: impl Future<Output = T> + 'static,
        daemon: bool,
    ) -> JoinHandle<T> {
        // One allocation per task: future + join state share the cell.
        let cell = Rc::new(TaskCell {
            state: RefCell::new(TaskState::Running(fut)),
            waiters: RefCell::new(Vec::new()),
        });
        let run: Rc<dyn RunTask> = cell.clone();
        let id = {
            let mut tasks = self.inner.tasks.borrow_mut();
            if let Some(id) = self.inner.free.borrow_mut().pop() {
                let slot = &mut tasks[id];
                slot.task = Some(run);
                slot.name = name;
                slot.queued = true;
                slot.live = true;
                slot.daemon = daemon;
                id
            } else {
                let id = tasks.len();
                tasks.push(Slot { task: Some(run), name, queued: true, live: true, daemon });
                id
            }
        };
        self.inner.stat_spawned.set(self.inner.stat_spawned.get() + 1);
        crate::audit::record_at(
            self.inner.now.get(),
            crate::audit::DecisionKind::Spawn,
            id as u64,
            name as u64,
        );
        if !daemon {
            self.inner.live.set(self.inner.live.get() + 1);
        }
        self.inner.ready.borrow_mut().push_back(id);
        JoinHandle { cell }
    }

    /// Sleep for `cycles` of simulated time.
    pub fn delay(&self, cycles: Cycles) -> Delay {
        Delay {
            sim: self.clone(),
            deadline: self.now().saturating_add(cycles),
            timer: None,
            registered: false,
        }
    }

    /// Sleep until the absolute simulated timestamp `deadline` (no-op if it
    /// is already in the past).
    pub fn delay_until(&self, deadline: Cycles) -> Delay {
        Delay { sim: self.clone(), deadline, timer: None, registered: false }
    }

    /// Yield to other runnable tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn register_timer(&self, deadline: Cycles, target: WakeTarget) -> TimerId {
        self.inner.stat_timers_set.set(self.inner.stat_timers_set.get() + 1);
        let mut timers = self.inner.timers.borrow_mut();
        let seq = timers.next_seq();
        let id = timers.insert(deadline, target);
        crate::audit::record_at(
            self.inner.now.get(),
            crate::audit::DecisionKind::TimerArm,
            deadline,
            seq,
        );
        id
    }

    fn cancel_timer(&self, id: TimerId) {
        if self.inner.timers.borrow_mut().cancel(id) {
            self.inner.stat_timers_cancelled.set(self.inner.stat_timers_cancelled.get() + 1);
            let (idx, generation) = id.parts();
            crate::audit::record_at(
                self.inner.now.get(),
                crate::audit::DecisionKind::TimerCancel,
                idx as u64,
                generation as u64,
            );
        }
    }

    fn drain_wake_queue(&self) {
        let mut scratch = self.inner.wake_scratch.borrow_mut();
        debug_assert!(scratch.is_empty());
        {
            let mut ids = self.inner.wake_queue.ids.lock().unwrap_or_else(PoisonError::into_inner);
            if ids.is_empty() {
                return;
            }
            // Swap instead of take: both vectors keep their capacity, so
            // steady-state draining allocates nothing.
            std::mem::swap(&mut *ids, &mut *scratch);
        }
        self.inner.stat_wakes.set(self.inner.stat_wakes.get() + scratch.len() as u64);
        let mut tasks = self.inner.tasks.borrow_mut();
        let mut ready = self.inner.ready.borrow_mut();
        for &id in scratch.iter() {
            if let Some(slot) = tasks.get_mut(id) {
                if slot.live && !slot.queued {
                    slot.queued = true;
                    ready.push_back(id);
                    crate::audit::record_at(
                        self.inner.now.get(),
                        crate::audit::DecisionKind::Wake,
                        id as u64,
                        0,
                    );
                }
            }
        }
        scratch.clear();
    }

    /// Lockstep window width for epoch-sliced runs. When non-zero,
    /// [`Sim::run`] drives the scheduler through bounded windows (next
    /// pending event + `cycles` at a time) instead of one unbounded loop
    /// — the decision stream is identical (the same pops happen in the
    /// same order, just across multiple [`Sim::run_until`] calls), which
    /// is the byte-identity contract `VSCC_SHARDS` relies on. Sharded
    /// runs (see [`crate::shard`]) use the same windows with a barrier
    /// exchange between them.
    pub fn set_epoch_slice(&self, cycles: Cycles) {
        self.inner.epoch_slice.set(cycles);
    }

    /// The configured lockstep window width (0 = disabled).
    pub fn epoch_slice(&self) -> Cycles {
        self.inner.epoch_slice.get()
    }

    /// Earliest pending live timer deadline, without disturbing the
    /// wheel. The shard engine uses this between windows to pick the
    /// next epoch bound.
    pub fn next_timer_deadline(&self) -> Option<Cycles> {
        self.inner.timers.borrow().earliest_live_deadline()
    }

    /// Names of the live non-daemon tasks, from the interned table — the
    /// payload of a [`SimError::Deadlock`] report. The shard engine
    /// prefixes these with the shard name so a stalled barrier is
    /// diagnosable.
    pub fn live_task_names(&self) -> Vec<String> {
        let tasks = self.inner.tasks.borrow();
        let names_table = self.inner.names.borrow();
        tasks
            .iter()
            .filter(|s| s.live && !s.daemon)
            .map(|s| names_table.list[s.name as usize].to_string())
            .collect()
    }

    /// Run until every task has finished.
    ///
    /// Returns the final timestamp, or an error on deadlock / horizon
    /// overrun (the simulation state stays inspectable after an error).
    pub fn run(&self) -> Result<Cycles, SimError> {
        let slice = self.inner.epoch_slice.get();
        if slice == 0 {
            return match self.run_until(Cycles::MAX)? {
                RunStatus::Done(t) => Ok(t),
                RunStatus::Stalled => Err(SimError::Deadlock(self.live_task_names())),
                RunStatus::Bound => unreachable!("unbounded window cannot stop at the bound"),
            };
        }
        // Epoch-sliced run: same scheduler, windowed. The bound skips
        // ahead to (next pending event + slice) each window, so idle
        // spans cost one window instead of one per slice.
        let mut bound = match self.next_timer_deadline() {
            Some(d) => d.saturating_add(slice),
            None => slice,
        };
        loop {
            match self.run_until(bound)? {
                RunStatus::Done(t) => return Ok(t),
                RunStatus::Stalled => return Err(SimError::Deadlock(self.live_task_names())),
                RunStatus::Bound => {
                    let next =
                        self.next_timer_deadline().expect("Bound status implies a pending timer");
                    bound = next.saturating_add(slice);
                }
            }
        }
    }

    /// Run one bounded scheduling window: poll and wake freely, but only
    /// fire timers with deadlines strictly below `bound` (`bound ==
    /// Cycles::MAX` is the unbounded run and is inclusive, so a timer
    /// registered *at* `Cycles::MAX` still fires). Returns
    /// [`RunStatus::Bound`] once the only remaining work lies at or
    /// beyond the bound. An unbounded [`Sim::run`] and any sequence of
    /// windows covering the same span produce the *same* decision stream
    /// — pops happen in the same order, just across multiple calls.
    pub fn run_until(&self, bound: Cycles) -> Result<RunStatus, SimError> {
        assert!(bound > 0, "epoch bound must be positive");
        let cap = if bound == Cycles::MAX { Cycles::MAX } else { bound - 1 };
        loop {
            if self.inner.abort.get() {
                let reason =
                    self.inner.abort_reason.borrow_mut().take().expect("abort flag implies reason");
                self.inner.abort.set(false);
                return Err(SimError::Aborted(reason));
            }
            // Fast path: poll the next ready task. Wakes enqueued during
            // a poll are appended (in wake order) once the ready queue
            // empties — the poll sequence is identical to draining before
            // every poll, since both append at the back in wake order.
            let next = self.inner.ready.borrow_mut().pop_front();
            if let Some(id) = next {
                self.poll_task(id);
                continue;
            }
            self.drain_wake_queue();
            if !self.inner.ready.borrow().is_empty() {
                continue;
            }
            // All non-daemon tasks done: the run is complete (daemon
            // service loops never finish by design).
            if self.inner.live.get() == 0 {
                return Ok(RunStatus::Done(self.inner.now.get()));
            }
            // No runnable task: advance time to the next live timer in
            // the window.
            let fired = {
                let mut timers = self.inner.timers.borrow_mut();
                timers.pop_next_capped(cap).map(|(d, t)| (d, t, timers.last_popped_seq()))
            };
            match fired {
                Some((deadline, target, seq)) => {
                    debug_assert!(deadline >= self.inner.now.get());
                    if deadline > self.inner.horizon.get() {
                        return Err(SimError::HorizonExceeded(self.inner.horizon.get()));
                    }
                    self.inner.now.set(deadline.max(self.inner.now.get()));
                    crate::audit::record_at(
                        self.inner.now.get(),
                        crate::audit::DecisionKind::TimerFire,
                        deadline,
                        seq,
                    );
                    self.fire_timer(target);
                    // Fire every timer that shares this deadline before
                    // polling, so same-timestamp wakeups are batched
                    // deterministically.
                    loop {
                        let next = {
                            let mut timers = self.inner.timers.borrow_mut();
                            timers.pop_next_at(deadline).map(|t| (t, timers.last_popped_seq()))
                        };
                        match next {
                            Some((t, seq)) => {
                                crate::audit::record_at(
                                    self.inner.now.get(),
                                    crate::audit::DecisionKind::TimerFire,
                                    deadline,
                                    seq,
                                );
                                self.fire_timer(t);
                            }
                            None => break,
                        }
                    }
                }
                None => {
                    return if self.inner.timers.borrow().is_empty() {
                        Ok(RunStatus::Stalled)
                    } else {
                        Ok(RunStatus::Bound)
                    };
                }
            }
        }
    }

    /// Dispatch a fired timer: a task target goes straight onto the ready
    /// queue (dedup via the `queued` flag, exactly like a drained wake);
    /// an external target falls back to its stored waker.
    fn fire_timer(&self, target: WakeTarget) {
        self.inner.stat_timers_fired.set(self.inner.stat_timers_fired.get() + 1);
        match target {
            WakeTarget::Task(id) => {
                self.inner.stat_wakes.set(self.inner.stat_wakes.get() + 1);
                let mut tasks = self.inner.tasks.borrow_mut();
                if let Some(slot) = tasks.get_mut(id) {
                    if slot.live && !slot.queued {
                        slot.queued = true;
                        self.inner.ready.borrow_mut().push_back(id);
                        crate::audit::record_at(
                            self.inner.now.get(),
                            crate::audit::DecisionKind::Wake,
                            id as u64,
                            0,
                        );
                    }
                }
            }
            WakeTarget::External(waker) => waker.wake(),
        }
    }

    /// Spawn `fut`, run the simulation to completion, and return its output.
    pub fn block_on<T: 'static>(
        &self,
        fut: impl Future<Output = T> + 'static,
    ) -> Result<T, SimError> {
        let handle = self.spawn_named("block_on", fut);
        self.run()?;
        Ok(handle.try_take().expect("block_on: run() completed, result must be present"))
    }

    fn poll_task(&self, id: TaskId) {
        let task = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let slot = &mut tasks[id];
            slot.queued = false;
            if !slot.live {
                return;
            }
            slot.task.take().expect("live task has runner")
        };
        self.inner.stat_polls.set(self.inner.stat_polls.get() + 1);
        crate::audit::record_at(
            self.inner.now.get(),
            crate::audit::DecisionKind::Poll,
            id as u64,
            0,
        );
        let hub = &self.inner.hub;
        hub.current.set(id);
        // SAFETY: the hub waker borrows `self.inner.hub`, which outlives
        // this poll (the `Rc<Inner>` is held by `self`); it is used and
        // dropped on this thread only, and every clone is converted to a
        // thread-safe `Arc<TaskWaker>` by `hub_clone`. See the vtable's
        // safety contract above.
        let waker = unsafe {
            Waker::from_raw(RawWaker::new(hub as *const WakerHub as *const (), &HUB_VTABLE))
        };
        let mut cx = Context::from_waker(&waker);
        let done = task.poll_cell(&mut cx);
        hub.current.set(NO_TASK);
        if done {
            drop(task);
            let mut tasks = self.inner.tasks.borrow_mut();
            let slot = &mut tasks[id];
            slot.live = false;
            let was_daemon = slot.daemon;
            self.inner.free.borrow_mut().push(id);
            if !was_daemon {
                self.inner.live.set(self.inner.live.get() - 1);
            }
        } else {
            self.inner.tasks.borrow_mut()[id].task = Some(task);
        }
    }
}

/// Await the completion of a spawned task and obtain its output.
///
/// Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    cell: Rc<dyn JoinAccess<T>>,
}

impl<T> JoinHandle<T> {
    /// Take the result if the task already finished.
    pub fn try_take(&self) -> Option<T> {
        self.cell.try_take()
    }

    /// Whether the task has finished and its result is still available.
    pub fn is_finished(&self) -> bool {
        self.cell.is_finished()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match self.cell.take_or_wait(cx.waker()) {
            Some(v) => Poll::Ready(v),
            None => Poll::Pending,
        }
    }
}

/// Future returned by [`Sim::delay`] / [`Sim::delay_until`].
///
/// Dropping an unfired `Delay` cancels its timer: a losing `race` arm no
/// longer leaves a stale entry to drag the clock (or a deadlock
/// diagnosis) to its deadline.
pub struct Delay {
    sim: Sim,
    deadline: Cycles,
    timer: Option<TimerId>,
    registered: bool,
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            if let Some(id) = self.timer.take() {
                self.sim.cancel_timer(id);
            }
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            // Inside one of the executor's own polls, the timer carries
            // the bare task id (fired straight onto the ready queue);
            // only a foreign context pays for a waker clone.
            let target = match self.sim.inner.hub.current.get() {
                NO_TASK => WakeTarget::External(cx.waker().clone()),
                id => WakeTarget::Task(id),
            };
            let id = self.sim.register_timer(self.deadline, target);
            self.timer = Some(id);
        }
        Poll::Pending
    }
}

impl Drop for Delay {
    fn drop(&mut self) {
        if let Some(id) = self.timer.take() {
            self.sim.cancel_timer(id);
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run().unwrap(), 0);
    }

    #[test]
    fn delay_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(42).await;
            assert_eq!(s.now(), 42);
            s.delay(8).await;
            assert_eq!(s.now(), 50);
        });
        assert_eq!(sim.run().unwrap(), 50);
    }

    #[test]
    fn zero_delay_is_ready_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(0).await;
            assert_eq!(s.now(), 0);
        });
        assert_eq!(sim.run().unwrap(), 0);
    }

    #[test]
    fn parallel_tasks_share_clock() {
        let sim = Sim::new();
        for d in [10u64, 20, 30] {
            let s = sim.clone();
            sim.spawn(async move {
                s.delay(d).await;
            });
        }
        assert_eq!(sim.run().unwrap(), 30);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                let h = s.spawn(async { 7u32 });
                h.await + 1
            })
            .unwrap();
        assert_eq!(out, 8);
    }

    #[test]
    fn join_waits_for_delayed_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                let s2 = s.clone();
                let h = s.spawn(async move {
                    s2.delay(100).await;
                    s2.now()
                });
                h.await
            })
            .unwrap();
        assert_eq!(out, 100);
    }

    #[test]
    fn deterministic_interleaving() {
        // Two identical runs must produce identical event logs.
        fn run_once() -> Vec<(u64, u32)> {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..4u32 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    for k in 0..3u64 {
                        s.delay(7 * (i as u64 + 1) + k).await;
                        l.borrow_mut().push((s.now(), i));
                    }
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_named("stuck-one", async move {
            // Waits on a join handle of a task that never gets spawned's
            // equivalent: a pending future that nobody wakes.
            std::future::pending::<()>().await;
            drop(s);
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck-one".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn horizon_guard_fires() {
        let sim = Sim::new();
        sim.set_horizon(1_000);
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(10_000).await;
        });
        assert_eq!(sim.run(), Err(SimError::HorizonExceeded(1_000)));
    }

    #[test]
    fn yield_now_round_robins() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2u32 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                for _ in 0..2 {
                    l.borrow_mut().push(i);
                    s.yield_now().await;
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(&*log.borrow(), &[0, 1, 0, 1]);
    }

    #[test]
    fn same_deadline_fifo_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.delay(100).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn spawn_from_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim
            .block_on(async move {
                let mut handles = Vec::new();
                for i in 0..10u64 {
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        s2.delay(i).await;
                        i
                    }));
                }
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                sum
            })
            .unwrap();
        assert_eq!(total, 45);
    }

    #[test]
    fn abort_surfaces_from_run() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_named("watchdog-victim", async move {
            s.delay(500).await;
            s.abort("flag poll timed out");
            std::future::pending::<()>().await;
        });
        assert_eq!(sim.run(), Err(SimError::Aborted("flag poll timed out".into())));
        assert_eq!(sim.now(), 500);
    }

    #[test]
    fn first_abort_reason_wins() {
        let sim = Sim::new();
        for (d, msg) in [(10u64, "first"), (20, "second")] {
            let s = sim.clone();
            sim.spawn(async move {
                s.delay(d).await;
                s.abort(msg);
                std::future::pending::<()>().await;
            });
        }
        assert_eq!(sim.run(), Err(SimError::Aborted("first".into())));
    }

    #[test]
    fn task_slots_are_reused() {
        let sim = Sim::new();
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        assert!(sim.inner.tasks.borrow().len() <= 100);
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        // Slots freed by the first wave must have been recycled.
        assert!(sim.inner.tasks.borrow().len() <= 100);
    }

    #[test]
    fn dropped_delay_cancels_its_timer() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            {
                let d = s.delay(1_000_000);
                // Poll once so the timer registers, then drop the future.
                futures_poll_once(d).await;
            }
            assert_eq!(s.pending_timers(), 0);
            s.delay(10).await;
        });
        assert_eq!(sim.run().unwrap(), 10);
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn deadlock_reports_at_real_time_not_stale_deadline() {
        // Pre-wheel, the losing arm's timer stayed in the heap: an
        // ensuing hang was diagnosed only once the clock had been
        // dragged to the stale deadline.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_named("hung", async move {
            crate::sync::race(s.delay(10), s.delay(1_000_000)).await;
            std::future::pending::<()>().await;
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["hung".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn engine_stats_count_scheduler_work() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(5).await;
            s.delay(5).await;
        });
        sim.run().unwrap();
        let st = sim.engine_stats();
        assert_eq!(st.spawned, 1);
        assert_eq!(st.timers_set, 2);
        assert_eq!(st.timers_fired, 2);
        assert_eq!(st.timers_cancelled, 0);
        assert!(st.polls >= 3);
        assert_eq!(st.wakes, st.timers_fired);
    }

    #[test]
    fn run_until_windows_match_unbounded_run() {
        // The same workload driven through bounded windows must produce
        // the same final state as one unbounded run — the byte-identity
        // contract behind epoch slicing.
        fn spawn_workload(sim: &Sim) -> Rc<RefCell<Vec<(u64, u32)>>> {
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..4u32 {
                let s = sim.clone();
                let l = log.clone();
                sim.spawn(async move {
                    for k in 0..5u64 {
                        s.delay(13 * (i as u64 + 1) + k).await;
                        l.borrow_mut().push((s.now(), i));
                    }
                });
            }
            log
        }
        let serial = Sim::new();
        let serial_log = spawn_workload(&serial);
        let end = serial.run().unwrap();

        let windowed = Sim::new();
        let windowed_log = spawn_workload(&windowed);
        let mut bound = 7;
        let final_t = loop {
            match windowed.run_until(bound).unwrap() {
                RunStatus::Done(t) => break t,
                RunStatus::Bound => bound += 7,
                RunStatus::Stalled => panic!("workload cannot stall"),
            }
        };
        assert_eq!(final_t, end);
        assert_eq!(*serial_log.borrow(), *windowed_log.borrow());
        assert_eq!(serial.engine_stats(), windowed.engine_stats());
    }

    #[test]
    fn run_until_reports_stalled_without_timers() {
        let sim = Sim::new();
        sim.spawn_named("parked", std::future::pending::<()>());
        assert_eq!(sim.run_until(100).unwrap(), RunStatus::Stalled);
        assert_eq!(sim.live_task_names(), vec!["parked".to_string()]);
    }

    #[test]
    fn epoch_slice_run_is_equivalent() {
        fn run_once(slice: u64) -> (u64, EngineStats) {
            let sim = Sim::new();
            if slice > 0 {
                sim.set_epoch_slice(slice);
            }
            for i in 0..3u32 {
                let s = sim.clone();
                sim.spawn(async move {
                    for k in 0..4u64 {
                        s.delay(1_000 * (i as u64 + 1) + k).await;
                    }
                });
            }
            let t = sim.run().unwrap();
            (t, sim.engine_stats())
        }
        let baseline = run_once(0);
        for slice in [1, 17, 1_000, u64::MAX] {
            assert_eq!(run_once(slice), baseline, "slice {slice} diverged");
        }
    }

    #[test]
    fn epoch_slice_still_reports_deadlock() {
        let sim = Sim::new();
        sim.set_epoch_slice(50);
        let s = sim.clone();
        sim.spawn_named("stuck-sliced", async move {
            s.delay(120).await;
            std::future::pending::<()>().await;
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => {
                assert_eq!(names, vec!["stuck-sliced".to_string()])
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(sim.now(), 120);
    }

    #[test]
    fn engine_stats_aggregate_with_add_assign() {
        let mut a = EngineStats {
            spawned: 1,
            polls: 2,
            timers_set: 3,
            timers_fired: 4,
            timers_cancelled: 5,
            wakes: 6,
        };
        let b = a;
        a += b;
        assert_eq!(a.spawned, 2);
        assert_eq!(a.events(), 2 * (2 + 3 + 4 + 5 + 6));
    }

    /// Poll a future exactly once with a no-op waker, then drop it.
    async fn futures_poll_once<F: Future + Unpin>(mut f: F) {
        std::future::poll_fn(move |cx| {
            let _ = Pin::new(&mut f).poll(cx);
            Poll::Ready(())
        })
        .await
    }
}
