//! Structured protocol event tracing.
//!
//! Events are typed — an actor, a [`Category`], a kind, and named payload
//! fields — and carry virtual-clock timestamps only, so a trace of a
//! seeded run is bit-reproducible. Point events ([`Trace::instant`]) and
//! begin/end spans ([`Trace::begin`] / [`Trace::end`]) both feed the
//! Figure 2 text timeline ([`Trace::render`]) and the Chrome-trace-event
//! export in [`crate::obs`].
//!
//! Categories can be enabled selectively; a disabled category (or a fully
//! disabled trace) costs one branch per call site — the actor and field
//! closures are never evaluated, so the disabled path performs no
//! allocation, hashing, or formatting at all.
//!
//! Actor names are *interned*: every recorded event stores an
//! [`Rc<str>`] from a per-trace table, so a million events from
//! `"rank0"` share one string. Hot call sites can pre-intern their
//! label once ([`Trace::intern`]) and return the cached `Rc<str>` from
//! the actor closure, making the enabled recording path allocation-free
//! for the actor as well.
//!
//! Events may carry a *flow id* (see [`Trace::instant_f`]) tying the hops
//! of one logical message together across actors; the Chrome exporter in
//! [`crate::obs`] turns these into flow arrows and
//! [`crate::critpath`] reconstructs per-message timelines from them.
//! A trace can also run as a bounded *flight recorder*
//! ([`Trace::ring`]): only the last N events are kept, for dumping on
//! failure without unbounded memory growth.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::time::Cycles;

/// Event category, used both for filtering and for the `cat` field of the
/// Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// RCCE/iRCCE message-passing protocol steps (put, flag, chunk).
    Protocol,
    /// PCIe tunnel/link transfers.
    Pcie,
    /// Host-side vDMA operations.
    Vdma,
    /// Message-passing-buffer accesses.
    Mpb,
    /// Application-level events (e.g. NPB BT payload verification).
    App,
    /// Injected faults and the recovery actions they trigger (drops,
    /// corruption, retries, fallback demotions, watchdog trips).
    Fault,
    /// Per-pair health-FSM transitions and canary probes of the
    /// self-healing layer (demote, probe, re-promote, quarantine).
    Health,
}

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; 7] = [
        Category::Protocol,
        Category::Pcie,
        Category::Vdma,
        Category::Mpb,
        Category::App,
        Category::Fault,
        Category::Health,
    ];

    fn bit(self) -> u8 {
        1 << self as u8
    }

    /// Mask with every category enabled (what `&Category::ALL` builds).
    pub(crate) const ALL_MASK: u8 = (1 << Category::ALL.len()) - 1;

    /// Lower-case name, as exported.
    pub fn name(self) -> &'static str {
        match self {
            Category::Protocol => "protocol",
            Category::Pcie => "pcie",
            Category::Vdma => "vdma",
            Category::Mpb => "mpb",
            Category::App => "app",
            Category::Fault => "fault",
            Category::Health => "health",
        }
    }
}

/// A typed payload field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    Str(&'static str),
    Text(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Text(s) => f.write_str(s),
        }
    }
}

macro_rules! field_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::U64(v as u64)
            }
        }
    )*};
}
field_from_uint!(u8, u16, u32, u64, usize);

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(s: &'static str) -> Self {
        FieldValue::Str(s)
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Text(s)
    }
}

/// Named payload fields of one event.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// Build a [`Fields`] list: `fields![bytes = n, dest = d]`.
#[macro_export]
macro_rules! fields {
    ($($name:ident = $value:expr),* $(,)?) => {
        vec![$((stringify!($name), $crate::trace::FieldValue::from($value))),*]
    };
}

/// What an actor closure returns: any of the common string shapes.
///
/// The recording methods accept `impl FnOnce() -> A` for any
/// `A: Into<ActorLabel>`, so call sites can return a `&'static str`, a
/// freshly formatted `String`, or — on hot paths — a pre-interned
/// [`Rc<str>`] from [`Trace::intern`], which records without touching
/// the intern table or allocating.
pub enum ActorLabel {
    /// A static name; interned on first use.
    Static(&'static str),
    /// A formatted name; interned (the temporary is dropped).
    Owned(String),
    /// An already-interned name; stored as-is with no table lookup.
    Interned(Rc<str>),
}

impl From<&'static str> for ActorLabel {
    fn from(s: &'static str) -> Self {
        ActorLabel::Static(s)
    }
}

impl From<String> for ActorLabel {
    fn from(s: String) -> Self {
        ActorLabel::Owned(s)
    }
}

impl From<Rc<str>> for ActorLabel {
    fn from(s: Rc<str>) -> Self {
        ActorLabel::Interned(s)
    }
}

impl From<&Rc<str>> for ActorLabel {
    fn from(s: &Rc<str>) -> Self {
        ActorLabel::Interned(s.clone())
    }
}

/// Whether an event is a point or delimits a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    Instant,
    Begin,
    End,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp (core cycles).
    pub time: Cycles,
    /// The acting entity, e.g. `"rank0"`, `"host"`, `"vdma1"`.
    /// Interned: events from the same actor share one allocation.
    pub actor: Rc<str>,
    /// Event category.
    pub cat: Category,
    /// Event kind, e.g. `"put"`, `"flag_set"`, `"chunk"`.
    pub kind: &'static str,
    /// Point event or span delimiter.
    pub phase: SpanPhase,
    /// Flow id of the message this hop belongs to, if any.
    pub flow: Option<u64>,
    /// Named payload fields.
    pub fields: Fields,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let marker = match self.phase {
            SpanPhase::Instant => ' ',
            SpanPhase::Begin => '[',
            SpanPhase::End => ']',
        };
        write!(
            f,
            "{:>12}  {:<12} {:<9}{}{}",
            self.time,
            self.actor,
            self.cat.name(),
            marker,
            self.kind
        )?;
        if let Some(flow) = self.flow {
            write!(f, " flow={flow}")?;
        }
        for (name, value) in &self.fields {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

struct TraceInner {
    events: RefCell<Vec<TraceEvent>>,
    /// Enabled-category bitmask. A `Cell` so the audit zoom window can
    /// arm every category inside its epoch and restore the mask after.
    mask: Cell<u8>,
    /// Flight-recorder bound: keep only the last N events.
    capacity: Option<usize>,
    /// Events evicted by the flight-recorder bound.
    dropped: Cell<u64>,
    /// Actor-name intern table; `Rc<str>: Borrow<str>` lets lookups
    /// avoid allocating.
    actors: RefCell<HashSet<Rc<str>>>,
}

impl TraceInner {
    fn intern(&self, name: &str) -> Rc<str> {
        let mut actors = self.actors.borrow_mut();
        match actors.get(name) {
            Some(rc) => rc.clone(),
            None => {
                let rc: Rc<str> = Rc::from(name);
                actors.insert(rc.clone());
                rc
            }
        }
    }

    fn resolve(&self, label: ActorLabel) -> Rc<str> {
        match label {
            // Already interned: store as-is, no hash, no allocation.
            ActorLabel::Interned(rc) => rc,
            ActorLabel::Static(s) => self.intern(s),
            ActorLabel::Owned(s) => self.intern(&s),
        }
    }
}

/// A shared, optionally-enabled structured trace.
///
/// Disabled traces (and disabled categories) are free: the recording
/// methods return after one branch, without evaluating the actor or field
/// closures.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Rc<TraceInner>>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// An enabled trace collecting every category.
    pub fn enabled() -> Self {
        Trace::with_categories(&Category::ALL)
    }

    /// An enabled trace collecting only the given categories.
    pub fn with_categories(cats: &[Category]) -> Self {
        Self::build(cats, None)
    }

    /// A flight recorder: all categories, keeping only the last `capacity`
    /// events. Meant to stay enabled during long runs so a failure can
    /// dump the recent protocol history.
    pub fn ring(capacity: usize) -> Self {
        Self::with_categories_ring(&Category::ALL, capacity)
    }

    /// A flight recorder restricted to the given categories.
    pub fn with_categories_ring(cats: &[Category], capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a non-zero capacity");
        Self::build(cats, Some(capacity))
    }

    fn build(cats: &[Category], capacity: Option<usize>) -> Self {
        let mask = cats.iter().fold(0u8, |m, c| m | c.bit());
        Trace {
            inner: Some(Rc::new(TraceInner {
                events: RefCell::new(Vec::new()),
                mask: Cell::new(mask),
                capacity,
                dropped: Cell::new(0),
                actors: RefCell::new(HashSet::new()),
            })),
        }
    }

    /// The flight-recorder bound, if this trace is a ring.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|i| i.capacity)
    }

    /// Events evicted by the flight-recorder bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.dropped.get()).unwrap_or(0)
    }

    /// Whether any category is being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether events of `cat` are being collected.
    pub fn enabled_for(&self, cat: Category) -> bool {
        match &self.inner {
            Some(inner) => inner.mask.get() & cat.bit() != 0,
            None => false,
        }
    }

    /// Current enabled-category bitmask (0 for a disabled trace).
    pub(crate) fn category_mask(&self) -> u8 {
        self.inner.as_ref().map(|i| i.mask.get()).unwrap_or(0)
    }

    /// Replace the enabled-category bitmask. Used by the audit zoom
    /// window to arm every category inside one epoch; a no-op on a
    /// disabled trace (there is no event storage to arm).
    pub(crate) fn set_category_mask(&self, mask: u8) {
        if let Some(inner) = &self.inner {
            inner.mask.set(mask);
        }
    }

    /// Intern an actor name, returning the shared `Rc<str>` for it.
    ///
    /// Hot call sites cache this once and return clones of it from
    /// their actor closures — recording then stores the label without
    /// hashing or allocating. On a disabled trace this still returns a
    /// usable (but untabled) `Rc<str>`.
    pub fn intern(&self, name: &str) -> Rc<str> {
        match &self.inner {
            Some(inner) => inner.intern(name),
            None => Rc::from(name),
        }
    }

    #[allow(clippy::too_many_arguments)] // internal funnel for every emit path
    fn push<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        phase: SpanPhase,
        kind: &'static str,
        flow: Option<u64>,
        actor: impl FnOnce() -> A,
        fields: impl FnOnce() -> Fields,
    ) {
        if let Some(inner) = &self.inner {
            if inner.mask.get() & cat.bit() != 0 {
                let actor = inner.resolve(actor().into());
                let mut events = inner.events.borrow_mut();
                if let Some(cap) = inner.capacity {
                    if events.len() >= cap {
                        // The ring is small by construction; shifting once
                        // per push beats a deque for the common read path.
                        events.remove(0);
                        inner.dropped.set(inner.dropped.get() + 1);
                    }
                }
                events.push(TraceEvent { time, actor, cat, kind, phase, flow, fields: fields() });
            }
        }
    }

    /// Record a point event. `actor` and `fields` are only evaluated when
    /// the category is enabled.
    pub fn instant<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        actor: impl FnOnce() -> A,
        fields: impl FnOnce() -> Fields,
    ) {
        self.push(time, cat, SpanPhase::Instant, kind, None, actor, fields);
    }

    /// Record a point event carrying a flow id.
    pub fn instant_f<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        flow: Option<u64>,
        actor: impl FnOnce() -> A,
        fields: impl FnOnce() -> Fields,
    ) {
        self.push(time, cat, SpanPhase::Instant, kind, flow, actor, fields);
    }

    /// Open a span. Must be closed by [`Trace::end`] with the same actor
    /// and kind; spans of one actor nest like a call stack.
    pub fn begin<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        actor: impl FnOnce() -> A,
        fields: impl FnOnce() -> Fields,
    ) {
        self.push(time, cat, SpanPhase::Begin, kind, None, actor, fields);
    }

    /// Open a span carrying a flow id.
    pub fn begin_f<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        flow: Option<u64>,
        actor: impl FnOnce() -> A,
        fields: impl FnOnce() -> Fields,
    ) {
        self.push(time, cat, SpanPhase::Begin, kind, flow, actor, fields);
    }

    /// Close the innermost open span of `actor` with this `kind`.
    pub fn end<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        actor: impl FnOnce() -> A,
    ) {
        self.push(time, cat, SpanPhase::End, kind, None, actor, Vec::new);
    }

    /// Close a span, tagging the end event with the flow id.
    pub fn end_f<A: Into<ActorLabel>>(
        &self,
        time: Cycles,
        cat: Category,
        kind: &'static str,
        flow: Option<u64>,
        actor: impl FnOnce() -> A,
    ) {
        self.push(time, cat, SpanPhase::End, kind, flow, actor, Vec::new);
    }

    /// Run `f` over the recorded events without cloning them.
    pub fn with_events<R>(&self, f: impl FnOnce(&[TraceEvent]) -> R) -> R {
        match &self.inner {
            Some(inner) => f(&inner.events.borrow()),
            None => f(&[]),
        }
    }

    /// Snapshot of all events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.with_events(|ev| ev.to_vec())
    }

    /// Events whose actor matches `actor` (only matches are cloned).
    pub fn events_of(&self, actor: &str) -> Vec<TraceEvent> {
        self.with_events(|ev| ev.iter().filter(|e| &*e.actor == actor).cloned().collect())
    }

    /// Events of one category (only matches are cloned).
    pub fn events_in(&self, cat: Category) -> Vec<TraceEvent> {
        self.with_events(|ev| ev.iter().filter(|e| e.cat == cat).cloned().collect())
    }

    /// Render as an aligned text timeline (the Figure 2 view). For a
    /// flight recorder a header states how many earlier events were
    /// evicted, so a dump is honest about what it no longer shows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped() > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) evicted by the flight recorder ...\n",
                self.dropped()
            ));
        }
        self.with_events(|events| {
            for e in events {
                out.push_str(&e.to_string());
                out.push('\n');
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_closures() {
        let t = Trace::disabled();
        t.instant(
            1,
            Category::Protocol,
            "x",
            || -> &'static str { panic!("actor must not run") },
            || panic!("fields must not run"),
        );
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
        assert!(!t.enabled_for(Category::App));
    }

    #[test]
    fn enabled_collects_in_order() {
        let t = Trace::enabled();
        t.instant(5, Category::Protocol, "put", || "rank0", || fields![bytes = 64u64]);
        t.instant(9, Category::Protocol, "get", || "rank1", Vec::new);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].time, 5);
        assert_eq!(ev[0].fields, vec![("bytes", FieldValue::U64(64))]);
        assert_eq!(&*ev[1].actor, "rank1");
    }

    #[test]
    fn category_filter_drops_and_skips() {
        let t = Trace::with_categories(&[Category::Pcie]);
        assert!(t.enabled_for(Category::Pcie));
        assert!(!t.enabled_for(Category::Protocol));
        t.instant(
            1,
            Category::Protocol,
            "x",
            || -> &'static str { panic!("filtered actor must not run") },
            || panic!("filtered fields must not run"),
        );
        t.instant(2, Category::Pcie, "xfer", || "link0", Vec::new);
        let ev = t.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].cat, Category::Pcie);
    }

    #[test]
    fn spans_record_phases() {
        let t = Trace::enabled();
        t.begin(10, Category::Vdma, "dma", || "vdma0", || fields![bytes = 4096u64]);
        t.end(25, Category::Vdma, "dma", || "vdma0");
        let ev = t.events();
        assert_eq!(ev[0].phase, SpanPhase::Begin);
        assert_eq!(ev[1].phase, SpanPhase::End);
        assert!(ev[0].time < ev[1].time);
    }

    #[test]
    fn filter_by_actor() {
        let t = Trace::enabled();
        t.instant(1, Category::App, "x", || "a", Vec::new);
        t.instant(2, Category::App, "y", || "b", Vec::new);
        t.instant(3, Category::App, "z", || "a", Vec::new);
        assert_eq!(t.events_of("a").len(), 2);
        assert_eq!(t.events_in(Category::App).len(), 3);
    }

    #[test]
    fn render_contains_all_lines() {
        let t = Trace::enabled();
        t.instant(1, Category::Protocol, "one", || "a", || fields![n = 7u64]);
        t.begin(2, Category::Mpb, "two", || "b", Vec::new);
        let s = t.render();
        assert!(s.contains("one") && s.contains("two"));
        assert!(s.contains("n=7"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn flow_ids_recorded_and_rendered() {
        let t = Trace::enabled();
        t.instant_f(1, Category::Protocol, "put", Some(42), || "rank0", Vec::new);
        t.begin_f(2, Category::Vdma, "dma", Some(42), || "host", Vec::new);
        t.end_f(3, Category::Vdma, "dma", Some(42), || "host");
        t.instant(4, Category::Protocol, "idle", || "rank1", Vec::new);
        let ev = t.events();
        assert_eq!(ev[0].flow, Some(42));
        assert_eq!(ev[1].flow, Some(42));
        assert_eq!(ev[2].flow, Some(42));
        assert_eq!(ev[3].flow, None);
        assert!(t.render().contains("flow=42"));
    }

    #[test]
    fn ring_keeps_only_last_n() {
        let t = Trace::ring(3);
        for i in 0..10u64 {
            t.instant(i, Category::App, "tick", || "a", || fields![i = i]);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].time, 7);
        assert_eq!(ev[2].time, 9);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.capacity(), Some(3));
        assert!(t.render().starts_with("... 7 earlier event(s) evicted"));
    }

    #[test]
    fn with_events_avoids_clone_and_filters_match() {
        let t = Trace::enabled();
        t.instant(1, Category::App, "x", || "a", Vec::new);
        t.instant(2, Category::Pcie, "y", || "b", Vec::new);
        let n = t.with_events(|ev| ev.len());
        assert_eq!(n, 2);
        assert_eq!(t.events_in(Category::Pcie).len(), 1);
        assert_eq!(Trace::disabled().with_events(|ev| ev.len()), 0);
    }
}
