//! Protocol event tracing, used to regenerate the paper's Figure 2
//! (timely behaviour of the blocking vs. pipelined protocols).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::Cycles;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated timestamp (core cycles).
    pub time: Cycles,
    /// The acting entity, e.g. `"rank0"`, `"commtask"`.
    pub actor: String,
    /// Event description, e.g. `"put 4096B"`, `"flag set"`.
    pub what: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}  {:<12} {}", self.time, self.actor, self.what)
    }
}

/// A shared, optionally-enabled protocol trace.
///
/// Disabled traces are free: `record` returns immediately without
/// formatting, so tracing can stay wired into the hot protocol paths.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Rc<RefCell<Vec<TraceEvent>>>>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace { inner: Some(Rc::new(RefCell::new(Vec::new()))) }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event; `what` is only evaluated when enabled.
    pub fn record(&self, time: Cycles, actor: &str, what: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(TraceEvent { time, actor: actor.to_string(), what: what() });
        }
    }

    /// Snapshot of all events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Events whose actor matches `actor`.
    pub fn events_of(&self, actor: &str) -> Vec<TraceEvent> {
        self.events().into_iter().filter(|e| e.actor == actor).collect()
    }

    /// Render as an aligned text timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_closure() {
        let t = Trace::disabled();
        t.record(1, "a", || panic!("must not be evaluated"));
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_collects_in_order() {
        let t = Trace::enabled();
        t.record(5, "rank0", || "put".into());
        t.record(9, "rank1", || "get".into());
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].time, 5);
        assert_eq!(ev[1].actor, "rank1");
    }

    #[test]
    fn filter_by_actor() {
        let t = Trace::enabled();
        t.record(1, "a", || "x".into());
        t.record(2, "b", || "y".into());
        t.record(3, "a", || "z".into());
        assert_eq!(t.events_of("a").len(), 2);
    }

    #[test]
    fn render_contains_all_lines() {
        let t = Trace::enabled();
        t.record(1, "a", || "one".into());
        t.record(2, "b", || "two".into());
        let s = t.render();
        assert!(s.contains("one") && s.contains("two"));
        assert_eq!(s.lines().count(), 2);
    }
}
