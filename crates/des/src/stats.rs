//! Lightweight simulation statistics: counters, gauges and log2
//! histograms. These are the primitive instruments; [`crate::obs`] names
//! and aggregates them into a registry.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A shared monotonically increasing byte counter.
#[derive(Clone, Default)]
pub struct ByteCounter {
    bytes: Rc<Cell<u64>>,
}

impl ByteCounter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` bytes.
    pub fn add(&self, n: u64) {
        self.bytes.set(self.bytes.get() + n);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.bytes.get()
    }
}

/// A shared event counter.
#[derive(Clone, Default)]
pub struct Counter {
    n: Rc<Cell<u64>>,
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.n.set(self.n.get() + 1);
    }

    /// Add `k`.
    pub fn add(&self, k: u64) {
        self.n.set(self.n.get() + k);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.n.get()
    }
}

/// A shared level indicator (queue depths, in-flight transfers).
///
/// Unlike [`Counter`] a gauge moves both ways; it also tracks its high
/// watermark, which is usually the interesting number for queue depths.
#[derive(Clone, Default)]
pub struct Gauge {
    v: Rc<Cell<i64>>,
    max: Rc<Cell<i64>>,
}

impl Gauge {
    /// Create a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current level.
    pub fn set(&self, v: i64) {
        self.v.set(v);
        self.max.set(self.max.get().max(v));
    }

    /// Move the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.set(self.v.get() + d);
    }

    /// Decrease the level by `d`.
    pub fn sub(&self, d: i64) {
        self.add(-d);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.get()
    }

    /// Highest level ever set (0 for a fresh gauge).
    pub fn high_watermark(&self) -> i64 {
        self.max.get()
    }
}

/// Histogram with power-of-two buckets, for latency distributions.
///
/// Bucketing, precisely: bucket 0 counts *only* samples equal to 0;
/// bucket `i >= 1` counts samples in `[2^(i-1), 2^i)`. So 1 is the sole
/// occupant of bucket 1, `[2, 4)` lands in bucket 2, and in general a
/// sample `v > 0` lands in bucket `bit_length(v)` — zero-cycle and
/// one-cycle events are distinguishable, which matters when the paper's
/// fast paths really do complete in under a cycle of overhead.
#[derive(Clone, Default)]
pub struct Log2Histogram {
    buckets: Rc<RefCell<Vec<u64>>>,
    count: Rc<Cell<u64>>,
    sum: Rc<Cell<u128>>,
    max: Rc<Cell<u64>>,
}

impl Log2Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v == 0, else bit_length(v)
        let mut b = self.buckets.borrow_mut();
        if b.len() <= idx {
            b.resize(idx + 1, 0);
        }
        b[idx] += 1;
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get() + v as u128);
        self.max.set(self.max.get().max(v));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum.get()
    }

    /// Arithmetic mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count.get() == 0 {
            0.0
        } else {
            self.sum.get() as f64 / self.count.get() as f64
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max.get()
    }

    /// Snapshot of bucket counts; see the type docs for the index → range
    /// mapping ([`Log2Histogram::bucket_lower_bound`] gives the bound).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets.borrow().clone()
    }

    /// Smallest sample value that lands in bucket `i`.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Approximate quantile: lower bound of the bucket containing quantile
    /// `q` in `[0, 1]`.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        let total = self.count.get();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.borrow().iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_lower_bound(i);
            }
        }
        self.max.get()
    }

    /// Interpolated quantile: linear interpolation *within* the bucket
    /// containing quantile `q`, so nearby tail quantiles no longer
    /// collapse onto the same bucket lower bound. Pure integer
    /// arithmetic over the bucket counts — deterministic — and clamped
    /// to the largest recorded sample.
    pub fn quantile_interpolated(&self, q: f64) -> u64 {
        log2_quantile_interpolated(&self.buckets.borrow(), self.count.get(), self.max.get(), q)
    }
}

/// [`Log2Histogram::quantile_interpolated`] over a raw bucket-count
/// slice (same bucket → value-range mapping). Shared with the windowed
/// time-series sampler, which computes per-interval quantiles from
/// *delta* bucket counts that never live in a histogram object.
///
/// `max` caps the result (pass the largest recorded sample, or
/// `u64::MAX` when no per-window maximum is tracked).
pub fn log2_quantile_interpolated(buckets: &[u64], total: u64, max: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut acc = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if acc + c >= target {
            if i == 0 {
                return 0;
            }
            // Bucket i spans [lo, 2*lo); place rank `into` (1..=c) of
            // its `c` samples at the into/(c+1) point of the span.
            let lo = 1u64 << (i - 1);
            let into = target - acc;
            let v = lo + ((lo as u128 * into as u128) / (c as u128 + 1)) as u64;
            return v.min(max);
        }
        acc += c;
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn byte_counter_shared_clone() {
        let b = ByteCounter::new();
        let b2 = b.clone();
        b.add(5);
        b2.add(7);
        assert_eq!(b.get(), 12);
    }

    #[test]
    fn histogram_buckets() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1024);
        let b = h.buckets();
        assert_eq!(b[0], 1); // exactly 0
        assert_eq!(b[1], 1); // exactly 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 2); // 4, 7
        assert_eq!(b[4], 1); // 8
        assert_eq!(b[11], 1); // 1024
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 and 1 must land in distinct buckets, and every power of two
        // opens a new bucket while 2^i - 1 closes the previous one.
        let h = Log2Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        for i in 1..=32usize {
            let h = Log2Histogram::new();
            let lo = 1u64 << (i - 1);
            h.record(lo); // lower edge of bucket i
            h.record((1u64 << i) - 1); // upper edge of bucket i
            h.record(1u64 << i); // lower edge of bucket i + 1
            let b = h.buckets();
            assert_eq!(b[i], 2, "edges of bucket {i}");
            assert_eq!(b[i + 1], 1, "2^{i} opens bucket {}", i + 1);
            assert_eq!(Log2Histogram::bucket_lower_bound(i), lo);
        }
    }

    #[test]
    fn quantile_uses_bucket_lower_bounds() {
        let h = Log2Histogram::new();
        for _ in 0..10 {
            h.record(5); // bucket 3: [4, 8)
        }
        assert_eq!(h.quantile_lower_bound(0.5), 4);
        let h = Log2Histogram::new();
        h.record(1);
        assert_eq!(h.quantile_lower_bound(0.5), 1);
    }

    #[test]
    fn gauge_tracks_level_and_watermark() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 7);
        let g2 = g.clone();
        g2.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_watermark(), 7);
    }

    #[test]
    fn histogram_mean() {
        let h = Log2Histogram::new();
        h.record(10);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_monotone() {
        let h = Log2Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert!(h.quantile_lower_bound(0.5) <= h.quantile_lower_bound(0.99));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Log2Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_lower_bound(0.9), 0);
        assert_eq!(h.quantile_interpolated(0.9), 0);
    }

    #[test]
    fn interpolated_quantile_spreads_within_a_bucket() {
        // 10 samples all in bucket 7 ([64, 128)): the lower-bound
        // quantile collapses every q to 64, interpolation spreads ranks
        // across the bucket while staying inside it.
        let h = Log2Histogram::new();
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.quantile_lower_bound(0.5), 64);
        assert_eq!(h.quantile_lower_bound(0.99), 64);
        let p50 = h.quantile_interpolated(0.5);
        let p99 = h.quantile_interpolated(0.99);
        assert!(p50 > 64 && p50 < 128, "p50 = {p50}");
        assert!(p99 > p50, "p99 ({p99}) must exceed p50 ({p50})");
        // Clamped to the largest recorded sample.
        assert!(p99 <= 100);
    }

    #[test]
    fn interpolated_quantile_is_deterministic_and_monotone() {
        let h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let qs = [0.01, 0.25, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile_interpolated(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
        let again: Vec<u64> = qs.iter().map(|&q| h.quantile_interpolated(q)).collect();
        assert_eq!(vals, again);
        assert_eq!(*vals.last().unwrap(), 1000, "q=1.0 lands on the max");
    }

    #[test]
    fn interpolated_quantile_zero_bucket_and_exact_singleton() {
        let h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.quantile_interpolated(0.5), 0);
        let h = Log2Histogram::new();
        h.record(1);
        // Bucket 1 is [1, 2): interpolation cannot leave it, and the
        // max clamp pins the singleton to its exact value.
        assert_eq!(h.quantile_interpolated(0.5), 1);
    }

    #[test]
    fn interpolated_quantile_over_raw_buckets_matches_histogram() {
        let h = Log2Histogram::new();
        for v in [3u64, 5, 9, 9, 17, 40, 100] {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                log2_quantile_interpolated(&h.buckets(), h.count(), h.max(), q),
                h.quantile_interpolated(q)
            );
        }
    }
}
