//! Lightweight simulation statistics: counters and log2 histograms.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A shared monotonically increasing byte counter.
#[derive(Clone, Default)]
pub struct ByteCounter {
    bytes: Rc<Cell<u64>>,
}

impl ByteCounter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` bytes.
    pub fn add(&self, n: u64) {
        self.bytes.set(self.bytes.get() + n);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.bytes.get()
    }
}

/// A shared event counter.
#[derive(Clone, Default)]
pub struct Counter {
    n: Rc<Cell<u64>>,
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.n.set(self.n.get() + 1);
    }

    /// Add `k`.
    pub fn add(&self, k: u64) {
        self.n.set(self.n.get() + k);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.n.get()
    }
}

/// Histogram with power-of-two buckets, for latency distributions.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts 0.
#[derive(Clone, Default)]
pub struct Log2Histogram {
    buckets: Rc<RefCell<Vec<u64>>>,
    count: Rc<Cell<u64>>,
    sum: Rc<Cell<u128>>,
    max: Rc<Cell<u64>>,
}

impl Log2Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = if v == 0 { 0 } else { 63 - v.leading_zeros() as usize };
        let mut b = self.buckets.borrow_mut();
        if b.len() <= idx {
            b.resize(idx + 1, 0);
        }
        b[idx] += 1;
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get() + v as u128);
        self.max.set(self.max.get().max(v));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Arithmetic mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count.get() == 0 {
            0.0
        } else {
            self.sum.get() as f64 / self.count.get() as f64
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max.get()
    }

    /// Snapshot of bucket counts (index = log2 of bucket lower bound).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets.borrow().clone()
    }

    /// Approximate quantile: lower bound of the bucket containing quantile
    /// `q` in `[0, 1]`.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        let total = self.count.get();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.borrow().iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn byte_counter_shared_clone() {
        let b = ByteCounter::new();
        let b2 = b.clone();
        b.add(5);
        b2.add(7);
        assert_eq!(b.get(), 12);
    }

    #[test]
    fn histogram_buckets() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1024);
        let b = h.buckets();
        assert_eq!(b[0], 2); // 0 and 1
        assert_eq!(b[1], 2); // 2, 3
        assert_eq!(b[2], 2); // 4, 7
        assert_eq!(b[3], 1); // 8
        assert_eq!(b[10], 1); // 1024
    }

    #[test]
    fn histogram_mean() {
        let h = Log2Histogram::new();
        h.record(10);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_monotone() {
        let h = Log2Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert!(h.quantile_lower_bound(0.5) <= h.quantile_lower_bound(0.99));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Log2Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_lower_bound(0.9), 0);
    }
}
