//! Simulated synchronization: FIFO semaphore, mutex, and barrier.
//!
//! These are *modelled* primitives — they coordinate simulated actors inside
//! the single-threaded engine; they are not OS locks.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::{oneshot, OneshotSender};
use crate::Sim;

struct SemState {
    permits: Cell<u64>,
    queue: RefCell<VecDeque<(u64, OneshotSender<()>)>>,
}

/// A counting semaphore with strict FIFO grant order.
///
/// FIFO ordering is what makes simulated bus/queue arbitration
/// deterministic and starvation-free.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<SemState>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            state: Rc::new(SemState {
                permits: Cell::new(permits),
                queue: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.state.permits.get()
    }

    /// Acquire `n` permits, waiting FIFO behind earlier requests.
    pub async fn acquire_many(&self, n: u64) {
        // Even if permits are available, a queued waiter goes first.
        if self.state.queue.borrow().is_empty() && self.state.permits.get() >= n {
            self.state.permits.set(self.state.permits.get() - n);
            return;
        }
        let (tx, rx) = oneshot();
        self.state.queue.borrow_mut().push_back((n, tx));
        rx.await;
    }

    /// Acquire one permit.
    pub async fn acquire(&self) {
        self.acquire_many(1).await;
    }

    /// Return `n` permits and hand them to queued waiters in FIFO order.
    pub fn release_many(&self, n: u64) {
        self.state.permits.set(self.state.permits.get() + n);
        loop {
            let mut queue = self.state.queue.borrow_mut();
            match queue.front() {
                Some(&(need, _)) if self.state.permits.get() >= need => {
                    let (need, tx) = queue.pop_front().expect("peeked front");
                    drop(queue);
                    self.state.permits.set(self.state.permits.get() - need);
                    tx.send(());
                }
                _ => break,
            }
        }
    }

    /// Return one permit.
    pub fn release(&self) {
        self.release_many(1);
    }

    /// Run `f` while holding one permit.
    pub async fn with<T>(&self, f: impl std::future::Future<Output = T>) -> T {
        self.acquire().await;
        let out = f.await;
        self.release();
        out
    }
}

/// A FIFO mutex for simulated actors (a binary [`Semaphore`]).
#[derive(Clone)]
pub struct SimMutex {
    sem: Semaphore,
}

impl Default for SimMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMutex {
    /// Create an unlocked mutex.
    pub fn new() -> Self {
        SimMutex { sem: Semaphore::new(1) }
    }

    /// Lock, run `f`, unlock.
    pub async fn with<T>(&self, f: impl std::future::Future<Output = T>) -> T {
        self.sem.with(f).await
    }

    /// Acquire the lock; must be paired with [`SimMutex::unlock`].
    pub async fn lock(&self) {
        self.sem.acquire().await;
    }

    /// Release the lock.
    pub fn unlock(&self) {
        self.sem.release();
    }
}

struct BarrierState {
    parties: usize,
    arrived: Cell<usize>,
    generation: Cell<u64>,
    waiters: RefCell<Vec<OneshotSender<()>>>,
}

/// A reusable barrier for a fixed set of simulated participants.
#[derive(Clone)]
pub struct SimBarrier {
    state: Rc<BarrierState>,
}

impl SimBarrier {
    /// Create a barrier for `parties` participants (must be > 0).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        SimBarrier {
            state: Rc::new(BarrierState {
                parties,
                arrived: Cell::new(0),
                generation: Cell::new(0),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The barrier generation (number of completed sync rounds).
    pub fn generation(&self) -> u64 {
        self.state.generation.get()
    }

    /// Wait until all parties have arrived. Returns `true` for exactly one
    /// participant per round (the last arrival), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub async fn wait(&self) -> bool {
        let arrived = self.state.arrived.get() + 1;
        if arrived == self.state.parties {
            self.state.arrived.set(0);
            self.state.generation.set(self.state.generation.get() + 1);
            for tx in self.state.waiters.borrow_mut().drain(..) {
                tx.send(());
            }
            true
        } else {
            self.state.arrived.set(arrived);
            let (tx, rx) = oneshot();
            self.state.waiters.borrow_mut().push(tx);
            rx.await;
            false
        }
    }
}

/// A latch: counts down from `n`; waiters resume when it hits zero.
#[derive(Clone)]
pub struct Latch {
    remaining: Rc<Cell<u64>>,
    notify: crate::event::Notify,
}

impl Latch {
    /// Create a latch requiring `n` count-downs.
    pub fn new(n: u64) -> Self {
        Latch { remaining: Rc::new(Cell::new(n)), notify: crate::event::Notify::new() }
    }

    /// Count down by one (saturating).
    pub fn count_down(&self) {
        let r = self.remaining.get().saturating_sub(1);
        self.remaining.set(r);
        if r == 0 {
            self.notify.notify_all();
        }
    }

    /// Wait for the count to reach zero.
    pub async fn wait(&self) {
        let remaining = self.remaining.clone();
        self.notify.wait_until(move || remaining.get() == 0).await;
    }
}

/// Hold a resource for an exclusive async region even across awaits.
///
/// Convenience guard-style wrapper used by the fabric models; acquire with
/// [`ScopedLock::enter`] which returns a guard whose `Drop` releases.
pub struct ScopedLock {
    mutex: SimMutex,
}

impl Default for ScopedLock {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopedLock {
    /// Create an unlocked scoped lock.
    pub fn new() -> Self {
        ScopedLock { mutex: SimMutex::new() }
    }

    /// Acquire; the returned guard releases on drop.
    pub async fn enter(&self) -> ScopedGuard {
        self.mutex.lock().await;
        ScopedGuard { mutex: self.mutex.clone() }
    }
}

/// Guard returned by [`ScopedLock::enter`].
pub struct ScopedGuard {
    mutex: SimMutex,
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// Join all handles of homogeneous spawned tasks.
pub async fn join_all<T: 'static>(handles: Vec<crate::JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

/// The winner of a [`race`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished (wins deadline ties).
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Run two futures concurrently and return the first to finish.
///
/// Polls the left future first, so when both become ready in the same
/// scheduler step the left one wins — ties are deterministic. The loser is
/// dropped; a losing [`crate::Sim::delay`] withdraws its timer-wheel
/// entry on drop, so a timeout race that wins early leaves no stale
/// deadline behind and cannot drag the clock forward on an otherwise
/// idle simulation.
pub async fn race<FA, FB>(a: FA, b: FB) -> Either<FA::Output, FB::Output>
where
    FA: std::future::Future,
    FB: std::future::Future,
{
    let mut a = std::pin::pin!(a);
    let mut b = std::pin::pin!(b);
    std::future::poll_fn(move |cx| {
        if let std::task::Poll::Ready(v) = a.as_mut().poll(cx) {
            return std::task::Poll::Ready(Either::Left(v));
        }
        if let std::task::Poll::Ready(v) = b.as_mut().poll(cx) {
            return std::task::Poll::Ready(Either::Right(v));
        }
        std::task::Poll::Pending
    })
    .await
}

/// Spawn one named task per element and wait for all of them.
pub async fn spawn_all<T: 'static, F>(
    sim: &Sim,
    name: &str,
    futs: impl IntoIterator<Item = F>,
) -> Vec<T>
where
    F: std::future::Future<Output = T> + 'static,
{
    let handles: Vec<_> = futs
        .into_iter()
        .enumerate()
        .map(|(i, f)| sim.spawn_named(format!("{name}[{i}]"), f))
        .collect();
    join_all(handles).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn race_earlier_deadline_wins() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                match race(s.delay(100), s.delay(50)).await {
                    Either::Left(()) => "left",
                    Either::Right(()) => "right",
                }
            })
            .unwrap();
        assert_eq!(out, "right");
    }

    #[test]
    fn race_tie_goes_left() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim
            .block_on(async move {
                match race(s.delay(70), s.delay(70)).await {
                    Either::Left(()) => "left",
                    Either::Right(()) => "right",
                }
            })
            .unwrap();
        assert_eq!(out, "left");
    }

    #[test]
    fn race_event_beats_timeout() {
        let sim = Sim::new();
        let notify = crate::event::Notify::new();
        let (s, n) = (sim.clone(), notify.clone());
        sim.spawn_named("setter", async move {
            s.delay(10).await;
            n.notify_all();
        });
        let s = sim.clone();
        let won = sim
            .block_on(async move {
                let fired = Cell::new(false);
                let wait = notify.wait_until(|| fired.replace(true));
                matches!(race(wait, s.delay(1_000)).await, Either::Left(()))
            })
            .unwrap();
        assert!(won);
        // The losing delay(1_000) is cancelled on drop, so the run ends
        // at the notify time — the stale deadline never advances the clock.
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0u64));
        let current = Rc::new(Cell::new(0u64));
        for _ in 0..8 {
            let (s, sem, peak, current) = (sim.clone(), sem.clone(), peak.clone(), current.clone());
            sim.spawn(async move {
                sem.acquire().await;
                current.set(current.get() + 1);
                peak.set(peak.get().max(current.get()));
                s.delay(10).await;
                current.set(current.get() - 1);
                sem.release();
            });
        }
        sim.run().unwrap();
        assert_eq!(peak.get(), 2);
    }

    #[test]
    fn semaphore_fifo_order() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let (s, sem, order) = (sim.clone(), sem.clone(), order.clone());
            sim.spawn(async move {
                // Stagger arrival so queue order is well-defined.
                s.delay(i as u64).await;
                sem.acquire().await;
                order.borrow_mut().push(i);
                s.delay(100).await;
                sem.release();
            });
        }
        sim.run().unwrap();
        assert_eq!(&*order.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn acquire_many_blocks_until_enough() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        let (s, sem2) = (sim.clone(), sem.clone());
        sim.spawn_named("big", async move {
            sem2.acquire_many(3).await;
            s.delay(50).await;
            sem2.release_many(3);
        });
        let (s, sem2) = (sim.clone(), sem.clone());
        sim.spawn_named("small", async move {
            s.delay(1).await;
            sem2.acquire().await;
            // Granted when the big holder releases at t=50.
            assert_eq!(s.now(), 50);
            sem2.release();
        });
        sim.run().unwrap();
    }

    #[test]
    fn barrier_synchronizes_and_elects_leader() {
        let sim = Sim::new();
        let barrier = SimBarrier::new(4);
        let leaders = Rc::new(Cell::new(0u32));
        for i in 0..4u64 {
            let (s, b, l) = (sim.clone(), barrier.clone(), leaders.clone());
            sim.spawn(async move {
                s.delay(i * 10).await;
                if b.wait().await {
                    l.set(l.get() + 1);
                }
                // All exit at the last arrival's timestamp.
                assert_eq!(s.now(), 30);
            });
        }
        sim.run().unwrap();
        assert_eq!(leaders.get(), 1);
        assert_eq!(barrier.generation(), 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Sim::new();
        let barrier = SimBarrier::new(2);
        for _ in 0..2 {
            let (s, b) = (sim.clone(), barrier.clone());
            sim.spawn(async move {
                for round in 1..=3u64 {
                    s.delay(1).await;
                    b.wait().await;
                    assert_eq!(b.generation(), round);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(barrier.generation(), 3);
    }

    #[test]
    fn latch_releases_at_zero() {
        let sim = Sim::new();
        let latch = Latch::new(3);
        let (s, l) = (sim.clone(), latch.clone());
        sim.spawn_named("waiter", async move {
            l.wait().await;
            assert_eq!(s.now(), 30);
        });
        let (s, l) = (sim.clone(), latch.clone());
        sim.spawn_named("counter", async move {
            for _ in 0..3 {
                s.delay(10).await;
                l.count_down();
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn mutex_with_is_exclusive() {
        let sim = Sim::new();
        let m = SimMutex::new();
        let inside = Rc::new(Cell::new(false));
        for _ in 0..4 {
            let (s, m, inside) = (sim.clone(), m.clone(), inside.clone());
            sim.spawn(async move {
                m.with(async {
                    assert!(!inside.get());
                    inside.set(true);
                    s.delay(5).await;
                    inside.set(false);
                })
                .await;
            });
        }
        assert_eq!(sim.run().unwrap(), 20);
    }

    #[test]
    fn scoped_lock_releases_on_drop() {
        let sim = Sim::new();
        let lock = Rc::new(ScopedLock::new());
        let (s, l) = (sim.clone(), lock.clone());
        sim.spawn(async move {
            let _g = l.enter().await;
            s.delay(10).await;
            // guard dropped here
        });
        let (s, l) = (sim.clone(), lock.clone());
        sim.spawn(async move {
            s.delay(1).await;
            let _g = l.enter().await;
            assert_eq!(s.now(), 10);
        });
        sim.run().unwrap();
    }
}
