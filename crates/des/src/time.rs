//! Simulated time units and frequency-domain conversions.
//!
//! The SCC has three clock domains (core 533 MHz, mesh 800 MHz, memory
//! 800 MHz in the configuration used by the paper, §4 footnote 4). All engine
//! timestamps are kept in *core cycles*; [`Freq`] converts latencies
//! expressed in another domain into core cycles.

/// Simulated time, measured in core clock cycles.
pub type Cycles = u64;

/// A clock domain frequency in MHz.
///
/// Conversions round up: a foreign-domain latency never gets cheaper by
/// being expressed in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    mhz: u32,
}

impl Freq {
    /// Create a frequency from MHz. Panics on zero.
    pub const fn mhz(mhz: u32) -> Self {
        assert!(mhz > 0, "frequency must be non-zero");
        Freq { mhz }
    }

    /// The frequency in MHz.
    pub const fn as_mhz(self) -> u32 {
        self.mhz
    }

    /// Convert `cycles` of this clock domain into cycles of the `target`
    /// domain, rounding up.
    pub const fn convert(self, cycles: Cycles, target: Freq) -> Cycles {
        let num = cycles as u128 * target.mhz as u128;
        let den = self.mhz as u128;
        num.div_ceil(den) as Cycles
    }

    /// Cycles of this domain elapsed in `ns` nanoseconds, rounding up.
    pub const fn cycles_in_ns(self, ns: u64) -> Cycles {
        (ns as u128 * self.mhz as u128).div_ceil(1000) as Cycles
    }

    /// Nanoseconds (rounded down) covered by `cycles` of this domain.
    pub const fn ns(self, cycles: Cycles) -> u64 {
        (cycles as u128 * 1000 / self.mhz as u128) as u64
    }

    /// Throughput in bytes/second for `bytes` moved in `cycles` of this
    /// domain. Returns 0.0 when `cycles` is zero.
    pub fn bytes_per_sec(self, bytes: u64, cycles: Cycles) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 * (self.mhz as f64 * 1e6) / cycles as f64
    }

    /// Throughput in MB/s (decimal megabytes, as used by the paper's plots).
    pub fn mbytes_per_sec(self, bytes: u64, cycles: Cycles) -> f64 {
        self.bytes_per_sec(bytes, cycles) / 1e6
    }
}

/// SCC core clock in the paper's configuration (533 MHz).
pub const CORE_FREQ: Freq = Freq::mhz(533);
/// SCC mesh clock in the paper's configuration (800 MHz).
pub const MESH_FREQ: Freq = Freq::mhz(800);
/// SCC memory clock in the paper's configuration (800 MHz).
pub const MEM_FREQ: Freq = Freq::mhz(800);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_identity() {
        let f = Freq::mhz(533);
        assert_eq!(f.convert(1000, f), 1000);
    }

    #[test]
    fn convert_mesh_to_core_rounds_up() {
        // 4 mesh cycles at 800 MHz = 5 ns = 2.665 core cycles -> 3.
        assert_eq!(MESH_FREQ.convert(4, CORE_FREQ), 3);
    }

    #[test]
    fn convert_core_to_mesh() {
        // 533 core cycles = 1 us = 800 mesh cycles.
        assert_eq!(CORE_FREQ.convert(533, MESH_FREQ), 800);
    }

    #[test]
    fn ns_roundtrip() {
        let f = Freq::mhz(533);
        // 533 cycles = 1000 ns exactly.
        assert_eq!(f.ns(533), 1000);
        assert_eq!(f.cycles_in_ns(1000), 533);
    }

    #[test]
    fn throughput() {
        // 533e6 cycles = 1 s; 150e6 bytes in 1 s = 150 MB/s.
        let mbs = CORE_FREQ.mbytes_per_sec(150_000_000, 533_000_000);
        assert!((mbs - 150.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_zero_throughput() {
        assert_eq!(CORE_FREQ.bytes_per_sec(10, 0), 0.0);
    }
}
