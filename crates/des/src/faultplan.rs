//! Deterministic fault-injection plane.
//!
//! A [`FaultSpec`] is plain seeded configuration — which faults to inject
//! at what rates — and a [`FaultPlan`] is its runtime: per-site forked
//! [`DetRng`] streams, `pcie.fault.*` counters, and `Fault`-category trace
//! emission. Everything is driven by the virtual clock and the seed, so
//! two identical faulty runs are byte-identical (determinism invariant),
//! and a zero-rate spec draws from no RNG stream and registers no timer —
//! fault-free runs are bit-for-bit unaffected (zero perturbation).
//!
//! What can be injected (the hooks live in `pcie` and the host layer):
//!
//! - **TLP drop / corruption / extra delay** on tunnel payload transfers.
//!   Corruption really flips payload bytes (functional-fidelity
//!   invariant): without recovery the garbled bytes land in the
//!   destination MPB and application-level verification fails; with
//!   recovery the receiver-side checksum catches it and the transfer is
//!   retried.
//! - **Transient link-down windows**: periodic intervals during which a
//!   PCIe port holds all traffic. Pure arithmetic over `now` — no RNG, no
//!   timers when the spec is inactive.
//! - **Lost fast write-acks**: an extra loss rate on top of the model's
//!   own instability curve (`pcie::fault::FastAck`), drawn from a separate
//!   stream so the legacy draw sequence is untouched.
//! - **Stuck / garbled MMIO register programming** of the vDMA engine.
//! - **Commtask stall windows**: the host service loop stops draining its
//!   command queue for an interval.
//!
//! # `VSCC_FAULTS` grammar
//!
//! Comma-separated `key=value` directives (see [`FaultSpec::parse`]):
//!
//! ```text
//! seed=7                 RNG seed for all fault streams (default 0)
//! drop=0.01              TLP drop probability per tunnel transfer
//! corrupt=0.005          TLP corruption probability per tunnel transfer
//! delay=0.02:2000        extra-delay probability : delay in cycles
//! linkdown=1000@200000   link held down for 1000 cycles every 200000
//! ackloss=1e-4           extra fast-ack loss probability per posted write
//! mmio_stuck=0.001       register write silently dropped
//! mmio_garble=0.001      register write bit-flipped in flight
//! stall=5000@300000      commtask stalls 5000 cycles every 300000
//! until=3000000          global end: no fault fires at/after this cycle
//! recovery=on            enable the host recovery layer (default off)
//! watchdog=2000000       flag-poll watchdog budget in cycles
//! ```
//!
//! Example: `VSCC_FAULTS=seed=3,corrupt=0.01,recovery=on,watchdog=2000000`.
//!
//! ## Phase bounds
//!
//! Every injection key can carry a trailing `@<start>..<end>` [`Phase`]
//! bound restricting it to a virtual-clock window: the fault fires only
//! for `start <= now < end` (either side may be omitted — `@..50000`
//! means "until cycle 50 000", `@50000..` means "from cycle 50 000 on").
//! `until=<cycle>` bounds *all* keys at once. Examples:
//!
//! ```text
//! ackloss=0.9@..3000000      ack storm that ends at cycle 3 000 000
//! drop=0.05@1000000..2000000 drops only inside the window
//! delay=0.1:2000@..50000     per-key phase composes with `:`-values
//! linkdown=1000@200000@0..9000000   ...and with `@`-window values
//! ```
//!
//! Out-of-phase cycles draw from no RNG stream at all — a phase bound is
//! pure clock arithmetic, so the draw sequence inside the window is
//! independent of how much fault-free time surrounds it. This is what
//! lets a *storm-then-quiet* plan model a transient fault burst that
//! ends, which the self-healing layer (`vscc::health`) needs in order to
//! demonstrate demote → probe → re-promote arcs.

use std::cell::RefCell;
use std::fmt;

use crate::obs::{Registry, FAULTS_ENV};
use crate::rng::DetRng;
use crate::stats::Counter;
use crate::time::Cycles;
use crate::trace::{Category, Trace};

/// A virtual-clock window bounding one injection key: the fault fires
/// only while `start <= now < end`. [`Phase::ALWAYS`] (the default) is
/// unbounded. Parsed from a trailing `@<start>..<end>` on the key's
/// value; both sides optional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// First cycle (inclusive) at which the fault may fire.
    pub start: Cycles,
    /// First cycle (exclusive) at which it stops firing; `None` = never.
    pub end: Option<Cycles>,
}

impl Phase {
    /// The unbounded phase: active on every cycle.
    pub const ALWAYS: Phase = Phase { start: 0, end: None };

    /// Whether `now` falls inside this phase.
    pub fn contains(&self, now: Cycles) -> bool {
        now >= self.start && self.end.is_none_or(|e| now < e)
    }

    /// The canonical `@start..end` suffix, empty for [`Phase::ALWAYS`].
    fn suffix(&self) -> String {
        if *self == Phase::ALWAYS {
            String::new()
        } else {
            match self.end {
                Some(end) => format!("@{}..{}", self.start, end),
                None => format!("@{}..", self.start),
            }
        }
    }
}

impl Default for Phase {
    fn default() -> Self {
        Phase::ALWAYS
    }
}

/// Seeded fault-injection configuration. Plain data: carried in host
/// configs, comparable, and parseable from the `VSCC_FAULTS` env spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for every fault RNG stream (site streams are forked from it).
    pub seed: u64,
    /// Probability a tunnel payload transfer is dropped outright.
    pub tlp_drop_p: f64,
    /// Probability a tunnel payload transfer arrives with flipped bytes.
    pub tlp_corrupt_p: f64,
    /// Probability a tunnel payload transfer is delayed by
    /// [`FaultSpec::tlp_delay_cycles`].
    pub tlp_delay_p: f64,
    /// Extra delay applied when the delay fault fires.
    pub tlp_delay_cycles: Cycles,
    /// Length of each periodic link-down window (0 disables).
    pub link_down_duration: Cycles,
    /// Period of the link-down windows (must exceed the duration).
    pub link_down_period: Cycles,
    /// Extra fast write-ack loss probability, on top of the model's own
    /// device-count-dependent instability.
    pub ack_loss_p: f64,
    /// Probability an MMIO register write is silently dropped (stuck).
    pub mmio_stuck_p: f64,
    /// Probability an MMIO register write is bit-flipped in flight.
    pub mmio_garble_p: f64,
    /// Length of each periodic commtask stall window (0 disables).
    pub stall_duration: Cycles,
    /// Period of the commtask stall windows.
    pub stall_period: Cycles,
    /// Phase bound of the TLP drop fault.
    pub tlp_drop_phase: Phase,
    /// Phase bound of the TLP corruption fault.
    pub tlp_corrupt_phase: Phase,
    /// Phase bound of the TLP delay fault.
    pub tlp_delay_phase: Phase,
    /// Phase bound of the link-down windows.
    pub link_phase: Phase,
    /// Phase bound of the injected fast-ack loss.
    pub ack_phase: Phase,
    /// Phase bound of the stuck-MMIO fault.
    pub mmio_stuck_phase: Phase,
    /// Phase bound of the garbled-MMIO fault.
    pub mmio_garble_phase: Phase,
    /// Phase bound of the commtask stall windows.
    pub stall_phase: Phase,
    /// Global end of all injection: no fault fires at/after this cycle.
    pub until: Option<Cycles>,
    /// Enable the host recovery layer (checksum verify + retry/backoff,
    /// MMIO guard verify + re-issue, fast-ack retransmit + fallback).
    pub recovery: bool,
    /// Flag-poll watchdog budget in cycles, if any: a rank stuck polling
    /// longer than this aborts the run with a diagnosed timeout.
    pub watchdog: Option<Cycles>,
}

impl FaultSpec {
    /// The empty spec: nothing injected, recovery off, no watchdog.
    pub fn none() -> Self {
        FaultSpec {
            seed: 0,
            tlp_drop_p: 0.0,
            tlp_corrupt_p: 0.0,
            tlp_delay_p: 0.0,
            tlp_delay_cycles: 0,
            link_down_duration: 0,
            link_down_period: 0,
            ack_loss_p: 0.0,
            mmio_stuck_p: 0.0,
            mmio_garble_p: 0.0,
            stall_duration: 0,
            stall_period: 0,
            tlp_drop_phase: Phase::ALWAYS,
            tlp_corrupt_phase: Phase::ALWAYS,
            tlp_delay_phase: Phase::ALWAYS,
            link_phase: Phase::ALWAYS,
            ack_phase: Phase::ALWAYS,
            mmio_stuck_phase: Phase::ALWAYS,
            mmio_garble_phase: Phase::ALWAYS,
            stall_phase: Phase::ALWAYS,
            until: None,
            recovery: false,
            watchdog: None,
        }
    }

    /// Whether any fault is actually injected. A spec that only sets
    /// `recovery`/`watchdog` is inactive: no plan is built for it, so
    /// fault-free runs stay bit-identical.
    pub fn is_active(&self) -> bool {
        self.tlp_drop_p > 0.0
            || self.tlp_corrupt_p > 0.0
            || self.tlp_delay_p > 0.0
            || self.link_down_duration > 0
            || self.ack_loss_p > 0.0
            || self.mmio_stuck_p > 0.0
            || self.mmio_garble_p > 0.0
            || self.stall_duration > 0
    }

    /// Parse the `VSCC_FAULTS` spec grammar (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        fn prob(key: &str, v: &str) -> Result<f64, String> {
            let p: f64 =
                v.parse().map_err(|_| format!("{key}: expected a probability, got {v:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{key}: probability {p} outside [0, 1]"));
            }
            Ok(p)
        }
        fn cycles(key: &str, v: &str) -> Result<Cycles, String> {
            v.parse().map_err(|_| format!("{key}: expected a cycle count, got {v:?}"))
        }
        fn window(key: &str, v: &str) -> Result<(Cycles, Cycles), String> {
            let (dur, per) = v
                .split_once('@')
                .ok_or_else(|| format!("{key}: expected <duration>@<period>, got {v:?}"))?;
            let dur = cycles(key, dur)?;
            let per = cycles(key, per)?;
            if dur > 0 && per <= dur {
                return Err(format!("{key}: period {per} must exceed duration {dur}"));
            }
            Ok((dur, per))
        }
        fn phase(key: &str, s: &str) -> Result<Phase, String> {
            let (start, end) = s
                .split_once("..")
                .ok_or_else(|| format!("{key}: expected @<start>..<end> phase, got {s:?}"))?;
            let start = if start.is_empty() { 0 } else { cycles(key, start)? };
            let end = if end.is_empty() { None } else { Some(cycles(key, end)?) };
            if let Some(e) = end {
                if e <= start {
                    return Err(format!("{key}: phase end {e} must exceed start {start}"));
                }
            }
            Ok(Phase { start, end })
        }
        /// Split a trailing `@start..end` phase bound off `v`, if present.
        /// Only the *last* `@` segment is a candidate, and only when it
        /// contains `..` — so window values like `1000@200000` (and
        /// phased windows like `1000@200000@0..9000`) parse unambiguously.
        fn split_phase<'v>(key: &str, v: &'v str) -> Result<(&'v str, Phase), String> {
            match v.rsplit_once('@') {
                Some((base, tail)) if tail.contains("..") => Ok((base, phase(key, tail)?)),
                _ => Ok((v, Phase::ALWAYS)),
            }
        }

        let mut out = FaultSpec::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (value, key_phase) = split_phase(key, value)?;
            if key_phase != Phase::ALWAYS
                && matches!(key, "seed" | "until" | "recovery" | "watchdog")
            {
                return Err(format!("{key}: key does not take a @start..end phase bound"));
            }
            match key {
                "seed" => out.seed = cycles("seed", value)?,
                "drop" => {
                    out.tlp_drop_p = prob("drop", value)?;
                    out.tlp_drop_phase = key_phase;
                }
                "corrupt" => {
                    out.tlp_corrupt_p = prob("corrupt", value)?;
                    out.tlp_corrupt_phase = key_phase;
                }
                "delay" => {
                    let (p, cyc) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay: expected <p>:<cycles>, got {value:?}"))?;
                    out.tlp_delay_p = prob("delay", p)?;
                    out.tlp_delay_cycles = cycles("delay", cyc)?;
                    out.tlp_delay_phase = key_phase;
                }
                "linkdown" => {
                    (out.link_down_duration, out.link_down_period) = window("linkdown", value)?;
                    out.link_phase = key_phase;
                }
                "ackloss" => {
                    out.ack_loss_p = prob("ackloss", value)?;
                    out.ack_phase = key_phase;
                }
                "mmio_stuck" => {
                    out.mmio_stuck_p = prob("mmio_stuck", value)?;
                    out.mmio_stuck_phase = key_phase;
                }
                "mmio_garble" => {
                    out.mmio_garble_p = prob("mmio_garble", value)?;
                    out.mmio_garble_phase = key_phase;
                }
                "stall" => {
                    (out.stall_duration, out.stall_period) = window("stall", value)?;
                    out.stall_phase = key_phase;
                }
                "until" => out.until = Some(cycles("until", value)?),
                "recovery" => {
                    out.recovery = match value {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        _ => return Err(format!("recovery: expected on/off, got {value:?}")),
                    }
                }
                "watchdog" => out.watchdog = Some(cycles("watchdog", value)?),
                _ => return Err(format!("unknown fault key {key:?}")),
            }
        }
        Ok(out)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut put = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        put(f, format!("seed={}", self.seed))?;
        if self.tlp_drop_p > 0.0 {
            put(f, format!("drop={}{}", self.tlp_drop_p, self.tlp_drop_phase.suffix()))?;
        }
        if self.tlp_corrupt_p > 0.0 {
            put(f, format!("corrupt={}{}", self.tlp_corrupt_p, self.tlp_corrupt_phase.suffix()))?;
        }
        if self.tlp_delay_p > 0.0 {
            put(
                f,
                format!(
                    "delay={}:{}{}",
                    self.tlp_delay_p,
                    self.tlp_delay_cycles,
                    self.tlp_delay_phase.suffix()
                ),
            )?;
        }
        if self.link_down_duration > 0 {
            put(
                f,
                format!(
                    "linkdown={}@{}{}",
                    self.link_down_duration,
                    self.link_down_period,
                    self.link_phase.suffix()
                ),
            )?;
        }
        if self.ack_loss_p > 0.0 {
            put(f, format!("ackloss={}{}", self.ack_loss_p, self.ack_phase.suffix()))?;
        }
        if self.mmio_stuck_p > 0.0 {
            put(f, format!("mmio_stuck={}{}", self.mmio_stuck_p, self.mmio_stuck_phase.suffix()))?;
        }
        if self.mmio_garble_p > 0.0 {
            put(
                f,
                format!("mmio_garble={}{}", self.mmio_garble_p, self.mmio_garble_phase.suffix()),
            )?;
        }
        if self.stall_duration > 0 {
            put(
                f,
                format!(
                    "stall={}@{}{}",
                    self.stall_duration,
                    self.stall_period,
                    self.stall_phase.suffix()
                ),
            )?;
        }
        if let Some(u) = self.until {
            put(f, format!("until={u}"))?;
        }
        if self.recovery {
            put(f, "recovery=on".to_string())?;
        }
        if let Some(w) = self.watchdog {
            put(f, format!("watchdog={w}"))?;
        }
        Ok(())
    }
}

/// The `VSCC_FAULTS` spec from the environment, if set and non-empty.
/// Panics on a malformed spec — this is a debug hook, and a typo should
/// fail loudly, not silently run fault-free.
pub fn spec_from_env() -> Option<FaultSpec> {
    let raw = std::env::var(FAULTS_ENV).ok().filter(|v| !v.is_empty())?;
    match FaultSpec::parse(&raw) {
        Ok(spec) => Some(spec),
        Err(e) => panic!("malformed {FAULTS_ENV}={raw:?}: {e} (see des::faultplan docs)"),
    }
}

/// FNV-1a over `bytes`. Used as the tunnel-transfer checksum by the host
/// recovery layer: cheap, deterministic, and sensitive to any byte flip.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fault drawn for one tunnel transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlpFault {
    /// The transfer vanishes: nothing arrives.
    Drop,
    /// The transfer arrives with flipped bytes (apply [`FaultPlan::garble`]).
    Corrupt,
    /// The transfer arrives late by this many extra cycles.
    Delay(Cycles),
}

/// A fault drawn for one MMIO register write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioFault {
    /// The write is silently dropped (stuck programming).
    Stuck,
    /// The write arrives bit-flipped.
    Garble,
}

/// Runtime of a [`FaultSpec`]: forked RNG streams per injection site,
/// `pcie.fault.*` counters, and `Fault`-category trace emission.
///
/// Each site has its own stream so adding draws at one site never shifts
/// another site's sequence; all draw methods are RNG-free when their rate
/// is zero.
pub struct FaultPlan {
    spec: FaultSpec,
    tlp_rng: RefCell<DetRng>,
    mmio_rng: RefCell<DetRng>,
    ack_rng: RefCell<DetRng>,
    garble_rng: RefCell<DetRng>,
    /// Dedicated stream for health-probe canary writes, so probe traffic
    /// can never shift the draw sequence any application write sees.
    probe_rng: RefCell<DetRng>,
    trace: Trace,
    /// Tunnel transfers dropped (`pcie.fault.tlp_dropped`).
    pub tlp_dropped: Counter,
    /// Tunnel transfers corrupted (`pcie.fault.tlp_corrupted`).
    pub tlp_corrupted: Counter,
    /// Tunnel transfers delayed (`pcie.fault.tlp_delayed`).
    pub tlp_delayed: Counter,
    /// Transfers that waited out a link-down window
    /// (`pcie.fault.link_down_waits`).
    pub link_down_waits: Counter,
    /// MMIO writes silently dropped (`pcie.fault.mmio_stuck`).
    pub mmio_stuck: Counter,
    /// MMIO writes bit-flipped (`pcie.fault.mmio_garbled`).
    pub mmio_garbled: Counter,
    /// Commands that waited out a commtask stall window
    /// (`pcie.fault.commtask_stalls`).
    pub commtask_stalls: Counter,
    /// Fast write-acks lost, base instability and injected combined
    /// (`pcie.fault.ack_lost`).
    pub ack_lost: Counter,
}

impl FaultPlan {
    /// Build the runtime for `spec`. `trace` receives `Fault`-category
    /// events (pass a disabled trace to skip them).
    pub fn new(spec: FaultSpec, trace: Trace) -> Self {
        let mut root = DetRng::seed_from(spec.seed ^ 0xFA17_AB5E_D15E_A5E5);
        FaultPlan {
            tlp_rng: RefCell::new(root.fork(1)),
            mmio_rng: RefCell::new(root.fork(2)),
            ack_rng: RefCell::new(root.fork(3)),
            garble_rng: RefCell::new(root.fork(4)),
            probe_rng: RefCell::new(root.fork(5)),
            spec,
            trace,
            tlp_dropped: Counter::new(),
            tlp_corrupted: Counter::new(),
            tlp_delayed: Counter::new(),
            link_down_waits: Counter::new(),
            mmio_stuck: Counter::new(),
            mmio_garbled: Counter::new(),
            commtask_stalls: Counter::new(),
            ack_lost: Counter::new(),
        }
    }

    /// The spec this plan runs.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Adopt the plan's counters into `registry` under `pcie.fault.*`.
    pub fn register_metrics(&self, registry: &Registry) {
        let r = registry.scoped("pcie.fault");
        r.adopt_counter("tlp_dropped", &self.tlp_dropped);
        r.adopt_counter("tlp_corrupted", &self.tlp_corrupted);
        r.adopt_counter("tlp_delayed", &self.tlp_delayed);
        r.adopt_counter("link_down_waits", &self.link_down_waits);
        r.adopt_counter("mmio_stuck", &self.mmio_stuck);
        r.adopt_counter("mmio_garbled", &self.mmio_garbled);
        r.adopt_counter("commtask_stalls", &self.commtask_stalls);
        r.adopt_counter("ack_lost", &self.ack_lost);
    }

    fn note(&self, now: Cycles, kind: &'static str, flow: Option<u64>) {
        crate::audit::record_fault(now, kind, flow.unwrap_or(0));
        self.trace.instant_f(now, Category::Fault, kind, flow, || "fault", Vec::new);
    }

    /// Whether `key_phase` (and the global `until=` bound) admits an
    /// injection at `now`. Pure clock arithmetic: out-of-phase cycles
    /// cost no RNG draw.
    fn in_phase(&self, key_phase: Phase, now: Cycles) -> bool {
        key_phase.contains(now) && self.spec.until.is_none_or(|u| now < u)
    }

    /// Draw the fault (if any) for one tunnel payload transfer. At most
    /// one fault fires per transfer, checked drop → corrupt → delay; a
    /// zero rate (or an out-of-phase cycle) skips its draw entirely.
    pub fn tlp_fault(&self, now: Cycles, flow: Option<u64>) -> Option<TlpFault> {
        let mut rng = self.tlp_rng.borrow_mut();
        if self.spec.tlp_drop_p > 0.0
            && self.in_phase(self.spec.tlp_drop_phase, now)
            && rng.chance(self.spec.tlp_drop_p)
        {
            self.tlp_dropped.inc();
            self.note(now, "tlp_drop", flow);
            return Some(TlpFault::Drop);
        }
        if self.spec.tlp_corrupt_p > 0.0
            && self.in_phase(self.spec.tlp_corrupt_phase, now)
            && rng.chance(self.spec.tlp_corrupt_p)
        {
            self.tlp_corrupted.inc();
            self.note(now, "tlp_corrupt", flow);
            return Some(TlpFault::Corrupt);
        }
        if self.spec.tlp_delay_p > 0.0
            && self.in_phase(self.spec.tlp_delay_phase, now)
            && rng.chance(self.spec.tlp_delay_p)
        {
            self.tlp_delayed.inc();
            self.note(now, "tlp_delay", flow);
            return Some(TlpFault::Delay(self.spec.tlp_delay_cycles));
        }
        None
    }

    /// Really flip bytes of an in-flight copy (functional fidelity: a
    /// corrupted transfer delivers wrong bytes, not a timing blip). Flips
    /// 1–4 byte positions with non-zero XOR masks.
    pub fn garble(&self, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let mut rng = self.garble_rng.borrow_mut();
        let flips = rng.range(1, 5).min(data.len() as u64);
        for _ in 0..flips {
            let pos = rng.range(0, data.len() as u64) as usize;
            let mask = rng.range(1, 256) as u8;
            data[pos] ^= mask;
        }
    }

    /// If `now` falls in a link-down window, the timestamp at which the
    /// link comes back up. Pure arithmetic over the clock — no RNG, no
    /// timers when the window spec is zero.
    pub fn link_down_until(&self, now: Cycles) -> Option<Cycles> {
        if !self.in_phase(self.spec.link_phase, now) {
            return None;
        }
        Self::window_end(now, self.spec.link_down_duration, self.spec.link_down_period).inspect(
            |_| {
                self.link_down_waits.inc();
                self.note(now, "link_down_wait", None);
            },
        )
    }

    /// If `now` falls in a commtask stall window, when the stall ends.
    pub fn stall_until(&self, now: Cycles) -> Option<Cycles> {
        if !self.in_phase(self.spec.stall_phase, now) {
            return None;
        }
        Self::window_end(now, self.spec.stall_duration, self.spec.stall_period).inspect(|_| {
            self.commtask_stalls.inc();
            self.note(now, "commtask_stall", None);
        })
    }

    fn window_end(now: Cycles, duration: Cycles, period: Cycles) -> Option<Cycles> {
        if duration == 0 || period == 0 {
            return None;
        }
        let phase = now % period;
        (phase < duration).then(|| now - phase + duration)
    }

    /// Draw the fault (if any) for one MMIO register write.
    pub fn mmio_fault(&self, now: Cycles) -> Option<MmioFault> {
        let mut rng = self.mmio_rng.borrow_mut();
        if self.spec.mmio_stuck_p > 0.0
            && self.in_phase(self.spec.mmio_stuck_phase, now)
            && rng.chance(self.spec.mmio_stuck_p)
        {
            self.mmio_stuck.inc();
            self.note(now, "mmio_stuck", None);
            return Some(MmioFault::Stuck);
        }
        if self.spec.mmio_garble_p > 0.0
            && self.in_phase(self.spec.mmio_garble_phase, now)
            && rng.chance(self.spec.mmio_garble_p)
        {
            self.mmio_garbled.inc();
            self.note(now, "mmio_garble", None);
            return Some(MmioFault::Garble);
        }
        None
    }

    /// Draw the injected extra fast-ack loss for one posted write. Uses
    /// its own stream so `FastAck`'s legacy draw sequence is untouched.
    pub fn extra_ack_loss(&self, now: Cycles) -> bool {
        self.spec.ack_loss_p > 0.0
            && self.in_phase(self.spec.ack_phase, now)
            && self.ack_rng.borrow_mut().chance(self.spec.ack_loss_p)
    }

    /// Draw the injected ack loss for one health-probe canary write.
    /// Same rate and phase bounds as [`FaultPlan::extra_ack_loss`], but a
    /// dedicated stream: however many probes the health layer sends, the
    /// draw sequence seen by application writes is unchanged.
    pub fn probe_ack_loss(&self, now: Cycles) -> bool {
        self.spec.ack_loss_p > 0.0
            && self.in_phase(self.spec.ack_phase, now)
            && self.probe_rng.borrow_mut().chance(self.spec.ack_loss_p)
    }

    /// Record one lost fast-ack (base instability or injected) in
    /// `pcie.fault.ack_lost` and the `Fault` trace.
    pub fn note_ack_lost(&self, now: Cycles, flow: Option<u64>) {
        self.ack_lost.inc();
        self.note(now, "ack_lost", flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_roundtrips() {
        let s = FaultSpec::none();
        assert!(!s.is_active());
        assert_eq!(FaultSpec::parse("").unwrap(), s);
        assert_eq!(FaultSpec::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn parse_full_grammar() {
        let s = FaultSpec::parse(
            "seed=7,drop=0.01,corrupt=0.005,delay=0.02:2000,linkdown=1000@200000,\
             ackloss=1e-4,mmio_stuck=0.001,mmio_garble=0.002,stall=5000@300000,\
             recovery=on,watchdog=2000000",
        )
        .unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.tlp_drop_p, 0.01);
        assert_eq!(s.tlp_corrupt_p, 0.005);
        assert_eq!((s.tlp_delay_p, s.tlp_delay_cycles), (0.02, 2000));
        assert_eq!((s.link_down_duration, s.link_down_period), (1000, 200_000));
        assert_eq!(s.ack_loss_p, 1e-4);
        assert_eq!((s.mmio_stuck_p, s.mmio_garble_p), (0.001, 0.002));
        assert_eq!((s.stall_duration, s.stall_period), (5000, 300_000));
        assert!(s.recovery && s.is_active());
        assert_eq!(s.watchdog, Some(2_000_000));
        // Display → parse roundtrip.
        assert_eq!(FaultSpec::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultSpec::parse("drop=2.0").is_err());
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("linkdown=5000@100").is_err());
        assert!(FaultSpec::parse("delay=0.1").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("recovery=maybe").is_err());
        // Phase bounds: empty window, backwards window, non-phase key.
        assert!(FaultSpec::parse("drop=0.1@500..500").is_err());
        assert!(FaultSpec::parse("drop=0.1@900..500").is_err());
        assert!(FaultSpec::parse("drop=0.1@a..b").is_err());
        assert!(FaultSpec::parse("seed=7@1..2").is_err());
        assert!(FaultSpec::parse("until=5@1..2").is_err());
        assert!(FaultSpec::parse("until=x").is_err());
    }

    #[test]
    fn parse_phase_bounds() {
        let s = FaultSpec::parse(
            "seed=3,drop=0.05@1000..2000,delay=0.1:2000@..50000,\
             linkdown=1000@200000@0..9000000,ackloss=0.9@30000..,until=3000000",
        )
        .unwrap();
        assert_eq!(s.tlp_drop_phase, Phase { start: 1000, end: Some(2000) });
        assert_eq!(s.tlp_delay_phase, Phase { start: 0, end: Some(50_000) });
        assert_eq!(s.link_phase, Phase { start: 0, end: Some(9_000_000) });
        assert_eq!((s.link_down_duration, s.link_down_period), (1000, 200_000));
        assert_eq!(s.ack_phase, Phase { start: 30_000, end: None });
        assert_eq!(s.until, Some(3_000_000));
        // Display → parse roundtrip with every phase shape present.
        assert_eq!(FaultSpec::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn phases_gate_draws_without_touching_streams() {
        // A storm that ends: in-window draws match an unbounded plan's
        // draws exactly (the phase gate sits before the RNG), and
        // out-of-window cycles draw nothing.
        let bounded = FaultSpec::parse("seed=9,drop=0.5@100..200").unwrap();
        let unbounded = FaultSpec::parse("seed=9,drop=0.5").unwrap();
        let pb = FaultPlan::new(bounded, Trace::disabled());
        let pu = FaultPlan::new(unbounded, Trace::disabled());
        for now in 0..300u64 {
            let b = pb.tlp_fault(now, None);
            if (100..200).contains(&now) {
                assert_eq!(b, pu.tlp_fault(now, None));
            } else {
                assert_eq!(b, None, "fault fired out of phase at {now}");
            }
        }
        assert!(pb.tlp_dropped.get() > 0);
    }

    #[test]
    fn until_ends_all_injection() {
        let spec = FaultSpec::parse("seed=2,ackloss=1.0,until=50").unwrap();
        let plan = FaultPlan::new(spec, Trace::disabled());
        assert!(plan.extra_ack_loss(49));
        assert!(!plan.extra_ack_loss(50));
        assert!(!plan.extra_ack_loss(1_000_000));
        assert!(plan.probe_ack_loss(49));
        assert!(!plan.probe_ack_loss(50));
    }

    #[test]
    fn probe_stream_is_independent_of_ack_stream() {
        // Interleaving probe draws between ack draws must not change the
        // ack sequence (and vice versa): separate forked streams.
        let spec = FaultSpec::parse("seed=6,ackloss=0.5").unwrap();
        let plain: Vec<bool> = {
            let plan = FaultPlan::new(spec.clone(), Trace::disabled());
            (0..200).map(|i| plan.extra_ack_loss(i)).collect()
        };
        let interleaved: Vec<bool> = {
            let plan = FaultPlan::new(spec, Trace::disabled());
            (0..200)
                .map(|i| {
                    let _ = plan.probe_ack_loss(i);
                    plan.extra_ack_loss(i)
                })
                .collect()
        };
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn recovery_only_spec_is_inactive() {
        let s = FaultSpec::parse("recovery=on,watchdog=1000").unwrap();
        assert!(!s.is_active());
    }

    #[test]
    fn checksum_detects_any_flip() {
        let data = vec![0xA5u8; 256];
        let want = checksum(&data);
        for pos in [0usize, 17, 255] {
            let mut d = data.clone();
            d[pos] ^= 0x01;
            assert_ne!(checksum(&d), want, "flip at {pos} undetected");
        }
        assert_eq!(checksum(&data), want);
    }

    #[test]
    fn zero_rates_never_draw() {
        let plan = FaultPlan::new(FaultSpec::none(), Trace::disabled());
        for i in 0..1000u64 {
            assert_eq!(plan.tlp_fault(i, None), None);
            assert_eq!(plan.mmio_fault(i), None);
            assert!(!plan.extra_ack_loss(i));
            assert!(!plan.probe_ack_loss(i));
            assert_eq!(plan.link_down_until(i), None);
            assert_eq!(plan.stall_until(i), None);
        }
        // No draws means the streams were never touched and no counter moved.
        assert_eq!(plan.tlp_dropped.get(), 0);
        assert_eq!(plan.link_down_waits.get(), 0);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let spec = FaultSpec::parse("seed=9,drop=0.2,corrupt=0.2,delay=0.2:500").unwrap();
        let draw = |spec: &FaultSpec| {
            let plan = FaultPlan::new(spec.clone(), Trace::disabled());
            (0..200).map(|i| plan.tlp_fault(i, None)).collect::<Vec<_>>()
        };
        let a = draw(&spec);
        assert_eq!(a, draw(&spec));
        assert!(a.iter().any(|f| f.is_some()));
        let other = FaultSpec { seed: 10, ..spec };
        assert_ne!(a, draw(&other));
    }

    #[test]
    fn garble_really_flips_bytes_deterministically() {
        let spec = FaultSpec::parse("seed=4,corrupt=1.0").unwrap();
        let run = || {
            let plan = FaultPlan::new(spec.clone(), Trace::disabled());
            let mut data = vec![0x5Au8; 64];
            plan.garble(&mut data);
            data
        };
        let a = run();
        assert_eq!(a, run());
        assert_ne!(a, vec![0x5Au8; 64]);
        assert_ne!(checksum(&a), checksum(&[0x5Au8; 64]));
    }

    #[test]
    fn windows_are_pure_clock_arithmetic() {
        let spec = FaultSpec::parse("linkdown=100@1000").unwrap();
        let plan = FaultPlan::new(spec, Trace::disabled());
        assert_eq!(plan.link_down_until(0), Some(100));
        assert_eq!(plan.link_down_until(99), Some(100));
        assert_eq!(plan.link_down_until(100), None);
        assert_eq!(plan.link_down_until(999), None);
        assert_eq!(plan.link_down_until(1_050), Some(1_100));
        assert_eq!(plan.link_down_waits.get(), 3);
    }

    #[test]
    fn trace_gets_fault_category_events() {
        let spec = FaultSpec::parse("seed=1,drop=1.0").unwrap();
        let trace = Trace::enabled();
        let plan = FaultPlan::new(spec, trace.clone());
        assert_eq!(plan.tlp_fault(42, Some(7)), Some(TlpFault::Drop));
        let ev = trace.events_in(Category::Fault);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, "tlp_drop");
        assert_eq!(ev[0].flow, Some(7));
        assert_eq!(ev[0].time, 42);
    }
}
