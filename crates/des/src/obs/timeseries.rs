//! Virtual-time metric sampling: deterministic time-series over the
//! registry.
//!
//! A [`TimeSeries`] snapshots selected instruments of a
//! [`Registry`] at a fixed virtual-clock cadence, turning the
//! end-of-run aggregates of the snapshot plane into curves:
//!
//! - **counters** become per-interval deltas (rates); counters named
//!   `*busy_cycles` additionally normalise by the interval length into
//!   an integer busy percent (`kind: "busy"`),
//! - **gauges** become point samples of the current level,
//! - **histograms** become *windowed* interval quantiles: the sampler
//!   keeps a shadow copy of the cumulative bucket counts, and each
//!   sample reports the count/p50/p99 of only the samples recorded
//!   since the previous sample (reset-on-sample semantics, computed
//!   from bucket deltas via
//!   [`crate::stats::log2_quantile_interpolated`]).
//!
//! The sampler is a dedicated daemon actor on the ordinary timer wheel
//! ([`TimeSeries::spawn`]). It only *reads* `Cell`/`RefCell` state and
//! never touches a shared synchronisation resource, and daemons do not
//! keep the simulation alive, so enabling it cannot move `sim.now()` at
//! app completion or any non-`obs.*` metric — see DESIGN.md §5f.
//!
//! Exports: [`TimeSeries::to_json`] (the `VSCC_TIMESERIES` payload,
//! byte-identical across identical runs) and
//! [`super::chrome_trace_json_with_tracks`] (Perfetto counter tracks
//! merged into the `VSCC_TRACE` export).

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::stats::{log2_quantile_interpolated, Counter, Gauge, Log2Histogram};
use crate::{Cycles, Sim};

use super::{json_escape, Metric, Registry};

/// Default sampling cadence in cycles: fine enough to resolve the
/// per-chunk phases of an 8 KiB inter-device transfer, coarse enough
/// that a bench run stays a few hundred samples.
pub const DEFAULT_CADENCE: Cycles = 25_000;

/// What to sample, and how often.
#[derive(Clone, Debug)]
pub struct SamplerSpec {
    /// Virtual cycles between samples.
    pub cadence: Cycles,
    /// Select metrics whose full name starts with one of these
    /// prefixes; empty selects everything. Metrics under `obs.` (the
    /// sampler's own footprint) are always excluded.
    pub prefixes: Vec<String>,
}

impl Default for SamplerSpec {
    fn default() -> Self {
        SamplerSpec { cadence: DEFAULT_CADENCE, prefixes: Vec::new() }
    }
}

impl SamplerSpec {
    /// Sample everything (except `obs.*`) every `cadence` cycles.
    pub fn every(cadence: Cycles) -> Self {
        assert!(cadence > 0, "sampler cadence must be positive");
        SamplerSpec { cadence, prefixes: Vec::new() }
    }

    /// Restrict sampling to names starting with one of `prefixes`.
    pub fn with_prefixes(mut self, prefixes: &[&str]) -> Self {
        self.prefixes = prefixes.iter().map(|p| p.to_string()).collect();
        self
    }

    fn selects(&self, name: &str) -> bool {
        if name.starts_with("obs.") {
            return false;
        }
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }
}

/// How a series' points were derived from its instrument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Counter delta per interval.
    Rate,
    /// `*busy_cycles` counter delta as an integer percent of the
    /// interval (busy fraction).
    Busy,
    /// Gauge level at the sample instant.
    Level,
    /// Histogram interval window: count and interpolated p50/p99 of the
    /// samples recorded since the previous sample.
    Window,
}

impl SeriesKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Rate => "rate",
            SeriesKind::Busy => "busy",
            SeriesKind::Level => "level",
            SeriesKind::Window => "window",
        }
    }
}

/// One sampled point (paired with its virtual timestamp in the series).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointValue {
    /// Counter delta over the interval.
    Rate(u64),
    /// Busy percent (0..=100) over the interval.
    Busy(u64),
    /// Gauge level.
    Level(i64),
    /// Windowed histogram: interval count and interpolated quantiles.
    Window { count: u64, p50: u64, p99: u64 },
}

enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Log2Histogram),
}

struct Series {
    name: String,
    kind: SeriesKind,
    source: Source,
    /// Counter value at the previous sample (Rate/Busy).
    last: Cell<u64>,
    /// Cumulative bucket counts at the previous sample (Window).
    last_buckets: RefCell<Vec<u64>>,
    points: RefCell<Vec<(Cycles, PointValue)>>,
}

impl Series {
    fn sample(&self, t: Cycles, interval: Cycles) {
        let value = match (&self.source, self.kind) {
            (Source::Counter(c), SeriesKind::Busy) => {
                let cur = c.get();
                let delta = cur - self.last.get();
                self.last.set(cur);
                let pct = (delta * 100).checked_div(interval).unwrap_or(0).min(100);
                PointValue::Busy(pct)
            }
            (Source::Counter(c), _) => {
                let cur = c.get();
                let delta = cur - self.last.get();
                self.last.set(cur);
                PointValue::Rate(delta)
            }
            (Source::Gauge(g), _) => PointValue::Level(g.get()),
            (Source::Histogram(h), _) => {
                let cur = h.buckets();
                let mut shadow = self.last_buckets.borrow_mut();
                let mut delta = vec![0u64; cur.len()];
                for (i, &c) in cur.iter().enumerate() {
                    delta[i] = c - shadow.get(i).copied().unwrap_or(0);
                }
                *shadow = cur;
                let count: u64 = delta.iter().sum();
                PointValue::Window {
                    count,
                    p50: log2_quantile_interpolated(&delta, count, u64::MAX, 0.5),
                    p99: log2_quantile_interpolated(&delta, count, u64::MAX, 0.99),
                }
            }
        };
        self.points.borrow_mut().push((t, value));
    }
}

/// A name-sorted copy of one series, for exporters.
#[derive(Clone, Debug)]
pub struct SeriesExport {
    /// Full metric name.
    pub name: String,
    /// Point semantics.
    pub kind: SeriesKind,
    /// `(virtual time, value)` in sample order.
    pub points: Vec<(Cycles, PointValue)>,
}

struct Inner {
    cadence: Cycles,
    series: RefCell<Vec<Series>>,
    /// Previous sample instant (the left edge of the current window).
    last_t: Cell<Cycles>,
    samples: Cell<u64>,
    /// Set at the first sample; tracked instruments must all be
    /// attached before it (a series appearing mid-run would have a
    /// meaningless first delta).
    sealed: Cell<bool>,
    /// The sampler's own footprint, under `obs.sampler.*`.
    samples_taken: super::CounterHandle,
}

/// Deterministic virtual-time series over a registry's instruments.
///
/// Cheap to clone (shared state). Build with [`TimeSeries::spawn`] (a
/// sampling daemon on the timer wheel) or [`TimeSeries::manual`] (the
/// caller invokes [`TimeSeries::sample_now`], e.g. oracle tests).
#[derive(Clone)]
pub struct TimeSeries {
    inner: Rc<Inner>,
}

impl TimeSeries {
    /// Resolve `spec` against `registry` at time `now` without spawning
    /// a sampler; the caller drives sampling via
    /// [`TimeSeries::sample_now`].
    pub fn manual(now: Cycles, registry: &Registry, spec: &SamplerSpec) -> TimeSeries {
        assert!(spec.cadence > 0, "sampler cadence must be positive");
        let obs = registry.scoped("obs").scoped("sampler");
        let samples_taken = obs.register_counter("samples");
        let selected = obs.register_gauge("series");
        let mut series = Vec::new();
        for name in registry.names() {
            if !spec.selects(&name) {
                continue;
            }
            let Some(metric) = registry.get(&name) else { continue };
            series.push(match metric {
                Metric::Counter(c) => {
                    let kind = if name.ends_with("busy_cycles") {
                        SeriesKind::Busy
                    } else {
                        SeriesKind::Rate
                    };
                    Series {
                        name,
                        kind,
                        last: Cell::new(c.get()),
                        last_buckets: RefCell::new(Vec::new()),
                        points: RefCell::new(Vec::new()),
                        source: Source::Counter(c),
                    }
                }
                Metric::Gauge(g) => Series {
                    name,
                    kind: SeriesKind::Level,
                    last: Cell::new(0),
                    last_buckets: RefCell::new(Vec::new()),
                    points: RefCell::new(Vec::new()),
                    source: Source::Gauge(g),
                },
                Metric::Histogram(h) => Series {
                    name,
                    kind: SeriesKind::Window,
                    last: Cell::new(0),
                    last_buckets: RefCell::new(h.buckets()),
                    points: RefCell::new(Vec::new()),
                    source: Source::Histogram(h),
                },
            });
        }
        selected.set(series.len() as i64);
        TimeSeries {
            inner: Rc::new(Inner {
                cadence: spec.cadence,
                series: RefCell::new(series),
                last_t: Cell::new(now),
                samples: Cell::new(0),
                sealed: Cell::new(false),
                samples_taken,
            }),
        }
    }

    /// Resolve `spec` against `registry` and spawn the sampling daemon
    /// on `sim`'s timer wheel. The daemon fires every `spec.cadence`
    /// cycles; being a daemon, its pending timer never extends the run
    /// past app completion.
    pub fn spawn(sim: &Sim, registry: &Registry, spec: &SamplerSpec) -> TimeSeries {
        let ts = Self::manual(sim.now(), registry, spec);
        let inner = ts.inner.clone();
        let sim2 = sim.clone();
        sim.spawn_daemon("obs-sampler", async move {
            loop {
                sim2.delay(inner.cadence).await;
                Self::sample_inner(&inner, sim2.now());
            }
        });
        ts
    }

    /// Track an instrument that lives *outside* the registry (e.g. the
    /// thread-local byte-pool gauge, which must stay out of snapshots
    /// because its state persists across runs on one thread). Only
    /// valid before the first sample.
    pub fn track_gauge(&self, name: &str, g: &Gauge) {
        self.track(name, SeriesKind::Level, Source::Gauge(g.clone()));
    }

    /// Track an external counter as a per-interval rate (or busy
    /// fraction, when the name ends in `busy_cycles`); see
    /// [`TimeSeries::track_gauge`].
    pub fn track_counter(&self, name: &str, c: &Counter) {
        let kind = if name.ends_with("busy_cycles") { SeriesKind::Busy } else { SeriesKind::Rate };
        self.track(name, kind, Source::Counter(c.clone()));
    }

    fn track(&self, name: &str, kind: SeriesKind, source: Source) {
        assert!(
            !self.inner.sealed.get(),
            "cannot track {name:?}: the sampler already took a sample"
        );
        let mut series = self.inner.series.borrow_mut();
        assert!(series.iter().all(|s| s.name != name), "series {name:?} tracked twice");
        let last = match &source {
            Source::Counter(c) => c.get(),
            _ => 0,
        };
        let last_buckets = match &source {
            Source::Histogram(h) => h.buckets(),
            _ => Vec::new(),
        };
        series.push(Series {
            name: name.to_string(),
            kind,
            source,
            last: Cell::new(last),
            last_buckets: RefCell::new(last_buckets),
            points: RefCell::new(Vec::new()),
        });
    }

    fn sample_inner(inner: &Inner, now: Cycles) {
        inner.sealed.set(true);
        let interval = now - inner.last_t.get();
        for s in inner.series.borrow().iter() {
            s.sample(now, interval);
        }
        inner.last_t.set(now);
        inner.samples.set(inner.samples.get() + 1);
        inner.samples_taken.inc();
    }

    /// Take one sample at virtual time `now` (manual mode; also used by
    /// [`TimeSeries::finish`]).
    pub fn sample_now(&self, now: Cycles) {
        assert!(now >= self.inner.last_t.get(), "samples must move forward in time");
        Self::sample_inner(&self.inner, now);
    }

    /// Flush the final partial window: if the run ended between cadence
    /// boundaries, sample once more at `now` so the tail of the run is
    /// not lost. No-op when `now` is the previous sample instant.
    pub fn finish(&self, now: Cycles) {
        if now > self.inner.last_t.get() || self.inner.samples.get() == 0 {
            self.sample_now(now.max(self.inner.last_t.get()));
        }
    }

    /// The sampling cadence in cycles.
    pub fn cadence(&self) -> Cycles {
        self.inner.cadence
    }

    /// Number of sampling instants so far.
    pub fn samples(&self) -> u64 {
        self.inner.samples.get()
    }

    /// Name-sorted copies of every series (exporter API).
    pub fn series(&self) -> Vec<SeriesExport> {
        let mut out: Vec<SeriesExport> = self
            .inner
            .series
            .borrow()
            .iter()
            .map(|s| SeriesExport {
                name: s.name.clone(),
                kind: s.kind,
                points: s.points.borrow().clone(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Serialize as deterministic JSON: name-sorted series, one per
    /// line (diffable), points as `[t, v]` (rate/busy/level) or
    /// `[t, count, p50, p99]` (window).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ =
            write!(out, "  \"cadence\": {},\n  \"samples\": {},\n", self.cadence(), self.samples());
        out.push_str("  \"series\": {");
        for (i, s) in self.series().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"kind\": \"{}\", \"points\": [",
                json_escape(&s.name),
                s.kind.name()
            );
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match v {
                    PointValue::Rate(r) => {
                        let _ = write!(out, "[{t}, {r}]");
                    }
                    PointValue::Busy(pct) => {
                        let _ = write!(out, "[{t}, {pct}]");
                    }
                    PointValue::Level(l) => {
                        let _ = write!(out, "[{t}, {l}]");
                    }
                    PointValue::Window { count, p50, p99 } => {
                        let _ = write!(out, "[{t}, {count}, {p50}, {p99}]");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sample_as_interval_deltas() {
        let reg = Registry::new();
        let c = reg.counter("pcie.bytes");
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(100));
        c.add(30);
        ts.sample_now(100);
        c.add(12);
        ts.sample_now(200);
        ts.sample_now(300); // idle interval
        let s = &ts.series()[0];
        assert_eq!(s.kind, SeriesKind::Rate);
        assert_eq!(
            s.points,
            vec![
                (100, PointValue::Rate(30)),
                (200, PointValue::Rate(12)),
                (300, PointValue::Rate(0))
            ]
        );
    }

    #[test]
    fn busy_cycles_normalise_to_percent() {
        let reg = Registry::new();
        let c = reg.counter("pcie.link0.busy_cycles");
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(100));
        c.add(40);
        ts.sample_now(100);
        c.add(100);
        ts.sample_now(200);
        let s = &ts.series()[0];
        assert_eq!(s.kind, SeriesKind::Busy);
        assert_eq!(s.points, vec![(100, PointValue::Busy(40)), (200, PointValue::Busy(100))]);
    }

    #[test]
    fn gauges_sample_as_levels_and_histograms_as_windows() {
        let reg = Registry::new();
        let g = reg.gauge("host.wcb.depth");
        let h = reg.histogram("rcce.lat");
        // Pre-sampler samples belong to no window.
        h.record(1000);
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(50));
        g.set(7);
        h.record(100);
        h.record(100);
        ts.sample_now(50);
        g.set(3);
        ts.sample_now(100);
        let series = ts.series();
        assert_eq!(series[0].name, "host.wcb.depth");
        assert_eq!(series[0].points[0], (50, PointValue::Level(7)));
        assert_eq!(series[0].points[1], (100, PointValue::Level(3)));
        match series[1].points[0] {
            (50, PointValue::Window { count, p50, p99 }) => {
                assert_eq!(count, 2, "the pre-sampler sample must not leak into the window");
                assert!((64..128).contains(&p50), "p50 {p50} outside [64,128)");
                assert!(p99 >= p50);
            }
            other => panic!("expected window point, got {other:?}"),
        }
        match series[1].points[1] {
            (100, PointValue::Window { count, p50, p99 }) => {
                assert_eq!((count, p50, p99), (0, 0, 0), "empty window");
            }
            other => panic!("expected window point, got {other:?}"),
        }
    }

    #[test]
    fn spec_selection_and_obs_exclusion() {
        let reg = Registry::new();
        reg.counter("pcie.bytes");
        reg.counter("scc.writes");
        reg.counter("obs.sampler.noise");
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(10).with_prefixes(&["pcie."]));
        let names: Vec<String> = ts.series().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["pcie.bytes"]);
        // Empty prefix list selects everything except obs.*.
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(10));
        let names: Vec<String> = ts.series().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["pcie.bytes", "scc.writes"]);
    }

    #[test]
    fn tracked_externals_join_until_sealed() {
        let reg = Registry::new();
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(10));
        let pool = Gauge::new();
        pool.set(5);
        ts.track_gauge("bytes.pool.free_buffers", &pool);
        let busy = Counter::new();
        busy.add(3);
        ts.track_counter("ext.busy_cycles", &busy);
        ts.sample_now(10);
        let series = ts.series();
        assert_eq!(series[0].points[0], (10, PointValue::Level(5)));
        // Pre-attach counts never show up as a first-window spike.
        assert_eq!(series[1].points[0], (10, PointValue::Busy(0)));
    }

    #[test]
    #[should_panic(expected = "already took a sample")]
    fn tracking_after_first_sample_panics() {
        let reg = Registry::new();
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(10));
        ts.sample_now(10);
        ts.track_gauge("late", &Gauge::new());
    }

    #[test]
    fn finish_flushes_the_partial_window_once() {
        let reg = Registry::new();
        let c = reg.counter("pcie.bytes");
        let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(100));
        c.add(9);
        ts.sample_now(100);
        c.add(5);
        ts.finish(140);
        ts.finish(140); // idempotent at the same instant
        assert_eq!(ts.samples(), 2);
        assert_eq!(
            ts.series()[0].points,
            vec![(100, PointValue::Rate(9)), (140, PointValue::Rate(5))]
        );
    }

    #[test]
    fn json_export_is_deterministic_and_sorted() {
        let build = || {
            let reg = Registry::new();
            let c = reg.counter("z.bytes");
            reg.gauge("a.depth").set(2);
            let ts = TimeSeries::manual(0, &reg, &SamplerSpec::every(10));
            c.add(4);
            ts.sample_now(10);
            ts.to_json()
        };
        let j1 = build();
        assert_eq!(j1, build());
        assert!(j1.contains("\"cadence\": 10"));
        assert!(j1.contains("\"a.depth\": {\"kind\": \"level\", \"points\": [[10, 2]]}"));
        assert!(j1.contains("\"z.bytes\": {\"kind\": \"rate\", \"points\": [[10, 4]]}"));
        let a = j1.find("a.depth").unwrap();
        let z = j1.find("z.bytes").unwrap();
        assert!(a < z, "series must be name-sorted");
    }

    #[test]
    fn sampler_daemon_does_not_extend_the_run() {
        let sim = Sim::new();
        let reg = Registry::new();
        let c = reg.counter("app.ticks");
        let ts = TimeSeries::spawn(&sim, &reg, &SamplerSpec::every(10));
        let sim2 = sim.clone();
        let c2 = c.clone();
        sim.spawn(async move {
            for _ in 0..5 {
                sim2.delay(7).await;
                c2.inc();
            }
        });
        let end = sim.run().expect("clean run");
        assert_eq!(end, 35, "the sampler daemon must not extend the run");
        assert_eq!(ts.samples(), 3, "samples at 10, 20, 30");
        let total: u64 = ts.series()[0]
            .points
            .iter()
            .map(|(_, v)| match v {
                PointValue::Rate(r) => *r,
                _ => 0,
            })
            .sum();
        ts.finish(end);
        let with_tail: u64 = ts.series()[0]
            .points
            .iter()
            .map(|(_, v)| match v {
                PointValue::Rate(r) => *r,
                _ => 0,
            })
            .sum();
        assert!(total <= 5);
        assert_eq!(with_tail, 5, "finish() recovers the tail of the run");
    }
}
