//! Hash-chained scheduler audit stream (DESIGN.md §5g).
//!
//! The engine's other observability planes record *what the simulated
//! system did* (metrics, traces, timeseries). This module records *why
//! the engine did it*: every scheduler decision — task spawn/poll/wake
//! order, timer arm/fire/cancel, channel and link deliveries, RNG
//! draws, fault-plan activations, payload digests at tunnel
//! boundaries — is folded into one FNV-1a chain hash per fixed-cycle
//! *epoch*. Two runs whose exports agree epoch-for-epoch took the same
//! decisions in the same order; the first divergent epoch brackets the
//! first divergent decision to a `cadence`-cycle window.
//!
//! Bisection is a two-step protocol:
//!
//! 1. run twice with `VSCC_AUDIT=a.json` / `b.json`, then
//!    `audit_diff a.json b.json` → first divergent epoch `E`;
//! 2. re-run both with `VSCC_AUDIT_ZOOM=E` — inside epoch `E` every raw
//!    decision is kept (in a ring bounded by `VSCC_FLIGHT`) and all
//!    trace categories are armed; `audit_diff` on the zoomed dumps then
//!    names the first divergent *decision* (kind, operands, cycle).
//!
//! Recording is a thread-local ambient sink behind a `const`-initialised
//! `Cell<bool>` fast path: with no audit installed every hook is a
//! thread-local load and a branch, and the sink only ever *reads*
//! engine state — it cannot move virtual time, touch metrics, or wake
//! anything, which is why audit-off runs are byte-identical to
//! pre-audit builds (see `tests/engine.rs` golden FNV pins).
//!
//! The chain hash uses the same FNV-1a constants as
//! [`crate::faultplan::checksum`], folded word-wise per operand (cheap,
//! and injective per 8-byte operand, so any single changed operand
//! flips the epoch digest); payload bytes are first reduced with the
//! word-wise [`digest_bytes`] (8 bytes per multiply — the data path
//! digests whole messages, so the byte-wise `checksum` would dominate
//! the audit tax) and the digest folded in.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::faultplan::checksum;
use crate::time::Cycles;
use crate::trace::Trace;

/// Default epoch length in cycles; matches the timeseries sampler's
/// default cadence so the two planes window identically.
pub const DEFAULT_EPOCH_CYCLES: u64 = 25_000;

/// Default bound on the zoomed raw-decision ring when `VSCC_FLIGHT` is
/// unset: a zoom window on a huge epoch keeps the *last* N decisions.
pub const DEFAULT_ZOOM_RING: usize = 4096;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a word fold: `h' = (h ^ x) * prime`. Shared with the shard
/// engine's chain merge (`crate::shard::merge_chains`).
#[inline]
pub(crate) fn fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// Word-wise FNV digest of a byte slice: 8 little-endian bytes per
/// fold across two independent lanes (even/odd words), the tail
/// zero-padded, the length folded last (so `[0]` and `[0, 0]` differ).
/// The lanes halve the serial multiply chain on whole-message digests —
/// the data path digests every tunnel payload, so this is the audit
/// tax's hottest loop. Any single flipped byte lands in exactly one
/// lane's word and flips the combined digest.
#[inline]
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let (mut h0, mut h1) = (FNV_OFFSET, FNV_OFFSET);
    let mut pairs = bytes.chunks_exact(16);
    for p in &mut pairs {
        h0 = fold(h0, u64::from_le_bytes(p[..8].try_into().expect("8-byte word")));
        h1 = fold(h1, u64::from_le_bytes(p[8..].try_into().expect("8-byte word")));
    }
    let rest = pairs.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 16];
        tail[..rest.len()].copy_from_slice(rest);
        h0 = fold(h0, u64::from_le_bytes(tail[..8].try_into().expect("8-byte word")));
        h1 = fold(h1, u64::from_le_bytes(tail[8..].try_into().expect("8-byte word")));
    }
    fold(fold(h0, h1), bytes.len() as u64)
}

/// Number of decision kinds (length of [`DecisionKind::ALL`]).
pub const KIND_COUNT: usize = 12;

/// The decision taxonomy. Every nondeterminism-relevant choice the
/// engine makes maps to exactly one kind; the two operand words `a`/`b`
/// carry the kind-specific identity (see each variant's doc).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DecisionKind {
    /// Task spawned: `a` = task id, `b` = interned name.
    Spawn = 0,
    /// Task polled: `a` = task id.
    Poll = 1,
    /// Task woken onto the ready queue: `a` = task id.
    Wake = 2,
    /// Timer registered: `a` = deadline, `b` = wheel sequence number.
    TimerArm = 3,
    /// Timer popped for firing: `a` = deadline, `b` = wheel sequence.
    TimerFire = 4,
    /// Pending timer withdrawn: `a` = slab index, `b` = generation.
    TimerCancel = 5,
    /// Value queued on a [`crate::channel`]: `a` = queue depth after.
    ChanSend = 6,
    /// Value dequeued from a channel: `a` = queue depth after.
    ChanRecv = 7,
    /// Link bandwidth reserved: `a` = bytes, `b` = arrival cycle.
    LinkReserve = 8,
    /// Deterministic RNG draw: `a` = the drawn word.
    RngDraw = 9,
    /// Fault-plan activation: `a` = FNV of the fault kind, `b` = flow.
    Fault = 10,
    /// Payload digest at a tunnel boundary: `a` = FNV-1a of the bytes,
    /// `b` = length.
    Payload = 11,
}

impl DecisionKind {
    pub const ALL: [DecisionKind; KIND_COUNT] = [
        DecisionKind::Spawn,
        DecisionKind::Poll,
        DecisionKind::Wake,
        DecisionKind::TimerArm,
        DecisionKind::TimerFire,
        DecisionKind::TimerCancel,
        DecisionKind::ChanSend,
        DecisionKind::ChanRecv,
        DecisionKind::LinkReserve,
        DecisionKind::RngDraw,
        DecisionKind::Fault,
        DecisionKind::Payload,
    ];

    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Spawn => "spawn",
            DecisionKind::Poll => "poll",
            DecisionKind::Wake => "wake",
            DecisionKind::TimerArm => "timer_arm",
            DecisionKind::TimerFire => "timer_fire",
            DecisionKind::TimerCancel => "timer_cancel",
            DecisionKind::ChanSend => "chan_send",
            DecisionKind::ChanRecv => "chan_recv",
            DecisionKind::LinkReserve => "link_reserve",
            DecisionKind::RngDraw => "rng_draw",
            DecisionKind::Fault => "fault",
            DecisionKind::Payload => "payload",
        }
    }
}

/// One sealed epoch: the chain hash after folding every decision of
/// the epoch into the previous epoch's chain, plus per-kind counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRow {
    pub epoch: u64,
    /// First cycle of the epoch (`epoch * cadence`).
    pub start: Cycles,
    /// Chain hash at the end of the epoch.
    pub chain: u64,
    /// Decisions folded during this epoch.
    pub decisions: u64,
    pub counts: [u64; KIND_COUNT],
}

/// One raw decision captured inside the zoom window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    pub kind: DecisionKind,
    pub cycle: Cycles,
    pub a: u64,
    pub b: u64,
}

struct AuditInner {
    cadence: u64,
    /// Running chain hash (seeded with the FNV offset basis; each
    /// epoch's chain continues from the previous epoch's).
    chain: Cell<u64>,
    /// Epoch currently being folded.
    epoch: Cell<u64>,
    /// First cycle past the current epoch. The per-decision fast path
    /// is one compare against this; the `cycle / cadence` division only
    /// happens on an epoch roll (virtual time is monotone within a
    /// run, so a cycle below the bound is inside the current epoch).
    epoch_end: Cell<Cycles>,
    /// Last observed virtual time (decisions recorded without an
    /// explicit cycle — channel ops, RNG draws — attribute here).
    now: Cell<Cycles>,
    /// Per-kind decision counts of the current (open) epoch. The
    /// epoch's decision total is their sum, computed at roll time — the
    /// hot path pays exactly one counter bump per decision.
    counts: [Cell<u64>; KIND_COUNT],
    rows: RefCell<Vec<EpochRow>>,
    /// Zoom target epoch: raw decisions of exactly this epoch are kept.
    zoom: Option<u64>,
    zoom_ring_cap: Cell<usize>,
    ring: RefCell<VecDeque<Decision>>,
    /// Decisions dropped from the front of the ring (bounded window).
    ring_dropped: Cell<u64>,
    /// Traces to arm with all categories while inside the zoom epoch.
    armed: RefCell<Vec<(Trace, u8)>>,
    in_zoom: Cell<bool>,
}

impl AuditInner {
    fn enter_zoom(&self) {
        self.in_zoom.set(true);
        let mut armed = self.armed.borrow_mut();
        for (trace, saved) in armed.iter_mut() {
            *saved = trace.category_mask();
            trace.set_category_mask(crate::trace::Category::ALL_MASK);
        }
    }

    fn leave_zoom(&self) {
        self.in_zoom.set(false);
        for (trace, saved) in self.armed.borrow_mut().iter() {
            trace.set_category_mask(*saved);
        }
    }

    /// Seal the open epoch (a row is emitted only if it folded at
    /// least one decision) and move to `target`.
    fn roll_to(&self, target: u64) {
        let cur = self.epoch.get();
        let mut counts = [0u64; KIND_COUNT];
        let mut decisions = 0;
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.get();
            src.set(0);
            decisions += *dst;
        }
        if decisions > 0 {
            self.rows.borrow_mut().push(EpochRow {
                epoch: cur,
                start: cur * self.cadence,
                chain: self.chain.get(),
                decisions,
                counts,
            });
        }
        if self.in_zoom.get() {
            self.leave_zoom();
        }
        self.epoch.set(target);
        self.epoch_end.set((target + 1) * self.cadence);
        if self.zoom == Some(target) {
            self.enter_zoom();
        }
    }

    fn note(&self, cycle: Cycles, kind: DecisionKind, a: u64, b: u64) {
        if cycle >= self.epoch_end.get() {
            self.roll_to(cycle / self.cadence);
        }
        // Three folds per decision: the cycle and kind share one word
        // (kinds fit in 4 bits and virtual time never nears 2^60, so
        // the packing is injective), then the two operands.
        let mut h = self.chain.get();
        h = fold(h, (cycle << 4) | (kind as u64 + 1));
        h = fold(h, a);
        h = fold(h, b);
        self.chain.set(h);
        self.counts[kind as usize].set(self.counts[kind as usize].get() + 1);
        if cycle > self.now.get() {
            self.now.set(cycle);
        }
        if self.in_zoom.get() {
            let mut ring = self.ring.borrow_mut();
            if ring.len() == self.zoom_ring_cap.get() {
                ring.pop_front();
                self.ring_dropped.set(self.ring_dropped.get() + 1);
            }
            ring.push_back(Decision { kind, cycle, a, b });
        }
    }
}

/// The thread's ambient sink. One `thread_local` holds both the owning
/// handle and a hot-path alias, so a hook pays a single TLS address
/// computation and a null check — no `RefCell` borrow per decision.
struct TlsSink {
    /// Owns the installed sink (keeps the `AuditInner` alive while a
    /// guard is out). Only touched by install/uninstall.
    sink: RefCell<Option<Rc<AuditInner>>>,
    /// Hot-path alias of `sink`'s contents. Invariant: non-null exactly
    /// while `sink` is `Some`, pointing at the `Rc`'s allocation — the
    /// two cells live in one thread-local and are only mutated together
    /// (install / guard drop), so dereferencing a non-null `ptr` is
    /// sound for the duration of the hook call.
    ptr: Cell<*const AuditInner>,
}

thread_local! {
    static SINK: TlsSink =
        const { TlsSink { sink: RefCell::new(None), ptr: Cell::new(std::ptr::null()) } };
}

/// Whether an audit sink is installed on this thread. The engine hooks
/// check this first; it is a `const`-initialised thread-local `Cell`
/// read, so the audit-off cost is one load and branch per hook.
#[inline]
pub fn enabled() -> bool {
    SINK.with(|s| !s.ptr.get().is_null())
}

/// Record a decision at an explicit virtual time. No-op unless an
/// [`Audit`] is installed on this thread.
#[inline]
pub fn record_at(cycle: Cycles, kind: DecisionKind, a: u64, b: u64) {
    SINK.with(|s| {
        let p = s.ptr.get();
        if p.is_null() {
            return;
        }
        // SAFETY: `p` aliases the `Rc` held in `s.sink` (TlsSink
        // invariant), which stays alive for this whole call: `note`
        // never re-enters install/uninstall.
        unsafe { &*p }.note(cycle, kind, a, b);
    });
}

/// Record a decision at the sink's last observed virtual time (for
/// hooks that have no `Sim` handle: channel operations, RNG draws).
#[inline]
pub fn record(kind: DecisionKind, a: u64, b: u64) {
    SINK.with(|s| {
        let p = s.ptr.get();
        if p.is_null() {
            return;
        }
        // SAFETY: as in `record_at`.
        let inner = unsafe { &*p };
        inner.note(inner.now.get(), kind, a, b);
    });
}

/// Record a payload-byte digest at a tunnel boundary.
#[inline]
pub fn record_payload(cycle: Cycles, bytes: &[u8]) {
    if !enabled() {
        return;
    }
    record_at(cycle, DecisionKind::Payload, digest_bytes(bytes), bytes.len() as u64);
}

/// Record a fault-plan activation (`kind` is the fault kind string).
#[inline]
pub fn record_fault(cycle: Cycles, kind: &'static str, flow: u64) {
    if !enabled() {
        return;
    }
    record_at(cycle, DecisionKind::Fault, checksum(kind.as_bytes()), flow);
}

/// Uninstalls the thread-local sink on drop.
pub struct AuditGuard {
    _priv: (),
}

impl Drop for AuditGuard {
    fn drop(&mut self) {
        SINK.with(|s| {
            s.ptr.set(std::ptr::null());
            *s.sink.borrow_mut() = None;
        });
    }
}

/// A hash-chained audit stream for one simulation run.
///
/// [`Audit::install`] routes this thread's engine hooks into the
/// stream until the returned guard drops; the audit is scoped to a
/// single [`crate::Sim`] run (virtual time restarts at zero per run,
/// which would fold epochs backwards across runs).
pub struct Audit {
    inner: Rc<AuditInner>,
}

impl Audit {
    pub fn new(cadence: u64) -> Audit {
        Audit::build(cadence, None)
    }

    /// Audit with a zoom window: raw decisions of epoch `epoch` are
    /// kept in a bounded ring and registered traces are armed with all
    /// categories while inside it.
    pub fn with_zoom(cadence: u64, epoch: u64) -> Audit {
        Audit::build(cadence, Some(epoch))
    }

    fn build(cadence: u64, zoom: Option<u64>) -> Audit {
        assert!(cadence > 0, "audit epoch cadence must be positive");
        let ring_cap = crate::obs::flight_capacity_from_env().unwrap_or(DEFAULT_ZOOM_RING);
        let inner = Rc::new(AuditInner {
            cadence,
            chain: Cell::new(FNV_OFFSET),
            epoch: Cell::new(0),
            epoch_end: Cell::new(cadence),
            now: Cell::new(0),
            counts: std::array::from_fn(|_| Cell::new(0)),
            rows: RefCell::new(Vec::new()),
            zoom,
            zoom_ring_cap: Cell::new(ring_cap.max(1)),
            ring: RefCell::new(VecDeque::new()),
            ring_dropped: Cell::new(0),
            armed: RefCell::new(Vec::new()),
            in_zoom: Cell::new(false),
        });
        if zoom == Some(0) {
            inner.enter_zoom();
        }
        Audit { inner }
    }

    /// Override the zoom-ring bound (defaults to `VSCC_FLIGHT` or
    /// [`DEFAULT_ZOOM_RING`]).
    pub fn set_zoom_ring_cap(&self, cap: usize) {
        self.inner.zoom_ring_cap.set(cap.max(1));
    }

    /// Register a trace to be armed with every category while the run
    /// is inside the zoom epoch (its prior mask is restored on exit).
    pub fn register_trace(&self, trace: &Trace) {
        let mask = trace.category_mask();
        self.inner.armed.borrow_mut().push((trace.clone(), mask));
        if self.inner.in_zoom.get() {
            trace.set_category_mask(crate::trace::Category::ALL_MASK);
        }
    }

    /// Install this audit as the thread's ambient sink. Engine hooks
    /// record into it until the guard drops.
    pub fn install(&self) -> AuditGuard {
        SINK.with(|s| {
            *s.sink.borrow_mut() = Some(Rc::clone(&self.inner));
            s.ptr.set(Rc::as_ptr(&self.inner));
        });
        AuditGuard { _priv: () }
    }

    /// Chain hash over everything folded so far.
    pub fn chain(&self) -> u64 {
        self.inner.chain.get()
    }

    pub fn total_decisions(&self) -> u64 {
        self.inner.rows.borrow().iter().map(|r| r.decisions).sum::<u64>()
            + self.inner.counts.iter().map(Cell::get).sum::<u64>()
    }

    /// Sealed epochs plus the open tail epoch (if it folded anything).
    pub fn epochs(&self) -> Vec<EpochRow> {
        let mut rows = self.inner.rows.borrow().clone();
        let mut counts = [0u64; KIND_COUNT];
        let mut decisions = 0;
        for (dst, src) in counts.iter_mut().zip(self.inner.counts.iter()) {
            *dst = src.get();
            decisions += *dst;
        }
        if decisions > 0 {
            let cur = self.inner.epoch.get();
            rows.push(EpochRow {
                epoch: cur,
                start: cur * self.inner.cadence,
                chain: self.inner.chain.get(),
                decisions,
                counts,
            });
        }
        rows
    }

    /// Raw decisions captured inside the zoom window (bounded ring).
    pub fn zoomed(&self) -> Vec<Decision> {
        self.inner.ring.borrow().iter().copied().collect()
    }

    /// Deterministic line-oriented JSON export (`VSCC_AUDIT` target).
    pub fn to_json(&self) -> String {
        let rows = self.epochs();
        let zoomed = self.zoomed();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"vscc-audit-v1\",\n");
        let _ = writeln!(out, "  \"cadence\": {},", self.inner.cadence);
        let _ = writeln!(out, "  \"decisions\": {},", self.total_decisions());
        let _ = writeln!(out, "  \"final\": \"{:#018x}\",", self.chain());
        let _ = writeln!(out, "  \"epochs\": {},", rows.len());
        out.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"epoch\": {}, \"start\": {}, \"chain\": \"{:#018x}\", \"decisions\": {}, \"counts\": {{",
                row.epoch, row.start, row.chain, row.decisions
            );
            let mut first = true;
            for kind in DecisionKind::ALL {
                let n = row.counts[kind as usize];
                if n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": {n}", kind.name());
                    first = false;
                }
            }
            out.push_str("}}");
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"zoom_dropped\": {},", self.inner.ring_dropped.get());
        out.push_str("  \"zoom\": [\n");
        for (i, d) in zoomed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"cycle\": {}, \"a\": {}, \"b\": {}}}",
                d.kind.name(),
                d.cycle,
                d.a,
                d.b
            );
            if i + 1 < zoomed.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Export diffing (shared by `examples/audit_diff.rs` and the tests).

/// A parsed epoch line of an audit export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEpoch {
    pub epoch: u64,
    pub chain: String,
    pub decisions: u64,
}

/// A parsed zoom-decision line of an audit export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedDecision {
    pub kind: String,
    pub cycle: u64,
    pub a: u64,
    pub b: u64,
}

impl std::fmt::Display for ParsedDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at cycle {} (a={}, b={})", self.kind, self.cycle, self.a, self.b)
    }
}

/// A parsed audit export.
#[derive(Clone, Debug, Default)]
pub struct ParsedAudit {
    pub cadence: u64,
    pub final_chain: String,
    pub rows: Vec<ParsedEpoch>,
    pub zoom: Vec<ParsedDecision>,
}

fn jnum(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn jstr<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// Parse a `VSCC_AUDIT` export. Errors on inputs that do not carry the
/// audit schema marker.
pub fn parse_export(json: &str) -> Result<ParsedAudit, String> {
    if !json.contains("\"schema\": \"vscc-audit-v1\"") {
        return Err("not a vscc-audit-v1 export".to_string());
    }
    let mut parsed = ParsedAudit::default();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(chain) = jstr(line, "chain") {
            let (Some(epoch), Some(decisions)) = (jnum(line, "epoch"), jnum(line, "decisions"))
            else {
                return Err(format!("malformed epoch row: {line}"));
            };
            parsed.rows.push(ParsedEpoch { epoch, chain: chain.to_string(), decisions });
        } else if let Some(kind) = jstr(line, "kind") {
            let (Some(cycle), Some(a), Some(b)) =
                (jnum(line, "cycle"), jnum(line, "a"), jnum(line, "b"))
            else {
                return Err(format!("malformed zoom decision: {line}"));
            };
            parsed.zoom.push(ParsedDecision { kind: kind.to_string(), cycle, a, b });
        } else if let Some(c) = jnum(line, "cadence") {
            parsed.cadence = c;
        } else if let Some(f) = jstr(line, "final") {
            parsed.final_chain = f.to_string();
        }
    }
    Ok(parsed)
}

/// Where two audit exports first diverge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// First epoch whose chain hash (or presence) differs. `a`/`b` are
    /// the sides' chains at that epoch, `None` when the side has no
    /// such epoch.
    Epoch { epoch: u64, a: Option<String>, b: Option<String> },
    /// First zoomed raw decision that differs (only reported when both
    /// exports carry a zoom window). `index` counts from the start of
    /// the ring; `None` when that side's ring ended early.
    Decision { index: usize, a: Option<ParsedDecision>, b: Option<ParsedDecision> },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Epoch { epoch, a, b } => {
                let show = |c: &Option<String>| c.clone().unwrap_or_else(|| "absent".to_string());
                write!(f, "first divergent epoch {epoch}: chain {} vs {}", show(a), show(b))
            }
            Divergence::Decision { index, a, b } => {
                let show = |d: &Option<ParsedDecision>| match d {
                    Some(d) => d.to_string(),
                    None => "stream ended".to_string(),
                };
                write!(f, "first divergent decision #{index}: {} vs {}", show(a), show(b))
            }
        }
    }
}

/// Compare two parsed exports and return the first divergence, if any.
///
/// When both sides carry zoomed raw decisions the comparison happens at
/// decision granularity; otherwise at epoch-chain granularity.
pub fn diff(a: &ParsedAudit, b: &ParsedAudit) -> Result<Option<Divergence>, String> {
    if a.cadence != b.cadence {
        return Err(format!("exports are not comparable: cadence {} vs {}", a.cadence, b.cadence));
    }
    if !a.zoom.is_empty() && !b.zoom.is_empty() {
        for i in 0..a.zoom.len().max(b.zoom.len()) {
            let (da, db) = (a.zoom.get(i), b.zoom.get(i));
            if da != db {
                return Ok(Some(Divergence::Decision { index: i, a: da.cloned(), b: db.cloned() }));
            }
        }
    }
    // Walk both row lists in epoch order (rows are emitted in epoch
    // order; absent epochs folded nothing on that side).
    let (mut ia, mut ib) = (0usize, 0usize);
    loop {
        match (a.rows.get(ia), b.rows.get(ib)) {
            (None, None) => break,
            (Some(ra), Some(rb)) if ra.epoch == rb.epoch => {
                if ra.chain != rb.chain {
                    return Ok(Some(Divergence::Epoch {
                        epoch: ra.epoch,
                        a: Some(ra.chain.clone()),
                        b: Some(rb.chain.clone()),
                    }));
                }
                ia += 1;
                ib += 1;
            }
            (Some(ra), rb) if rb.is_none_or(|rb| ra.epoch < rb.epoch) => {
                return Ok(Some(Divergence::Epoch {
                    epoch: ra.epoch,
                    a: Some(ra.chain.clone()),
                    b: None,
                }));
            }
            (_, Some(rb)) => {
                return Ok(Some(Divergence::Epoch {
                    epoch: rb.epoch,
                    a: None,
                    b: Some(rb.chain.clone()),
                }));
            }
            (Some(_), None) => unreachable!("covered by the epoch-order arm"),
        }
    }
    if a.final_chain != b.final_chain {
        return Err(format!(
            "epoch rows agree but final chains differ ({} vs {}): truncated export?",
            a.final_chain, b.final_chain
        ));
    }
    Ok(None)
}

/// Convenience: parse two export strings and diff them.
pub fn diff_exports(a: &str, b: &str) -> Result<Option<Divergence>, String> {
    diff(&parse_export(a)?, &parse_export(b)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<F: FnOnce()>(cadence: u64, zoom: Option<u64>, f: F) -> Audit {
        let audit = match zoom {
            Some(e) => Audit::with_zoom(cadence, e),
            None => Audit::new(cadence),
        };
        let guard = audit.install();
        f();
        drop(guard);
        audit
    }

    #[test]
    fn identical_sequences_identical_exports() {
        let seq = |_: ()| {
            record_at(10, DecisionKind::Spawn, 1, 7);
            record_at(20, DecisionKind::Poll, 1, 0);
            record_at(30_000, DecisionKind::TimerFire, 30_000, 4);
            record(DecisionKind::RngDraw, 0xdead_beef, 0);
        };
        let a = run(25_000, None, || seq(()));
        let b = run(25_000, None, || seq(()));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(diff_exports(&a.to_json(), &b.to_json()), Ok(None));
    }

    #[test]
    fn reordered_decisions_flip_the_epoch_digest() {
        let a = run(25_000, None, || {
            record_at(10, DecisionKind::TimerFire, 10, 0);
            record_at(10, DecisionKind::TimerFire, 10, 1);
        });
        let b = run(25_000, None, || {
            record_at(10, DecisionKind::TimerFire, 10, 1);
            record_at(10, DecisionKind::TimerFire, 10, 0);
        });
        assert_ne!(a.chain(), b.chain());
        let d = diff_exports(&a.to_json(), &b.to_json()).unwrap();
        assert!(matches!(d, Some(Divergence::Epoch { epoch: 0, .. })), "{d:?}");
    }

    #[test]
    fn epochs_roll_and_chain_continues() {
        let audit = run(100, None, || {
            record_at(10, DecisionKind::Poll, 1, 0);
            record_at(110, DecisionKind::Poll, 2, 0);
            record_at(450, DecisionKind::Poll, 3, 0);
        });
        let rows = audit.epochs();
        let epochs: Vec<u64> = rows.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 4]);
        assert_eq!(rows[2].chain, audit.chain());
        assert!(rows.iter().all(|r| r.decisions == 1));
        assert_eq!(rows[1].start, 100);
    }

    #[test]
    fn zoom_ring_is_bounded_and_counts_drops() {
        let audit = Audit::with_zoom(1_000, 0);
        audit.set_zoom_ring_cap(4);
        let guard = audit.install();
        for i in 0..10u64 {
            record_at(i, DecisionKind::Wake, i, 0);
        }
        drop(guard);
        let ring = audit.zoomed();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring[0].a, 6, "ring keeps the last N decisions");
        assert!(audit.to_json().contains("\"zoom_dropped\": 6"));
    }

    #[test]
    fn zoomed_dumps_pinpoint_first_divergent_decision() {
        let mk = |third: u64| {
            run(1_000, Some(0), || {
                record_at(1, DecisionKind::Poll, 1, 0);
                record_at(2, DecisionKind::Wake, 2, 0);
                record_at(3, DecisionKind::RngDraw, third, 0);
                record_at(4, DecisionKind::Poll, 2, 0);
            })
        };
        let (a, b) = (mk(5), mk(6));
        let d = diff_exports(&a.to_json(), &b.to_json()).unwrap().unwrap();
        match d {
            Divergence::Decision { index, a, b } => {
                assert_eq!(index, 2);
                assert_eq!(a.unwrap().a, 5);
                assert_eq!(b.unwrap().a, 6);
            }
            other => panic!("expected decision divergence, got {other:?}"),
        }
    }

    #[test]
    fn payload_byte_flip_changes_digest() {
        let mut bytes = vec![0x5A; 256];
        let a = run(25_000, None, || record_payload(50, &bytes));
        bytes[200] ^= 0x01;
        let b = run(25_000, None, || record_payload(50, &bytes));
        assert_ne!(a.chain(), b.chain());
    }

    #[test]
    fn nothing_recorded_without_install() {
        let audit = Audit::new(25_000);
        record_at(10, DecisionKind::Poll, 1, 0);
        assert_eq!(audit.total_decisions(), 0);
        assert!(audit.epochs().is_empty());
        assert!(!enabled());
    }

    #[test]
    fn non_audit_input_is_rejected() {
        assert!(parse_export("{\"cadence\": 25000}").is_err());
    }
}
