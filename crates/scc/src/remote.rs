//! The off-chip boundary: everything a core can do that leaves its device.
//!
//! A device's system interface (SIF, tile (3,0)) hands cross-device memory
//! traffic to whatever fabric is plugged in — the PCIe/host layer in the
//! full system, or a test double. The fabric also carries accesses to the
//! *memory-mapped register file* that the paper adds to the host driver
//! (vDMA programming, software-cache control, §3.2/§3.3).

use std::future::Future;
use std::pin::Pin;

use des::bytes::Bytes;

use crate::geometry::{GlobalCore, MpbAddr};
use crate::LINE_BYTES;

/// Boxed single-threaded future, the async-trait workaround for the
/// simulator's `!Send` world.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// A 32 B-aligned write to the host register window, as produced by the
/// core's write-combining buffer. Fused programming of the vDMA controller
/// arrives as a single `RegisterLine`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterLine {
    /// The issuing core.
    pub src: GlobalCore,
    /// Register line index within the issuing core's register window.
    pub line: u16,
    /// The 32 bytes of the line.
    pub data: [u8; LINE_BYTES],
}

/// Transport for traffic that leaves the device.
///
/// Implementations decide the latency/acknowledge semantics that
/// distinguish the paper's communication schemes (routed round trip,
/// FPGA fast write-ack, host-cached reads, …).
///
/// Payloads travel as [`Bytes`]: a shared view that every hop (tunnel,
/// retry queue, delivery chain, software cache) can clone and slice for
/// free, copying only where bytes are actually rewritten.
pub trait RemoteFabric {
    /// Read `len` bytes at `addr` on another device, on behalf of `src`.
    fn read(&self, src: GlobalCore, addr: MpbAddr, len: usize) -> LocalBoxFuture<'_, Bytes>;

    /// Write `data` to `addr` on another device, on behalf of `src`.
    /// Resolves when the write is complete *from the issuing core's
    /// perspective* (i.e. when the fabric's ack policy says so).
    fn write(&self, src: GlobalCore, addr: MpbAddr, data: Bytes) -> LocalBoxFuture<'_, ()>;

    /// [`RemoteFabric::read`] carrying the message-provenance flow id, so
    /// an instrumenting fabric can tag the hop. Defaults to ignoring it.
    fn read_f(
        &self,
        src: GlobalCore,
        addr: MpbAddr,
        len: usize,
        _flow: Option<u64>,
    ) -> LocalBoxFuture<'_, Bytes> {
        self.read(src, addr, len)
    }

    /// [`RemoteFabric::write`] carrying the flow id; defaults to ignoring
    /// it.
    fn write_f(
        &self,
        src: GlobalCore,
        addr: MpbAddr,
        data: Bytes,
        _flow: Option<u64>,
    ) -> LocalBoxFuture<'_, ()> {
        self.write(src, addr, data)
    }

    /// Deliver one fused register-line write to the host register window.
    fn mmio_write(&self, line: RegisterLine) -> LocalBoxFuture<'_, ()>;

    /// Read a register line from the host register window.
    fn mmio_read(&self, src: GlobalCore, line: u16) -> LocalBoxFuture<'_, [u8; LINE_BYTES]>;
}

/// Pack the three logical vDMA registers (§3.3: address, count, control)
/// plus a scheme-specific argument into one 32 B register line.
pub fn pack_vdma_line(addr: u64, count: u64, control: u64, arg: u64) -> [u8; LINE_BYTES] {
    let mut out = [0u8; LINE_BYTES];
    out[0..8].copy_from_slice(&addr.to_le_bytes());
    out[8..16].copy_from_slice(&count.to_le_bytes());
    out[16..24].copy_from_slice(&control.to_le_bytes());
    out[24..32].copy_from_slice(&arg.to_le_bytes());
    out
}

/// Inverse of [`pack_vdma_line`].
pub fn unpack_vdma_line(data: &[u8; LINE_BYTES]) -> (u64, u64, u64, u64) {
    let f = |r: std::ops::Range<usize>| u64::from_le_bytes(data[r].try_into().expect("8 bytes"));
    (f(0..8), f(8..16), f(16..24), f(24..32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdma_line_roundtrip() {
        let line = pack_vdma_line(0xDEAD_BEEF, 4096, 3, 42);
        assert_eq!(unpack_vdma_line(&line), (0xDEAD_BEEF, 4096, 3, 42));
    }

    #[test]
    fn vdma_line_distinct_fields() {
        let line = pack_vdma_line(1, 2, 3, 4);
        let (a, b, c, d) = unpack_vdma_line(&line);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }
}
