//! The software-controlled on-chip memory: per-core 8 KiB MPB regions.
//!
//! Bytes really live here; every write notifies watchers so that simulated
//! busy-waits ("poll this flag line") sleep until the watched region is
//! touched instead of spinning the virtual clock.

use std::cell::RefCell;
use std::rc::Rc;

use des::event::Notify;
use des::stats::Counter;

use crate::MPB_BYTES;

/// One core's 8 KiB region of its tile's LMB.
///
/// RCCE further subdivides it into a synchronization-flag area and the
/// message payload area; the region itself is flat storage.
pub struct MpbRegion {
    data: RefCell<Box<[u8]>>,
    notify: Notify,
    version: std::cell::Cell<u64>,
    /// Functional read accesses (shared with the owning device's stats).
    reads: Counter,
    /// Functional write accesses (shared with the owning device's stats).
    writes: Counter,
}

impl Default for MpbRegion {
    fn default() -> Self {
        Self::new()
    }
}

impl MpbRegion {
    /// A zeroed region with private access counters.
    pub fn new() -> Self {
        Self::with_counters(Counter::new(), Counter::new())
    }

    /// A zeroed region whose accesses increment the given (typically
    /// device-wide, shared) counters.
    pub fn with_counters(reads: Counter, writes: Counter) -> Self {
        MpbRegion {
            data: RefCell::new(vec![0u8; MPB_BYTES].into_boxed_slice()),
            notify: Notify::new(),
            version: std::cell::Cell::new(0),
            reads,
            writes,
        }
    }

    /// Shared handle.
    pub fn shared() -> Rc<Self> {
        Rc::new(Self::new())
    }

    /// Copy `buf.len()` bytes out, starting at `offset`.
    ///
    /// This reads the *true* memory content; cache staleness is modelled a
    /// level above, in [`crate::cache::L1Model`].
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        let data = self.data.borrow();
        assert!(
            offset + buf.len() <= MPB_BYTES,
            "MPB read [{offset}, {}) out of bounds",
            offset + buf.len()
        );
        self.reads.inc();
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
    }

    /// Copy `buf` in at `offset` and wake watchers.
    pub fn write(&self, offset: usize, buf: &[u8]) {
        {
            let mut data = self.data.borrow_mut();
            assert!(
                offset + buf.len() <= MPB_BYTES,
                "MPB write [{offset}, {}) out of bounds",
                offset + buf.len()
            );
            data[offset..offset + buf.len()].copy_from_slice(buf);
        }
        self.writes.inc();
        self.version.set(self.version.get() + 1);
        self.notify.notify_all();
    }

    /// Read `len` bytes at `offset` into a pooled shared buffer.
    ///
    /// Same semantics as [`MpbRegion::read`], but the destination comes
    /// from the `des::bytes` chunk pool and the result can be forwarded
    /// across the payload path without further copies.
    pub fn read_bytes(&self, offset: usize, len: usize) -> des::bytes::Bytes {
        let data = self.data.borrow();
        assert!(offset + len <= MPB_BYTES, "MPB read [{offset}, {}) out of bounds", offset + len);
        self.reads.inc();
        let mut out = des::bytes::pooled(len);
        out.copy_from_slice(&data[offset..offset + len]);
        out.freeze()
    }

    /// Read a single byte (flag polling).
    pub fn read_byte(&self, offset: usize) -> u8 {
        self.reads.inc();
        self.data.borrow()[offset]
    }

    /// Write a single byte and wake watchers.
    pub fn write_byte(&self, offset: usize, value: u8) {
        self.data.borrow_mut()[offset] = value;
        self.writes.inc();
        self.version.set(self.version.get() + 1);
        self.notify.notify_all();
    }

    /// Monotonic write counter; lets pollers detect any intervening write.
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// Sleep until the region is written and `pred` holds. The predicate is
    /// evaluated against true memory; callers model cache effects
    /// themselves.
    pub async fn wait_until(&self, pred: impl FnMut() -> bool) {
        self.notify.wait_until(pred).await;
    }

    /// The notifier (for composite wait conditions).
    pub fn notify(&self) -> &Notify {
        &self.notify
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Sim;

    #[test]
    fn read_back_what_was_written() {
        let m = MpbRegion::new();
        m.write(100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn starts_zeroed() {
        let m = MpbRegion::new();
        let mut buf = [9u8; 16];
        m.read(0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let m = MpbRegion::new();
        m.write(MPB_BYTES - 1, &[0, 0]);
    }

    #[test]
    fn version_increments_on_write() {
        let m = MpbRegion::new();
        let v0 = m.version();
        m.write_byte(0, 1);
        m.write(10, &[2, 3]);
        assert_eq!(m.version(), v0 + 2);
    }

    #[test]
    fn wait_until_wakes_on_flag_write() {
        let sim = Sim::new();
        let m = MpbRegion::shared();
        let (m2, s2) = (m.clone(), sim.clone());
        sim.spawn_named("poller", async move {
            m2.wait_until(|| m2.read_byte(0) == 7).await;
            assert_eq!(s2.now(), 33);
        });
        let s = sim.clone();
        sim.spawn_named("setter", async move {
            s.delay(33).await;
            m.write_byte(0, 7);
        });
        sim.run().unwrap();
    }
}
