//! Calibrated cycle costs of the SCC memory system.
//!
//! All values are *core cycles at 533 MHz* per 32 B line unless noted.
//! Sources: the SCC External Architecture Specification and the published
//! MPB latency measurements the paper builds on (local MPB ~15/16 cycles
//! per line, ~4 mesh cycles per hop, on-chip remote access "~100 core
//! cycles", paper §3). The absolute values are less important than their
//! ratios — the reproduction asserts throughput *bands*, not points
//! (DESIGN.md §5).

use des::time::{CORE_FREQ, MESH_FREQ};
use des::Cycles;

use crate::geometry::TileCoord;
use crate::lines;

/// Cycle-cost parameters of one SCC device.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// L1 hit, per line.
    pub l1_hit: Cycles,
    /// Read one line from the local tile's MPB (L1 miss path).
    pub mpb_local_read: Cycles,
    /// Write one line to the local tile's MPB (write-through, via WCB).
    pub mpb_local_write: Cycles,
    /// Base cost of one line to/from a *remote* tile's MPB, before hops.
    pub mpb_remote_base: Cycles,
    /// Extra mesh cycles per hop per line (converted from the 800 MHz mesh
    /// domain when charged).
    pub mesh_cycles_per_hop: Cycles,
    /// Read or write one line of private DRAM through the tile's memory
    /// controller (cache-miss cost seen by a streaming copy).
    pub dram_line: Cycles,
    /// `CL1INVMB`: invalidate all MPBT-tagged L1 lines (single instruction).
    pub cl1invmb: Cycles,
    /// Access a core configuration / test-and-set register on a tile.
    pub config_reg: Cycles,
    /// Fixed per-operation software overhead (address arithmetic, call).
    pub op_overhead: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            l1_hit: 2,
            mpb_local_read: 15,
            mpb_local_write: 16,
            mpb_remote_base: 45,
            mesh_cycles_per_hop: 4,
            dram_line: 90,
            cl1invmb: 4,
            config_reg: 40,
            op_overhead: 30,
        }
    }
}

impl CostModel {
    /// Mesh hop cost in core cycles per line for `hops` hops.
    pub fn hop_cost(&self, hops: u8) -> Cycles {
        MESH_FREQ.convert(self.mesh_cycles_per_hop * hops as Cycles, CORE_FREQ)
    }

    /// Cost of one line moved between a core on `from` and the MPB on `to`
    /// (read or write — the SCC charges these nearly symmetrically).
    pub fn mpb_line_cost(&self, from: TileCoord, to: TileCoord, write: bool) -> Cycles {
        if from == to {
            if write {
                self.mpb_local_write
            } else {
                self.mpb_local_read
            }
        } else {
            self.mpb_remote_base + self.hop_cost(from.hops(to))
        }
    }

    /// Cost of a buffered copy of `bytes` bytes between private DRAM and an
    /// MPB region (`from` = core tile, `to` = MPB tile): the P54C streams
    /// line by line, paying DRAM plus MPB cost per line.
    pub fn copy_cost(&self, bytes: usize, from: TileCoord, to: TileCoord, write: bool) -> Cycles {
        let n = lines(bytes);
        self.op_overhead + n * (self.dram_line + self.mpb_line_cost(from, to, write))
    }

    /// Cost of an MPB-to-MPB move of `bytes` (no DRAM involved), e.g.
    /// flag-line reads or on-chip MPB-relay copies.
    pub fn mpb_only_cost(
        &self,
        bytes: usize,
        from: TileCoord,
        to: TileCoord,
        write: bool,
    ) -> Cycles {
        let n = lines(bytes);
        self.op_overhead + n * self.mpb_line_cost(from, to, write)
    }

    /// Approximate "~100 core cycles" on-chip remote access of the paper
    /// (§3): one remote line at the mesh diameter. Used as the reference
    /// against which the PCIe model sets its 120× factor.
    pub fn onchip_reference_latency(&self) -> Cycles {
        self.mpb_remote_base + self.hop_cost(crate::geometry::MESH_X + crate::geometry::MESH_Y - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TileCoord;

    #[test]
    fn local_cheaper_than_remote() {
        let m = CostModel::default();
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(3, 2);
        assert!(m.mpb_line_cost(a, a, false) < m.mpb_line_cost(a, b, false));
    }

    #[test]
    fn hop_cost_monotone_in_distance() {
        let m = CostModel::default();
        let origin = TileCoord::new(0, 0);
        let mut last = 0;
        for x in 0..6u8 {
            let c = m.mpb_line_cost(origin, TileCoord::new(x, 0), false);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn reference_latency_near_100_cycles() {
        // The paper quotes ~100 core cycles for an on-chip remote access.
        let m = CostModel::default();
        let r = m.onchip_reference_latency();
        assert!((60..=140).contains(&r), "reference latency {r} outside plausible band");
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::default();
        let a = TileCoord::new(0, 0);
        let c1 = m.copy_cost(4096, a, a, true) - m.op_overhead;
        let c2 = m.copy_cost(8192, a, a, true) - m.op_overhead;
        assert_eq!(c2, 2 * c1);
    }

    #[test]
    fn zero_byte_copy_costs_only_overhead() {
        let m = CostModel::default();
        let a = TileCoord::new(0, 0);
        assert_eq!(m.copy_cost(0, a, a, true), m.op_overhead);
    }

    #[test]
    fn single_copy_bandwidth_band() {
        // A one-way streaming copy (DRAM -> local MPB) should land in the
        // 120-250 MB/s band so that ping-pong (two copies, blocking)
        // reproduces the paper's "max on-chip throughput about 150 MB/s"
        // once protocol pipelining is applied.
        let m = CostModel::default();
        let a = TileCoord::new(0, 0);
        let bytes = 1 << 20;
        let cycles = m.copy_cost(bytes, a, a, true);
        let mbps = des::time::CORE_FREQ.mbytes_per_sec(bytes as u64, cycles);
        assert!((120.0..250.0).contains(&mbps), "single-copy bandwidth {mbps} MB/s out of band");
    }
}
