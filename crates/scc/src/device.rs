//! One SCC device: 48 cores, their MPB regions, test-and-set registers,
//! memory-controller ports, and the pluggable off-chip fabric.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use des::event::Notify;
use des::link::{Bandwidth, Link};
use des::obs::Registry;
use des::rng::DetRng;
use des::stats::Counter;
use des::Sim;

use crate::costmodel::CostModel;
use crate::geometry::{CoreId, DeviceId, GlobalCore, MpbAddr, CORES_PER_DEVICE};
use crate::mpb::MpbRegion;
use crate::remote::RemoteFabric;

/// Observer of functional MPB stores issued by *cores of this device*
/// (cross-device stores are observed at the fabric instead). Installed by
/// the system layer to run protocol invariant monitors; implementations
/// must be passive — no simulated time, no writes — so that enabling a
/// monitor never perturbs the virtual clock.
pub trait MpbWriteMonitor {
    /// `writer` stored `data` at `addr` on its own device. `flow` is the
    /// provenance id of the message the store belongs to, if known.
    fn core_write(&self, writer: GlobalCore, addr: MpbAddr, data: &[u8], flow: Option<u64>);

    /// The host fabric delivered `data` to `addr` on behalf of `writer`
    /// (routed line, WCB granule, vDMA packet, forwarded flag). Defaults
    /// to unmonitored.
    fn host_write(&self, _writer: GlobalCore, _addr: MpbAddr, _data: &[u8], _flow: Option<u64>) {}

    /// A host software-cache hit served `cached` for `owner`'s MPB range
    /// at `offset` while the device actually holds `device_bytes`.
    /// Defaults to unmonitored.
    fn cache_read_check(
        &self,
        _owner: GlobalCore,
        _offset: u16,
        _cached: &[u8],
        _device_bytes: &[u8],
        _flow: Option<u64>,
    ) {
    }
}

/// Startup configuration; models the paper's observation (§4) that on a
/// multi-device installation "the situation occurs frequently that not all
/// 240 cores are available at startup".
#[derive(Debug, Clone)]
pub struct BootConfig {
    /// Probability that a core silently fails to boot.
    pub core_failure_prob: f64,
    /// Seed for the failure draw (combined with the device id).
    pub seed: u64,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig { core_failure_prob: 0.0, seed: 0 }
    }
}

/// Number of memory controllers per device.
pub const MEMORY_CONTROLLERS: usize = 4;

/// Device-wide access counters, aggregated across all 48 cores.
///
/// The MPB counters are *shared* with every [`MpbRegion`] of the device,
/// so functional accesses from any path (core, host, fabric) are counted
/// exactly once. [`SccDevice::register_metrics`] surfaces them in a
/// [`Registry`] under `scc.dN.*`.
#[derive(Clone, Default)]
pub struct DeviceStats {
    /// Functional MPB read accesses (any size), device-wide.
    pub mpb_reads: Counter,
    /// Functional MPB write accesses (any size), device-wide.
    pub mpb_writes: Counter,
    /// `CL1INVMB` instructions executed by this device's cores.
    pub cl1inv: Counter,
}

/// One SCC chip.
pub struct SccDevice {
    /// Device id (the z coordinate).
    pub id: DeviceId,
    /// The device's cycle-cost parameters.
    pub cost: CostModel,
    sim: Sim,
    mpbs: Vec<Rc<MpbRegion>>,
    tas: Vec<Cell<bool>>,
    tas_notify: Vec<Notify>,
    mc_ports: Vec<Link>,
    fabric: RefCell<Option<Rc<dyn RemoteFabric>>>,
    monitor: RefCell<Option<Rc<dyn MpbWriteMonitor>>>,
    alive: RefCell<Vec<bool>>,
    stats: DeviceStats,
}

impl SccDevice {
    /// Build a device with the default cost model.
    pub fn new(sim: &Sim, id: DeviceId) -> Rc<Self> {
        Self::with_cost(sim, id, CostModel::default())
    }

    /// Build a device with an explicit cost model.
    pub fn with_cost(sim: &Sim, id: DeviceId, cost: CostModel) -> Rc<Self> {
        let n = CORES_PER_DEVICE as usize;
        // DDR3-800 port: ~6.4 GB/s ≈ 12 B per 533 MHz core cycle. Streaming
        // latency is already inside CostModel::dram_line; the port link only
        // adds queueing when many cores stream at once.
        let mc_bw = Bandwidth::bytes_per_cycle(12);
        let stats = DeviceStats::default();
        Rc::new(SccDevice {
            id,
            cost,
            sim: sim.clone(),
            mpbs: (0..n)
                .map(|_| {
                    Rc::new(MpbRegion::with_counters(
                        stats.mpb_reads.clone(),
                        stats.mpb_writes.clone(),
                    ))
                })
                .collect(),
            tas: (0..n).map(|_| Cell::new(false)).collect(),
            tas_notify: (0..n).map(|_| Notify::new()).collect(),
            mc_ports: (0..MEMORY_CONTROLLERS).map(|_| Link::new(mc_bw, 0, 0)).collect(),
            fabric: RefCell::new(None),
            monitor: RefCell::new(None),
            alive: RefCell::new(vec![true; n]),
            stats,
        })
    }

    /// The simulation this device lives in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Device-wide access counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Surface this device's counters in `registry` under
    /// `scc.dN.{mpb.reads, mpb.writes, cl1inv}`.
    pub fn register_metrics(&self, registry: &Registry) {
        let scope = registry.scoped("scc").scoped(&format!("d{}", self.id.0));
        scope.adopt_counter("mpb.reads", &self.stats.mpb_reads);
        scope.adopt_counter("mpb.writes", &self.stats.mpb_writes);
        scope.adopt_counter("cl1inv", &self.stats.cl1inv);
    }

    /// Boot the device, silently failing cores per `cfg`; returns the cores
    /// that came up. At least one core always boots.
    pub fn boot(&self, cfg: &BootConfig) -> Vec<CoreId> {
        let mut rng = DetRng::seed_from(cfg.seed ^ (0xD5CC_0000 + self.id.0 as u64));
        let mut alive = self.alive.borrow_mut();
        for a in alive.iter_mut() {
            *a = !rng.chance(cfg.core_failure_prob);
        }
        if !alive.iter().any(|&a| a) {
            alive[0] = true;
        }
        alive.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| CoreId(i as u8)).collect()
    }

    /// Cores currently booted.
    pub fn alive_cores(&self) -> Vec<CoreId> {
        self.alive
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| CoreId(i as u8))
            .collect()
    }

    /// Whether `core` booted.
    pub fn is_alive(&self, core: CoreId) -> bool {
        self.alive.borrow()[core.0 as usize]
    }

    /// The MPB region owned by `core`.
    pub fn mpb(&self, core: CoreId) -> &Rc<MpbRegion> {
        &self.mpbs[core.0 as usize]
    }

    /// The memory-controller port serving `core`'s private DRAM.
    pub fn mc_port(&self, core: CoreId) -> &Link {
        &self.mc_ports[core.tile().memory_controller() as usize]
    }

    /// Plug in the off-chip fabric (done by the vSCC system builder).
    pub fn set_fabric(&self, fabric: Rc<dyn RemoteFabric>) {
        *self.fabric.borrow_mut() = Some(fabric);
    }

    /// The off-chip fabric, panicking with a clear message if absent.
    pub fn fabric(&self) -> Rc<dyn RemoteFabric> {
        self.fabric
            .borrow()
            .clone()
            .expect("cross-device access without a fabric: build the system via vscc::System")
    }

    /// Whether an off-chip fabric is installed.
    pub fn has_fabric(&self) -> bool {
        self.fabric.borrow().is_some()
    }

    /// Install an MPB-store observer (protocol invariant monitors).
    pub fn set_monitor(&self, monitor: Rc<dyn MpbWriteMonitor>) {
        *self.monitor.borrow_mut() = Some(monitor);
    }

    /// The installed store observer, if any.
    pub fn monitor(&self) -> Option<Rc<dyn MpbWriteMonitor>> {
        self.monitor.borrow().clone()
    }

    /// Atomically test-and-set `core`'s lock register; true if acquired.
    pub fn tas_try_acquire(&self, core: CoreId) -> bool {
        let cell = &self.tas[core.0 as usize];
        if cell.get() {
            false
        } else {
            cell.set(true);
            true
        }
    }

    /// Release `core`'s test-and-set register and wake spinners.
    pub fn tas_release(&self, core: CoreId) {
        self.tas[core.0 as usize].set(false);
        self.tas_notify[core.0 as usize].notify_all();
    }

    /// Spin (in simulated time) until the register is acquired.
    pub async fn tas_acquire(&self, core: CoreId) {
        loop {
            if self.tas_try_acquire(core) {
                return;
            }
            let notify = self.tas_notify[core.0 as usize].clone();
            notify.wait_until(|| !self.tas[core.0 as usize].get()).await;
        }
    }

    /// The `GlobalCore` handle of a local core id.
    pub fn global(&self, core: CoreId) -> GlobalCore {
        GlobalCore { device: self.id, core }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_device_all_cores_alive() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        assert_eq!(dev.alive_cores().len(), 48);
        assert!(dev.is_alive(CoreId(47)));
    }

    #[test]
    fn boot_with_failures_drops_cores_deterministically() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(1));
        let cfg = BootConfig { core_failure_prob: 0.1, seed: 99 };
        let up1 = dev.boot(&cfg);
        let up2 = dev.boot(&cfg);
        assert_eq!(up1, up2, "boot must be deterministic for a fixed seed");
        assert!(up1.len() < 48, "10% failure probability should drop some of 48 cores");
        assert!(!up1.is_empty());
    }

    #[test]
    fn boot_never_yields_zero_cores() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        let up = dev.boot(&BootConfig { core_failure_prob: 1.0, seed: 1 });
        assert_eq!(up.len(), 1);
    }

    #[test]
    fn tas_exclusion() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        assert!(dev.tas_try_acquire(CoreId(3)));
        assert!(!dev.tas_try_acquire(CoreId(3)));
        dev.tas_release(CoreId(3));
        assert!(dev.tas_try_acquire(CoreId(3)));
    }

    #[test]
    fn tas_acquire_waits_for_release() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        assert!(dev.tas_try_acquire(CoreId(0)));
        let (s, d) = (sim.clone(), dev.clone());
        sim.spawn_named("waiter", async move {
            d.tas_acquire(CoreId(0)).await;
            assert_eq!(s.now(), 77);
        });
        let (s, d) = (sim.clone(), dev.clone());
        sim.spawn_named("holder", async move {
            s.delay(77).await;
            d.tas_release(CoreId(0));
        });
        sim.run().unwrap();
    }

    #[test]
    fn mpb_regions_are_distinct() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        dev.mpb(CoreId(0)).write_byte(0, 1);
        assert_eq!(dev.mpb(CoreId(1)).read_byte(0), 0);
    }

    #[test]
    fn mpb_access_counters_aggregate_across_regions() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        dev.mpb(CoreId(0)).write_byte(0, 1);
        dev.mpb(CoreId(7)).write(64, &[1, 2, 3]);
        let mut buf = [0u8; 2];
        dev.mpb(CoreId(7)).read(64, &mut buf);
        assert_eq!(dev.stats().mpb_writes.get(), 2);
        assert_eq!(dev.stats().mpb_reads.get(), 1);
    }

    #[test]
    fn register_metrics_surfaces_device_counters() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(3));
        let reg = Registry::new();
        dev.register_metrics(&reg);
        dev.mpb(CoreId(0)).write_byte(0, 9);
        assert_eq!(reg.counter("scc.d3.mpb.writes").get(), 1);
        assert_eq!(reg.counter("scc.d3.cl1inv").get(), 0);
        assert!(reg.names().contains(&"scc.d3.mpb.reads".to_string()));
    }

    #[test]
    fn fabric_missing_panics_with_hint() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        assert!(!dev.has_fabric());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.fabric()));
        assert!(r.is_err());
    }
}
