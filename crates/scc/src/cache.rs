//! L1 cache model for MPBT-typed data, and the write-combining buffer.
//!
//! The SCC has no cache coherence: a core that cached an MPB line keeps
//! serving the *stale* copy until it executes `CL1INVMB`. This model keeps
//! real (possibly stale) line copies so that protocol code must perform the
//! same invalidations the RCCE sources perform on hardware — forgetting one
//! produces wrong data in tests, exactly like on the machine.
//!
//! Policy, per the EAS: MPBT lines are cacheable in L1 only, write-through,
//! no write-allocate; a one-line write-combining buffer (WCB) merges
//! consecutive stores to the same 32 B line.

use std::cell::RefCell;
use std::collections::HashMap;

use des::stats::Counter;

use crate::geometry::GlobalCore;
use crate::LINE_BYTES;

/// Identifies one 32 B line in the system: (owning core's region, line idx).
pub type LineKey = (GlobalCore, u16);

/// Per-core L1 model for MPBT lines.
#[derive(Default)]
pub struct L1Model {
    lines: RefCell<HashMap<LineKey, [u8; LINE_BYTES]>>,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
}

impl L1Model {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a line; `Some` returns the cached (possibly stale) copy.
    pub fn lookup(&self, key: LineKey) -> Option<[u8; LINE_BYTES]> {
        let hit = self.lines.borrow().get(&key).copied();
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Install a line after a miss fill.
    pub fn fill(&self, key: LineKey, data: [u8; LINE_BYTES]) {
        self.lines.borrow_mut().insert(key, data);
    }

    /// Write-through store: update the cached copy if (and only if) the
    /// line is already present — no write-allocate.
    pub fn write_through(&self, key: LineKey, offset_in_line: usize, bytes: &[u8]) {
        if let Some(line) = self.lines.borrow_mut().get_mut(&key) {
            line[offset_in_line..offset_in_line + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// `CL1INVMB`: drop every MPBT line.
    pub fn invalidate_all(&self) {
        self.lines.borrow_mut().clear();
        self.invalidations.inc();
    }

    /// Drop the lines covering `[offset, offset+len)` of `owner`'s region
    /// (selective invalidation used by the host software cache protocol).
    pub fn invalidate_range(&self, owner: GlobalCore, offset: u16, len: usize) {
        let first = offset / LINE_BYTES as u16;
        let last = ((offset as usize + len).div_ceil(LINE_BYTES).max(1) - 1) as u16;
        let mut lines = self.lines.borrow_mut();
        for l in first..=last {
            lines.remove(&(owner, l));
        }
    }

    /// (hits, misses, invalidations) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.invalidations.get())
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.lines.borrow().len()
    }
}

/// One-line write-combining buffer.
///
/// Counts how many *transactions* a sequence of stores costs: stores to the
/// line currently held merge for free; touching a different line flushes.
/// This is the mechanism the paper exploits to program the vDMA controller's
/// three registers with a single fused 32 B write (§3.3, Fig. 5).
#[derive(Default)]
pub struct Wcb {
    current: RefCell<Option<LineKey>>,
    transactions: Counter,
    merged: Counter,
}

impl Wcb {
    /// Empty WCB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a store to `key`; returns `true` if it merged into the
    /// pending line (no new transaction).
    pub fn store(&self, key: LineKey) -> bool {
        let mut cur = self.current.borrow_mut();
        if *cur == Some(key) {
            self.merged.inc();
            true
        } else {
            *cur = Some(key);
            self.transactions.inc();
            false
        }
    }

    /// Record a store spanning `n` consecutive lines starting at `key`;
    /// returns the number of transactions issued.
    pub fn store_span(&self, key: LineKey, n: u16) -> u64 {
        let mut tx = 0;
        for i in 0..n {
            if !self.store((key.0, key.1 + i)) {
                tx += 1;
            }
        }
        tx
    }

    /// Explicit flush (e.g. before a synchronizing flag write).
    pub fn flush(&self) {
        *self.current.borrow_mut() = None;
    }

    /// (transactions, merged stores) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.transactions.get(), self.merged.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(core: u8, line: u16) -> LineKey {
        (GlobalCore::new(0, core), line)
    }

    #[test]
    fn miss_then_hit() {
        let l1 = L1Model::new();
        assert!(l1.lookup(key(0, 1)).is_none());
        l1.fill(key(0, 1), [7; LINE_BYTES]);
        assert_eq!(l1.lookup(key(0, 1)), Some([7; LINE_BYTES]));
        let (h, m, _) = l1.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn stale_copy_served_until_invalidated() {
        let l1 = L1Model::new();
        l1.fill(key(0, 0), [1; LINE_BYTES]);
        // Memory changed underneath (another core wrote) — cache is stale.
        assert_eq!(l1.lookup(key(0, 0)), Some([1; LINE_BYTES]));
        l1.invalidate_all();
        assert!(l1.lookup(key(0, 0)).is_none());
    }

    #[test]
    fn write_through_updates_only_present_lines() {
        let l1 = L1Model::new();
        l1.write_through(key(0, 2), 0, &[9, 9]); // absent: no allocate
        assert!(l1.lookup(key(0, 2)).is_none());
        l1.fill(key(0, 2), [0; LINE_BYTES]);
        l1.write_through(key(0, 2), 4, &[5]);
        let line = l1.lookup(key(0, 2)).unwrap();
        assert_eq!(line[4], 5);
    }

    #[test]
    fn invalidate_range_is_selective() {
        let l1 = L1Model::new();
        let owner = GlobalCore::new(0, 3);
        for line in 0..4u16 {
            l1.fill((owner, line), [line as u8; LINE_BYTES]);
        }
        // Invalidate bytes [32, 96): lines 1 and 2.
        l1.invalidate_range(owner, 32, 64);
        assert!(l1.lookup((owner, 0)).is_some());
        assert!(l1.lookup((owner, 1)).is_none());
        assert!(l1.lookup((owner, 2)).is_none());
        assert!(l1.lookup((owner, 3)).is_some());
    }

    #[test]
    fn wcb_merges_same_line() {
        let w = Wcb::new();
        assert!(!w.store(key(0, 5))); // new transaction
        assert!(w.store(key(0, 5))); // merged
        assert!(w.store(key(0, 5))); // merged
        assert!(!w.store(key(0, 6))); // different line: flush + new
        assert_eq!(w.stats(), (2, 2));
    }

    #[test]
    fn wcb_flush_forces_new_transaction() {
        let w = Wcb::new();
        w.store(key(0, 1));
        w.flush();
        assert!(!w.store(key(0, 1)));
        assert_eq!(w.stats().0, 2);
    }

    #[test]
    fn wcb_span_counts_transactions() {
        let w = Wcb::new();
        assert_eq!(w.store_span(key(0, 0), 4), 4);
        // Re-storing the last line merges.
        assert_eq!(w.store_span(key(0, 3), 1), 0);
    }
}
