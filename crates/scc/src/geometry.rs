//! Chip and system geometry: tiles, cores, devices, and addresses.
//!
//! The SCC mesh is 6 columns × 4 rows of tiles, two cores per tile. Packets
//! route dimension-ordered (X then Y). vSCC adds a third coordinate: the
//! device number `z` (paper §3, Fig. 3), with the single physical off-chip
//! link attached at tile (3, 0) — the system interface (SIF).

use std::fmt;

/// Mesh columns.
pub const MESH_X: u8 = 6;
/// Mesh rows.
pub const MESH_Y: u8 = 4;
/// Tiles per device.
pub const TILES_PER_DEVICE: u8 = MESH_X * MESH_Y;
/// Cores per tile.
pub const CORES_PER_TILE: u8 = 2;
/// Cores per device (48).
pub const CORES_PER_DEVICE: u8 = TILES_PER_DEVICE * CORES_PER_TILE;
/// Tile hosting the system interface (SIF) to the PCIe FPGA.
pub const SIF_TILE: TileCoord = TileCoord { x: 3, y: 0 };

/// A tile position on the 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Column, `0..MESH_X`.
    pub x: u8,
    /// Row, `0..MESH_Y`.
    pub y: u8,
}

impl TileCoord {
    /// Construct, panicking outside the mesh.
    pub fn new(x: u8, y: u8) -> Self {
        assert!(x < MESH_X && y < MESH_Y, "tile ({x},{y}) outside {MESH_X}x{MESH_Y} mesh");
        TileCoord { x, y }
    }

    /// Tile index in row-major order.
    pub fn index(self) -> u8 {
        self.y * MESH_X + self.x
    }

    /// XY-routed hop count to `other` (|dx| + |dy|; dimension order does not
    /// change the count on a mesh).
    pub fn hops(self, other: TileCoord) -> u8 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The memory controller serving this tile. The SCC attaches four DDR3
    /// controllers at the mesh edges; each serves its quadrant.
    pub fn memory_controller(self) -> u8 {
        let east = self.x >= MESH_X / 2;
        let north = self.y >= MESH_Y / 2;
        (north as u8) << 1 | east as u8
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A core id within one device, `0..48`.
///
/// Cores `2t` and `2t+1` live on tile `t`; tiles are numbered row-major
/// from (0,0), matching the SCC's physical core-id layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Construct, panicking on out-of-range ids.
    pub fn new(id: u8) -> Self {
        assert!(id < CORES_PER_DEVICE, "core id {id} out of range");
        CoreId(id)
    }

    /// All cores of a device in id order.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..CORES_PER_DEVICE).map(CoreId)
    }

    /// The tile this core sits on.
    pub fn tile(self) -> TileCoord {
        let t = self.0 / CORES_PER_TILE;
        TileCoord { x: t % MESH_X, y: t / MESH_X }
    }

    /// 0 or 1: position within the tile.
    pub fn slot(self) -> u8 {
        self.0 % CORES_PER_TILE
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A device (chip) number; the `z` coordinate of vSCC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u8);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A physical core in the whole vSCC system: `(x, y, z)` in the paper's
/// notation, stored as (device, core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalCore {
    /// The device (z coordinate).
    pub device: DeviceId,
    /// The core within the device (encodes x, y).
    pub core: CoreId,
}

impl GlobalCore {
    /// Construct from device and core numbers.
    pub fn new(device: u8, core: u8) -> Self {
        GlobalCore { device: DeviceId(device), core: CoreId::new(core) }
    }

    /// Linear physical id across the system (`device * 48 + core`), the
    /// numbering of Fig. 3.
    pub fn linear(self) -> u32 {
        self.device.0 as u32 * CORES_PER_DEVICE as u32 + self.core.0 as u32
    }

    /// Inverse of [`GlobalCore::linear`].
    pub fn from_linear(id: u32) -> Self {
        GlobalCore {
            device: DeviceId((id / CORES_PER_DEVICE as u32) as u8),
            core: CoreId::new((id % CORES_PER_DEVICE as u32) as u8),
        }
    }

    /// The (x, y, z) triple of the paper.
    pub fn xyz(self) -> (u8, u8, u8) {
        let t = self.core.tile();
        (t.x, t.y, self.device.0)
    }
}

impl fmt::Display for GlobalCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (x, y, z) = self.xyz();
        write!(f, "d{}c{}({x},{y},{z})", self.device.0, self.core.0)
    }
}

/// An address inside a core's 8 KiB on-chip buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpbAddr {
    /// The core owning the buffer.
    pub owner: GlobalCore,
    /// Byte offset within the owner's 8 KiB region.
    pub offset: u16,
}

impl MpbAddr {
    /// Construct, panicking if the offset is outside the region.
    pub fn new(owner: GlobalCore, offset: u16) -> Self {
        assert!((offset as usize) < crate::MPB_BYTES, "MPB offset {offset} out of 8 KiB region");
        MpbAddr { owner, offset }
    }

    /// Address `delta` bytes further into the same region.
    #[allow(clippy::should_implement_trait)] // not an `Add` impl: panics on overflow past the region
    pub fn add(self, delta: u16) -> Self {
        MpbAddr::new(self.owner, self.offset + delta)
    }

    /// The 32 B line index of this address within the region.
    pub fn line(self) -> u16 {
        self.offset / crate::LINE_BYTES as u16
    }
}

impl fmt::Display for MpbAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.owner, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_core_mapping() {
        assert_eq!(CoreId(0).tile(), TileCoord { x: 0, y: 0 });
        assert_eq!(CoreId(1).tile(), TileCoord { x: 0, y: 0 });
        assert_eq!(CoreId(2).tile(), TileCoord { x: 1, y: 0 });
        assert_eq!(CoreId(12).tile(), TileCoord { x: 0, y: 1 });
        assert_eq!(CoreId(47).tile(), TileCoord { x: 5, y: 3 });
    }

    #[test]
    fn hop_counts() {
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(5, 3);
        assert_eq!(a.hops(b), 8);
        assert_eq!(b.hops(a), 8);
        assert_eq!(a.hops(a), 0);
    }

    #[test]
    fn memory_controller_quadrants() {
        assert_eq!(TileCoord::new(0, 0).memory_controller(), 0);
        assert_eq!(TileCoord::new(5, 0).memory_controller(), 1);
        assert_eq!(TileCoord::new(0, 3).memory_controller(), 2);
        assert_eq!(TileCoord::new(5, 3).memory_controller(), 3);
    }

    #[test]
    fn linear_roundtrip() {
        for id in 0..240u32 {
            assert_eq!(GlobalCore::from_linear(id).linear(), id);
        }
    }

    #[test]
    fn xyz_of_sif_neighbour() {
        // Core 6 is on tile (3,0), the SIF tile.
        let g = GlobalCore::new(2, 6);
        assert_eq!(g.xyz(), (3, 0, 2));
        assert_eq!(CoreId(6).tile(), SIF_TILE);
    }

    #[test]
    #[should_panic]
    fn mpb_addr_bounds_checked() {
        MpbAddr::new(GlobalCore::new(0, 0), 8192);
    }

    #[test]
    fn mpb_addr_line() {
        let a = MpbAddr::new(GlobalCore::new(0, 0), 64);
        assert_eq!(a.line(), 2);
        assert_eq!(a.add(31).line(), 2);
        assert_eq!(a.add(32).line(), 3);
    }
}
