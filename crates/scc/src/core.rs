//! A running P54C core: every memory operation it can issue, with cycle
//! charging and functional data movement.
//!
//! Three access classes, mirroring how RCCE uses the hardware:
//!
//! * **copy** ops stream between private DRAM and an MPB ([`CoreHandle::put`]
//!   / [`CoreHandle::get`]) — the two-way copy scheme of Fig. 2;
//! * **register** ops touch single MPB ranges without DRAM
//!   ([`CoreHandle::mpb_read`] / [`CoreHandle::mpb_write`]);
//! * **flag** ops poll/toggle one synchronization byte, always invalidating
//!   L1 first exactly like the RCCE sources do.
//!
//! Reads go through the non-coherent L1 model: a line cached earlier is
//! served *stale* until [`CoreHandle::cl1invmb`] — protocols that forget the
//! invalidate observe wrong data, as on the real chip.
//!
//! Accesses to another *device* are delegated to the installed
//! [`crate::remote::RemoteFabric`]; accesses within the device are charged by the mesh cost
//! model directly.

use std::rc::Rc;

use des::bytes::{pooled, pooled_copy};
use des::{Cycles, Sim};

use crate::cache::{L1Model, Wcb};
use crate::device::SccDevice;
use crate::geometry::{GlobalCore, MpbAddr};
use crate::remote::RegisterLine;
use crate::{lines, LINE_BYTES, MPB_BYTES};

/// A handle through which simulated software drives one core.
pub struct CoreHandle {
    sim: Sim,
    device: Rc<SccDevice>,
    /// This core's identity.
    pub who: GlobalCore,
    l1: L1Model,
    wcb: Wcb,
}

impl CoreHandle {
    /// Create a handle for `core` on `device`.
    pub fn new(device: &Rc<SccDevice>, core: crate::geometry::CoreId) -> Self {
        CoreHandle {
            sim: device.sim().clone(),
            device: device.clone(),
            who: device.global(core),
            l1: L1Model::new(),
            wcb: Wcb::new(),
        }
    }

    /// The simulation clock.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The device this core sits on.
    pub fn device(&self) -> &Rc<SccDevice> {
        &self.device
    }

    /// The L1 model (inspection in tests).
    pub fn l1(&self) -> &L1Model {
        &self.l1
    }

    fn is_local_device(&self, addr: MpbAddr) -> bool {
        addr.owner.device == self.who.device
    }

    /// Charge `cycles` of core time.
    pub async fn work(&self, cycles: Cycles) {
        self.sim.delay(cycles).await;
    }

    /// Charge compute worth `flops` floating-point operations (the P54C
    /// retires ~1 FLOP per cycle at best; the paper's 533 MFLOP/s peak).
    pub async fn compute(&self, flops: u64) {
        self.sim.delay(flops).await;
    }

    // ------------------------------------------------------------------
    // Copy operations (private DRAM <-> MPB)
    // ------------------------------------------------------------------

    /// Stream `data` from private DRAM into the MPB at `addr` (the *put*
    /// of the gory API). Cross-device targets go through the fabric.
    pub async fn put(&self, addr: MpbAddr, data: &[u8]) {
        self.put_f(addr, data, None).await;
    }

    /// [`CoreHandle::put`] tagged with the message's flow id (provenance
    /// for the fabric and the store monitor; no timing difference).
    pub async fn put_f(&self, addr: MpbAddr, data: &[u8], flow: Option<u64>) {
        assert!(addr.offset as usize + data.len() <= MPB_BYTES, "put overruns MPB region");
        let cost = &self.device.cost;
        let n = lines(data.len());
        // Source side: stream out of private DRAM through the memory
        // controller port (queueing under contention).
        let mc_done = self.device.mc_port(self.who.core).reserve(&self.sim, data.len() as u64);
        if self.is_local_device(addr) {
            let cycles =
                cost.copy_cost(data.len(), self.who.core.tile(), addr.owner.core.tile(), true);
            let end = (self.sim.now() + cycles).max(mc_done);
            self.sim.delay_until(end).await;
            self.write_region_local(addr, data, flow);
        } else {
            // Off-chip posted stream: the DRAM reads overlap with the
            // (much slower) SIF emission; the core is released at
            // whichever side finishes later.
            let dram = cost.op_overhead + n * cost.dram_line;
            let start = self.sim.now();
            let fabric = self.device.fabric();
            // One pooled copy out of the app's buffer; every later hop
            // (tunnel, retries, delivery) shares it.
            fabric.write_f(self.who, addr, pooled_copy(data), flow).await;
            let end = (start + dram).max(mc_done).max(self.sim.now());
            self.sim.delay_until(end).await;
        }
    }

    /// Stream from the MPB at `addr` into private DRAM (the *get* of the
    /// gory API). Reads pass through L1: cached lines are served stale.
    pub async fn get(&self, addr: MpbAddr, buf: &mut [u8]) {
        self.get_f(addr, buf, None).await;
    }

    /// [`CoreHandle::get`] tagged with the message's flow id.
    pub async fn get_f(&self, addr: MpbAddr, buf: &mut [u8], flow: Option<u64>) {
        assert!(addr.offset as usize + buf.len() <= MPB_BYTES, "get overruns MPB region");
        let n = lines(buf.len());
        let dram = n * self.device.cost.dram_line;
        let mc_done = self.device.mc_port(self.who.core).reserve(&self.sim, buf.len() as u64);
        let read_cycles = self.read_through_l1(addr, buf, flow).await;
        let end = (self.sim.now() + read_cycles + dram).max(mc_done);
        self.sim.delay_until(end).await;
    }

    // ------------------------------------------------------------------
    // Register-level MPB access (no DRAM traffic)
    // ------------------------------------------------------------------

    /// Read `buf.len()` bytes at `addr` into registers, through L1.
    pub async fn mpb_read(&self, addr: MpbAddr, buf: &mut [u8]) {
        let cycles = self.read_through_l1(addr, buf, None).await;
        self.sim.delay(cycles).await;
    }

    /// Write `data` at `addr` from registers (write-through, no allocate).
    pub async fn mpb_write(&self, addr: MpbAddr, data: &[u8]) {
        let cost = &self.device.cost;
        if self.is_local_device(addr) {
            let cycles =
                cost.mpb_only_cost(data.len(), self.who.core.tile(), addr.owner.core.tile(), true);
            self.sim.delay(cycles).await;
            self.write_region_local(addr, data, None);
        } else {
            self.sim.delay(cost.op_overhead).await;
            self.device.fabric().write(self.who, addr, pooled_copy(data)).await;
        }
    }

    /// Resolve reads through the L1 model; returns the core-side cycle
    /// cost. Fills `buf` with a mix of stale cached lines and fresh fills.
    async fn read_through_l1(&self, addr: MpbAddr, buf: &mut [u8], flow: Option<u64>) -> Cycles {
        let cost = &self.device.cost;
        let len = buf.len();
        if len == 0 {
            return cost.op_overhead;
        }
        let first_line = addr.offset as usize / LINE_BYTES;
        let last_line = (addr.offset as usize + len - 1) / LINE_BYTES;
        let req_start = addr.offset as usize;
        // Copies the overlap of one 32 B line with the requested window
        // straight into `buf` — no intermediate flat assembly buffer.
        fn copy_line_window(buf: &mut [u8], req_start: usize, line: usize, data: &[u8]) {
            let line_start = line * LINE_BYTES;
            let lo = line_start.max(req_start);
            let hi = (line_start + LINE_BYTES).min(req_start + buf.len());
            buf[lo - req_start..hi - req_start]
                .copy_from_slice(&data[lo - line_start..hi - line_start]);
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        // Which lines miss (need truth)? A request spans at most the whole
        // MPB region (256 lines), so a stack bitmap replaces a heap Vec.
        let mut miss_bits = [0u64; MPB_BYTES / LINE_BYTES / 64];
        let (mut fetch_first, mut fetch_last) = (usize::MAX, 0usize);
        for line in first_line..=last_line {
            match self.l1.lookup((addr.owner, line as u16)) {
                Some(cached) => {
                    hits += 1;
                    copy_line_window(buf, req_start, line, &cached);
                }
                None => {
                    misses += 1;
                    let rel = line - first_line;
                    debug_assert!(rel < MPB_BYTES / LINE_BYTES, "read spans beyond one MPB");
                    miss_bits[rel / 64] |= 1 << (rel % 64);
                    fetch_first = fetch_first.min(line);
                    fetch_last = line;
                }
            }
        }
        if misses > 0 {
            let span = (fetch_last - fetch_first + 1) * LINE_BYTES;
            let local_buf;
            let remote_buf;
            let truth: &[u8] = if self.is_local_device(addr) {
                // Pooled scratch: recycled across reads, zero steady-state
                // allocations.
                let mut t = pooled(span);
                self.device.mpb(addr.owner.core).read(fetch_first * LINE_BYTES, &mut t);
                local_buf = t;
                &local_buf
            } else {
                remote_buf = self
                    .device
                    .fabric()
                    .read_f(
                        self.who,
                        MpbAddr::new(addr.owner, (fetch_first * LINE_BYTES) as u16),
                        span,
                        flow,
                    )
                    .await;
                &remote_buf
            };
            for line in fetch_first..=fetch_last {
                let rel = line - first_line;
                if miss_bits[rel / 64] & (1 << (rel % 64)) == 0 {
                    continue;
                }
                let off = (line - fetch_first) * LINE_BYTES;
                let mut l = [0u8; LINE_BYTES];
                l.copy_from_slice(&truth[off..off + LINE_BYTES]);
                self.l1.fill((addr.owner, line as u16), l);
                copy_line_window(buf, req_start, line, &l);
            }
        }

        let per_miss = if self.is_local_device(addr) {
            cost.mpb_line_cost(self.who.core.tile(), addr.owner.core.tile(), false)
        } else {
            // Transport was already charged by the fabric await; only the
            // core-side issue cost remains.
            cost.l1_hit
        };
        cost.op_overhead + hits * cost.l1_hit + misses * per_miss
    }

    /// Functionally store to a local-device region and keep the *own* L1
    /// write-through coherent with the store (no allocate).
    fn write_region_local(&self, addr: MpbAddr, data: &[u8], flow: Option<u64>) {
        if let Some(monitor) = self.device.monitor() {
            monitor.core_write(self.who, addr, data, flow);
        }
        self.device.mpb(addr.owner.core).write(addr.offset as usize, data);
        let mut off = addr.offset as usize;
        for chunk in data.chunks(LINE_BYTES - off % LINE_BYTES) {
            let line = (off / LINE_BYTES) as u16;
            self.l1.write_through((addr.owner, line), off % LINE_BYTES, chunk);
            off += chunk.len();
        }
    }

    // ------------------------------------------------------------------
    // Flags
    // ------------------------------------------------------------------

    /// Invalidate MPBT lines (`CL1INVMB`).
    pub async fn cl1invmb(&self) {
        self.l1.invalidate_all();
        self.device.stats().cl1inv.inc();
        self.sim.delay(self.device.cost.cl1invmb).await;
    }

    /// Write a one-byte synchronization flag at `addr`. Flushes the WCB
    /// first (a flag write must not linger in the combine buffer).
    pub async fn flag_write(&self, addr: MpbAddr, value: u8) {
        self.flag_write_f(addr, value, None).await;
    }

    /// [`CoreHandle::flag_write`] tagged with the message's flow id.
    pub async fn flag_write_f(&self, addr: MpbAddr, value: u8, flow: Option<u64>) {
        self.wcb.flush();
        let cost = &self.device.cost;
        if self.is_local_device(addr) {
            let c = cost.mpb_line_cost(self.who.core.tile(), addr.owner.core.tile(), true)
                + cost.op_overhead;
            self.sim.delay(c).await;
            if let Some(monitor) = self.device.monitor() {
                monitor.core_write(self.who, addr, &[value], flow);
            }
            self.device.mpb(addr.owner.core).write_byte(addr.offset as usize, value);
            self.l1.write_through(
                (addr.owner, addr.line()),
                addr.offset as usize % LINE_BYTES,
                &[value],
            );
        } else {
            self.sim.delay(cost.op_overhead).await;
            self.device.fabric().write_f(self.who, addr, pooled_copy(&[value]), flow).await;
        }
    }

    /// Read a flag byte freshly: invalidate its line, then read.
    pub async fn flag_read(&self, addr: MpbAddr) -> u8 {
        self.l1.invalidate_range(addr.owner, addr.offset, 1);
        let mut b = [0u8];
        let cost = self.device.cost.cl1invmb;
        self.sim.delay(cost).await;
        self.mpb_read(addr, &mut b).await;
        b[0]
    }

    /// Busy-wait (in simulated time) until the *local* flag at `addr`
    /// equals `value`. RCCE only ever polls flags in the waiting core's own
    /// MPB (paper §3.1 footnote), so remote waits are rejected.
    pub async fn flag_wait(&self, addr: MpbAddr, value: u8) {
        assert_eq!(
            addr.owner.device, self.who.device,
            "RCCE polls local flags only; cross-device flag_wait is a protocol bug"
        );
        let region = self.device.mpb(addr.owner.core).clone();
        let cost = &self.device.cost;
        let poll_cost =
            cost.cl1invmb + cost.mpb_line_cost(self.who.core.tile(), addr.owner.core.tile(), false);
        loop {
            self.l1.invalidate_range(addr.owner, addr.offset, 1);
            self.sim.delay(poll_cost).await;
            if region.read_byte(addr.offset as usize) == value {
                return;
            }
            let target = addr.offset as usize;
            region.wait_until(|| region.read_byte(target) == value).await;
        }
    }

    // ------------------------------------------------------------------
    // Test-and-set register, MMIO
    // ------------------------------------------------------------------

    /// Acquire the test-and-set register of `lock_core` on this device.
    pub async fn lock(&self, lock_core: crate::geometry::CoreId) {
        self.sim.delay(self.device.cost.config_reg).await;
        self.device.tas_acquire(lock_core).await;
    }

    /// Release a test-and-set register.
    pub async fn unlock(&self, lock_core: crate::geometry::CoreId) {
        self.sim.delay(self.device.cost.config_reg).await;
        self.device.tas_release(lock_core);
    }

    /// Program a host register line with one fused 32 B write. The on-chip
    /// WCB makes the three logical stores (address/count/control) a single
    /// transaction (§3.3, Fig. 5); cost model: one local store plus the
    /// fabric's posted-write cost.
    pub async fn mmio_write_fused(&self, line: u16, data: [u8; LINE_BYTES]) {
        self.wcb.store((self.who, line));
        self.wcb.flush();
        self.sim.delay(self.device.cost.mpb_local_write + self.device.cost.op_overhead).await;
        self.device.fabric().mmio_write(RegisterLine { src: self.who, line, data }).await;
    }

    /// Program the same registers with three *separate* stores (the naive
    /// variant the paper's fused layout avoids); used by the ablation
    /// bench. Each store is its own fabric transaction.
    pub async fn mmio_write_discrete(&self, line: u16, data: [u8; LINE_BYTES]) {
        for i in 0..3u16 {
            self.wcb.flush();
            self.sim.delay(self.device.cost.mpb_local_write + self.device.cost.op_overhead).await;
            // Each partial store travels as a full register-line update.
            self.device
                .fabric()
                .mmio_write(RegisterLine { src: self.who, line: line * 4 + i, data })
                .await;
        }
    }

    /// Read a host register line.
    pub async fn mmio_read(&self, line: u16) -> [u8; LINE_BYTES] {
        self.sim.delay(self.device.cost.op_overhead).await;
        self.device.fabric().mmio_read(self.who, line).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SccDevice;
    use crate::geometry::{CoreId, DeviceId};
    use des::Sim;

    fn setup() -> (Sim, Rc<SccDevice>) {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        (sim, dev)
    }

    #[test]
    fn put_get_roundtrip_local() {
        let (sim, dev) = setup();
        sim.clone()
            .block_on(async move {
                let c0 = CoreHandle::new(&dev, CoreId(0));
                let addr = MpbAddr::new(dev.global(CoreId(0)), 128);
                let data: Vec<u8> = (0..200u16).map(|x| x as u8).collect();
                c0.put(addr, &data).await;
                let mut back = vec![0u8; 200];
                c0.get(addr, &mut back).await;
                assert_eq!(back, data);
            })
            .unwrap();
    }

    #[test]
    fn put_charges_time() {
        let (sim, dev) = setup();
        let t = sim
            .clone()
            .block_on(async move {
                let c0 = CoreHandle::new(&dev, CoreId(0));
                let addr = MpbAddr::new(dev.global(CoreId(0)), 0);
                c0.put(addr, &[0u8; 4096]).await;
                c0.sim().now()
            })
            .unwrap();
        // 128 lines * (dram 90 + local write 16) + overhead 30 = 13598.
        assert_eq!(t, 13_598);
    }

    #[test]
    fn remote_tile_access_costs_more_than_local() {
        let (sim, dev) = setup();
        let (t_local, t_remote) = sim
            .clone()
            .block_on(async move {
                let c0 = CoreHandle::new(&dev, CoreId(0));
                let local = MpbAddr::new(dev.global(CoreId(0)), 0);
                let remote = MpbAddr::new(dev.global(CoreId(47)), 0);
                let start = c0.sim().now();
                c0.mpb_write(local, &[1u8; 1024]).await;
                let t1 = c0.sim().now() - start;
                let start = c0.sim().now();
                c0.mpb_write(remote, &[1u8; 1024]).await;
                let t2 = c0.sim().now() - start;
                (t1, t2)
            })
            .unwrap();
        assert!(t_remote > t_local, "remote {t_remote} should exceed local {t_local}");
    }

    #[test]
    fn stale_read_without_invalidate_then_fresh_after() {
        let (sim, dev) = setup();
        sim.clone()
            .block_on(async move {
                let reader = CoreHandle::new(&dev, CoreId(0));
                let writer = CoreHandle::new(&dev, CoreId(2));
                let addr = MpbAddr::new(dev.global(CoreId(0)), 256);
                // Reader caches the line while it holds 0xAA.
                writer.mpb_write(addr, &[0xAA; 32]).await;
                let mut buf = [0u8; 32];
                reader.mpb_read(addr, &mut buf).await;
                assert_eq!(buf, [0xAA; 32]);
                // Writer updates memory; reader's L1 still has the old line.
                writer.mpb_write(addr, &[0xBB; 32]).await;
                reader.mpb_read(addr, &mut buf).await;
                assert_eq!(buf, [0xAA; 32], "non-coherent L1 must serve stale data");
                // CL1INVMB makes the new data visible.
                reader.cl1invmb().await;
                reader.mpb_read(addr, &mut buf).await;
                assert_eq!(buf, [0xBB; 32]);
            })
            .unwrap();
    }

    #[test]
    fn own_store_updates_own_cached_line() {
        let (sim, dev) = setup();
        sim.clone()
            .block_on(async move {
                let c = CoreHandle::new(&dev, CoreId(0));
                let addr = MpbAddr::new(dev.global(CoreId(0)), 0);
                c.mpb_write(addr, &[1; 32]).await;
                let mut buf = [0u8; 32];
                c.mpb_read(addr, &mut buf).await; // caches the line
                c.mpb_write(addr, &[2; 32]).await; // write-through updates it
                c.mpb_read(addr, &mut buf).await;
                assert_eq!(buf, [2; 32]);
            })
            .unwrap();
    }

    #[test]
    fn flag_wait_sees_flag_from_other_core() {
        let (sim, dev) = setup();
        let waiter_dev = dev.clone();
        sim.spawn_named("waiter", async move {
            let c0 = CoreHandle::new(&waiter_dev, CoreId(0));
            let flag = MpbAddr::new(waiter_dev.global(CoreId(0)), 0);
            c0.flag_wait(flag, 1).await;
            assert!(c0.sim().now() >= 1000);
        });
        sim.spawn_named("setter", {
            let dev = dev.clone();
            async move {
                let c1 = CoreHandle::new(&dev, CoreId(1));
                c1.sim().delay(1000).await;
                let flag = MpbAddr::new(dev.global(CoreId(0)), 0);
                c1.flag_write(flag, 1).await;
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn flag_wait_already_set_returns_fast() {
        let (sim, dev) = setup();
        sim.clone()
            .block_on(async move {
                let c0 = CoreHandle::new(&dev, CoreId(0));
                let flag = MpbAddr::new(dev.global(CoreId(0)), 32);
                c0.flag_write(flag, 5).await;
                c0.flag_wait(flag, 5).await; // must not deadlock
            })
            .unwrap();
    }

    #[test]
    fn cross_device_without_fabric_panics() {
        let (sim, dev) = setup();
        let res = sim.clone().block_on(async move {
            let c0 = CoreHandle::new(&dev, CoreId(0));
            let remote = MpbAddr::new(GlobalCore::new(1, 0), 0);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dev.fabric();
            }));
            assert!(caught.is_err());
            let _ = (c0, remote);
        });
        res.unwrap();
    }

    #[test]
    fn lock_is_mutually_exclusive_across_handles() {
        let (sim, dev) = setup();
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..2u8 {
            let dev = dev.clone();
            let order = order.clone();
            sim.spawn_named(format!("locker{i}"), async move {
                let c = CoreHandle::new(&dev, CoreId(i));
                c.sim().delay(i as u64).await;
                c.lock(CoreId(0)).await;
                order.borrow_mut().push((i, c.sim().now()));
                c.work(500).await;
                c.unlock(CoreId(0)).await;
            });
        }
        sim.run().unwrap();
        let o = order.borrow();
        assert_eq!(o[0].0, 0);
        assert_eq!(o[1].0, 1);
        assert!(o[1].1 >= o[0].1 + 500, "second locker waited for the first");
    }

    #[test]
    fn get_partial_line_offsets() {
        let (sim, dev) = setup();
        sim.clone()
            .block_on(async move {
                let c = CoreHandle::new(&dev, CoreId(0));
                let base = dev.global(CoreId(0));
                // Write a pattern, read back at an unaligned offset/length.
                c.put(MpbAddr::new(base, 0), &(0..255u8).collect::<Vec<_>>()).await;
                let mut buf = vec![0u8; 100];
                c.get(MpbAddr::new(base, 17), &mut buf).await;
                let expect: Vec<u8> = (17..117u8).collect();
                assert_eq!(buf, expect);
            })
            .unwrap();
    }
}
