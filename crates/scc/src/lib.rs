//! Functional and timing model of the Intel Single-chip Cloud Computer.
//!
//! The SCC (Intel Labs, 2010) is a 48-core non-cache-coherent x86 research
//! processor: 24 tiles on a 6×4 2-D mesh, two P54C cores per tile, a 16 KiB
//! software-controlled on-chip memory per tile (the *local memory buffer*,
//! LMB — 8 KiB per core, holding the *message passing buffer* MPB and the
//! *synchronization flag* region SF), four DDR3 memory controllers for
//! private DRAM, a new `MPBT` memory type that bypasses L2, a one-line
//! write-combining buffer, the `CL1INVMB` instruction that invalidates all
//! MPBT-tagged L1 lines in one shot, and one test-and-set register per core.
//!
//! This crate models all of the above *functionally* (bytes really move,
//! stale cache reads really happen until invalidated) and *temporally*
//! (every access is charged a calibrated cycle cost; memory-controller and
//! off-chip ports are contended FIFO resources). Cross-device traffic is
//! delegated through the [`remote::RemoteFabric`] trait, implemented by the
//! PCIe/host layers.

pub mod cache;
pub mod core;
pub mod costmodel;
pub mod device;
pub mod geometry;
pub mod mpb;
pub mod remote;

pub use crate::core::CoreHandle;
pub use costmodel::CostModel;
pub use device::{BootConfig, SccDevice};
pub use geometry::{CoreId, DeviceId, GlobalCore, MpbAddr, TileCoord, CORES_PER_DEVICE};
pub use remote::RemoteFabric;

/// Cache-line / MPB transfer granularity in bytes (32 B on the SCC).
pub const LINE_BYTES: usize = 32;

/// Per-core on-chip buffer size: 8 KiB of the tile's 16 KiB LMB.
pub const MPB_BYTES: usize = 8192;

/// Round a byte count up to whole 32 B lines.
pub const fn lines(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(LINE_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        assert_eq!(lines(0), 0);
        assert_eq!(lines(1), 1);
        assert_eq!(lines(32), 1);
        assert_eq!(lines(33), 2);
        assert_eq!(lines(8192), 256);
    }
}
