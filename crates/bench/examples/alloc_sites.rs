//! Allocation-site profiler for the data-path scenarios: runs the
//! `engine_micro` inter-device ping-pong under a backtrace-sampling
//! global allocator and prints the top allocating call sites.
//!
//! A debugging aid for the allocations-per-message gate — when
//! `BENCH_engine.json`'s `allocs_per_msg` regresses, this shows *which*
//! code started allocating. Build without optimisation for symbols:
//!
//! ```sh
//! cargo run -p vscc-bench --example alloc_sites [scheme] [size]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use des::Sim;
use vscc::{CommScheme, VsccBuilder};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
    static SITES: RefCell<HashMap<String, u64>> = RefCell::new(HashMap::new());
}

struct SamplingAlloc;

fn record() {
    let enabled = ENABLED.try_with(Cell::get).unwrap_or(false);
    if !enabled {
        return;
    }
    // Re-entrancy guard: capturing/formatting the backtrace allocates.
    let entered = IN_HOOK.try_with(|f| !f.replace(true)).unwrap_or(false);
    if !entered {
        return;
    }
    let _ = COUNT.try_with(|c| c.set(c.get() + 1));
    let bt = std::backtrace::Backtrace::force_capture();
    let text = format!("{bt}");
    // The site key: the first few frames inside the workspace crates,
    // skipping the allocator machinery itself.
    let mut frames = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(name) = line.split_once(": ").map(|(_, n)| n) else { continue };
        if !name.contains("::") || name.starts_with("alloc_sites") {
            continue;
        }
        let ours = ["des::", "scc::", "rcce::", "vscc", "pcie::", "core::"]
            .iter()
            .any(|p| name.contains(p));
        if ours {
            frames.push(name.to_string());
            if frames.len() == 3 {
                break;
            }
        }
    }
    let key = if frames.is_empty() { "<runtime/std>".to_string() } else { frames.join(" <- ") };
    let _ = SITES.try_with(|s| *s.borrow_mut().entry(key).or_insert(0) += 1);
    let _ = IN_HOOK.try_with(|f| f.set(false));
}

unsafe impl GlobalAlloc for SamplingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        record();
        System.alloc(l)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, l: Layout) {
        System.dealloc(ptr, l)
    }
    unsafe fn realloc(&self, ptr: *mut u8, l: Layout, n: usize) -> *mut u8 {
        record();
        System.realloc(ptr, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        record();
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: SamplingAlloc = SamplingAlloc;

/// The same 2-device ping-pong the `engine_micro` data-path scenarios
/// measure.
fn pingpong(scheme: CommScheme, size: usize, reps: usize) -> Sim {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let d = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, d]).build();
    s.run_app(move |r| async move {
        let peer = 1 - r.id();
        let msg = vec![0xA5u8; size];
        let mut buf = vec![0u8; size];
        for _ in 0..reps {
            if r.id() == 0 {
                r.send(&msg, peer).await;
                r.recv(&mut buf, peer).await;
            } else {
                r.recv(&mut buf, peer).await;
                r.send(&buf, peer).await;
            }
        }
    })
    .unwrap();
    sim
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scheme = match args.next().as_deref() {
        Some("routing") => CommScheme::SimpleRouting,
        Some("hwack") => CommScheme::RemotePutHwAck,
        Some("swcache") => CommScheme::LocalPutRemoteGet,
        Some("vdma") => CommScheme::LocalPutLocalGet,
        _ => CommScheme::RemotePutWcb,
    };
    let size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let (lo, hi) = (4usize, 36usize);

    // Warm-up run fills the chunk pool and interning tables.
    pingpong(scheme, size, lo);

    // Difference two rep counts so setup allocations cancel; what's
    // left is per-message steady state (2 one-way messages per rep).
    ENABLED.with(|f| f.set(true));
    pingpong(scheme, size, lo);
    ENABLED.with(|f| f.set(false));
    let low_count = COUNT.with(Cell::get);
    let low: HashMap<String, u64> = SITES.with(|s| s.borrow().clone());
    SITES.with(|s| s.borrow_mut().clear());
    COUNT.with(|c| c.set(0));
    ENABLED.with(|f| f.set(true));
    pingpong(scheme, size, hi);
    ENABLED.with(|f| f.set(false));
    let high_count = COUNT.with(Cell::get);
    let msgs = 2 * (hi - lo) as u64;

    let mut rows: Vec<(String, f64)> = SITES.with(|s| {
        s.borrow()
            .iter()
            .map(|(k, &n)| {
                let base = low.get(k).copied().unwrap_or(0);
                (k.clone(), n.saturating_sub(base) as f64 / msgs as f64)
            })
            .collect()
    });
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "steady-state allocations/message = {:.1}  (scheme {scheme:?}, {size} B, {} msgs)",
        (high_count - low_count) as f64 / msgs as f64,
        msgs
    );
    println!("{:>10}  site", "allocs/msg");
    for (site, per_msg) in rows.iter().filter(|(_, p)| *p >= 0.05) {
        println!("{per_msg:>10.2}  {site}");
    }
}
