//! Shared infrastructure for the figure/table regeneration harnesses.
//!
//! Every `cargo bench` target in this crate rebuilds one table or figure
//! of the paper's evaluation (§4) and prints its rows/series; the
//! `engine_micro` target additionally benchmarks the simulator itself with
//! Criterion. Absolute numbers come from the calibrated simulation (see
//! DESIGN.md §5); the *shapes* — orderings, ratios, crossovers — are the
//! reproduction targets and are recorded in EXPERIMENTS.md.

use std::sync::Mutex;

use des::obs::{Registry, TimeSeries, AUDIT_ENV, METRICS_ENV, TIMESERIES_ENV, TRACE_ENV};
use des::trace::Trace;

/// Print a figure/table banner. If a `VSCC_FAULTS` plan is active it is
/// echoed here, so exported tables are never mistaken for clean-run
/// numbers; likewise an active `VSCC_SHARDS` engine selection. An
/// *invalid* `VSCC_SHARDS` value is a diagnosed error (exit 2), never a
/// silent fallback to the serial engine.
pub fn banner(id: &str, caption: &str) {
    println!("\n================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
    if let Some(spec) = des::faultplan::spec_from_env() {
        println!("[faults] {} plan active: {spec}", des::obs::FAULTS_ENV);
    }
    match des::shard::shards_from_env() {
        Ok(Some(n)) => {
            // The resolved partition (`workers=M groups=G`, with the
            // member devices of each execution group) is echoed by the
            // first `VsccBuilder::build` of the run, which knows the
            // coupling graph; this line only announces the selection.
            println!(
                "[engine] {}={n}: multi-group sharded engine (lockstep epochs)",
                des::shard::SHARDS_ENV
            )
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("[engine] {e}");
            std::process::exit(2);
        }
    }
}

/// Format one numeric row with a label column.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<42}");
    for v in values {
        s.push_str(&format!(" {v:>9.2}"));
    }
    s
}

/// Format a header row.
pub fn header(label: &str, columns: &[String]) -> String {
    let mut s = format!("{label:<42}");
    for c in columns {
        s.push_str(&format!(" {c:>9}"));
    }
    s
}

/// Human-readable byte sizes for column headers.
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

/// Whether the headline shape assertions should run. They encode the
/// paper's clean-run results, and an injected `VSCC_FAULTS` plan
/// legitimately shifts them (or, for payload checks without
/// `recovery=on`, breaks them outright), so an active env plan
/// downgrades the assertions to printed tables — the banner already
/// flags the run as faulty.
pub fn headline_asserts() -> bool {
    des::faultplan::spec_from_env().is_none()
}

/// Whether either observability env var asks for an export. Benches use
/// this to skip the extra fully-traced run when nobody wants the output.
pub fn observability_requested() -> bool {
    let set = |var: &str| std::env::var(var).map(|v| !v.is_empty()).unwrap_or(false);
    set(TRACE_ENV) || set(METRICS_ENV) || set(TIMESERIES_ENV)
}

/// Honour the observability env vars at the end of a bench target: write
/// the Chrome trace of `traces` when `VSCC_TRACE=path` is set and the
/// metrics snapshot of `registry` when `VSCC_METRICS=path` is set (see
/// DESIGN.md §"Observability"). Prints the paths written so the user can
/// find the artifacts in the bench output.
pub fn export_observability(registry: &Registry, traces: &[(&str, &Trace)]) {
    export_observability_sampled(registry, traces, &[]);
}

/// [`export_observability`] for targets that also ran the virtual-time
/// sampler: `series` pairs are merged into the Chrome trace as Perfetto
/// counter tracks, and — when `VSCC_TIMESERIES=path` is set — the first
/// series is written there as the windowed time-series export. Targets
/// that pass no series print a hint instead of silently ignoring the
/// request.
pub fn export_observability_sampled(
    registry: &Registry,
    traces: &[(&str, &Trace)],
    series: &[(&str, &TimeSeries)],
) {
    match des::obs::export_trace_if_env_with_tracks(traces, series) {
        Ok(Some(path)) => println!("[obs] Chrome trace written to {path} ({TRACE_ENV})"),
        Ok(None) => {}
        Err(e) => eprintln!("[obs] {TRACE_ENV} export failed: {e}"),
    }
    match des::obs::export_metrics_if_env(registry) {
        Ok(Some(path)) => println!("[obs] metrics snapshot written to {path} ({METRICS_ENV})"),
        Ok(None) => {}
        Err(e) => eprintln!("[obs] {METRICS_ENV} export failed: {e}"),
    }
    let timeseries_wanted = std::env::var(TIMESERIES_ENV).map(|v| !v.is_empty()).unwrap_or(false);
    match series.first() {
        Some((name, ts)) => match des::obs::export_timeseries_if_env(ts) {
            Ok(Some(path)) => {
                println!("[obs] time-series ({name}) written to {path} ({TIMESERIES_ENV})")
            }
            Ok(None) => {}
            Err(e) => eprintln!("[obs] {TIMESERIES_ENV} export failed: {e}"),
        },
        None if timeseries_wanted => {
            println!("[obs] {TIMESERIES_ENV} set but this target runs no sampler; no export")
        }
        None => {}
    }
}

/// Whether `VSCC_AUDIT` asks for an audit-stream export. Benches use
/// this to skip the extra audited run when nobody wants the output.
pub fn audit_requested() -> bool {
    des::obs::audit_requested()
}

/// The `VSCC_AUDIT_ZOOM=<epoch>` zoom target, if set.
pub fn audit_zoom_from_env() -> Option<u64> {
    des::obs::audit_zoom_from_env()
}

/// Honour `VSCC_AUDIT` at the end of a bench target: write the audit
/// stream there and print the path (and the active zoom window, if
/// any), mirroring [`export_observability`].
pub fn export_audit(audit: &des::audit::Audit) {
    match des::obs::export_audit_if_env(audit) {
        Ok(Some(path)) => match audit_zoom_from_env() {
            Some(epoch) => {
                println!("[obs] audit stream (zoom epoch {epoch}) written to {path} ({AUDIT_ENV})")
            }
            None => println!("[obs] audit stream written to {path} ({AUDIT_ENV})"),
        },
        Ok(None) => {}
        Err(e) => eprintln!("[obs] {AUDIT_ENV} export failed: {e}"),
    }
}

/// Whether `VSCC_CRITPATH=1` asks the benches to print critical-path
/// phase-attribution tables (see `des::critpath`).
pub fn critpath_requested() -> bool {
    des::obs::critpath_requested()
}

/// Render per-run phase attribution: each row is one traced run
/// (label, trace, measured completion cycles). Attribution covers
/// `[0, cycles]`, so the printed phases sum to the measured time exactly
/// (integer cycles, no rounding).
pub fn critpath_table(label_header: &str, rows: &[(String, Trace, u64)]) -> String {
    let attributed: Vec<(String, des::critpath::Attribution)> = rows
        .iter()
        .map(|(label, trace, end)| (label.clone(), des::critpath::run_attribution(trace, 0, *end)))
        .collect();
    des::critpath::render_table(label_header, &attributed)
}

/// Run `f` over `items` on a small pool of OS threads (each simulation is
/// an independent single-threaded world, so sweeps parallelize across
/// cores); results come back in input order.
pub fn parallel_sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out = Mutex::new(out);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                out.lock().expect("sweep mutex")[i] = Some(r);
            });
        }
    });
    out.into_inner()
        .expect("sweep mutex")
        .into_iter()
        .map(|r| r.expect("every sweep item computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_sweep(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_empty() {
        let out: Vec<u64> = parallel_sweep(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(32), "32");
        assert_eq!(size_label(8192), "8K");
        assert_eq!(size_label(7680), "7680");
    }

    #[test]
    fn row_formats_all_values() {
        let r = row("x", &[1.0, 2.5]);
        assert!(r.contains("1.00") && r.contains("2.50"));
    }
}
