//! Figure 2 — timely behaviour of the basic blocking communication
//! protocols: RCCE blocking (Fig. 2a) vs iRCCE pipelined (Fig. 2b).
//!
//! Regenerates the protocol timelines by tracing one 16 KiB on-chip
//! message under both protocols, and reports the completion times; the
//! pipelined protocol must finish earlier, as the figure's caption
//! demonstrates.

use std::rc::Rc;

use des::obs::Registry;
use des::trace::Trace;
use des::Sim;
use rcce::{PipelinedProtocol, SessionBuilder};
use scc::device::SccDevice;
use scc::geometry::DeviceId;

fn run(pipelined: bool, size: usize) -> (u64, String, Trace, Registry) {
    let sim = Sim::new();
    let reg = Registry::new();
    let dev = SccDevice::new(&sim, DeviceId(0));
    dev.register_metrics(&reg);
    let mut b = SessionBuilder::new(&sim, vec![dev]).max_ranks(2).with_trace().with_metrics(&reg);
    if pipelined {
        b = b.onchip_protocol(Rc::new(PipelinedProtocol::default()));
    }
    let s = b.build();
    s.run_app(move |r| async move {
        if r.id() == 0 {
            r.send(&vec![7u8; size], 1).await;
        } else {
            let mut buf = vec![0u8; size];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("protocol run");
    (sim.now(), s.trace().render(), s.trace(), reg)
}

fn main() {
    vscc_bench::banner("Figure 2", "timely behaviour of blocking vs pipelined protocols");
    let size = 16 * 1024;
    // The two protocol runs are independent worlds: sweep them across
    // threads, bringing back only Send data (completion + rendered
    // timeline). Trace/metrics objects are Rc-based, so the observability
    // paths below re-run deterministically on this thread.
    let timed = vscc_bench::parallel_sweep(&[false, true], |&pipelined| {
        let (t, rendered, _, _) = run(pipelined, size);
        (t, rendered)
    });
    let (t_block, trace_block) = &timed[0];
    let (t_pipe, trace_pipe) = &timed[1];
    let (t_block, t_pipe) = (*t_block, *t_pipe);

    println!("\n--- (a) RCCE blocking, {size} B message, completion at {t_block} cycles ---");
    println!("{trace_block}");
    println!("--- (b) iRCCE pipelined, {size} B message, completion at {t_pipe} cycles ---");
    println!("{trace_pipe}");
    println!(
        "pipelined completes {:.1}% earlier (paper: 'indicates a previous completion of the pipelined protocol')",
        (1.0 - t_pipe as f64 / t_block as f64) * 100.0
    );
    if vscc_bench::headline_asserts() {
        assert!(t_pipe < t_block, "Fig. 2's qualitative result must hold");
    }

    if vscc_bench::critpath_requested() || vscc_bench::observability_requested() {
        let (_, _, events_block, _) = run(false, size);
        let (_, _, events_pipe, metrics_pipe) = run(true, size);
        if vscc_bench::critpath_requested() {
            println!("\ncritical-path attribution (cycles, one {size} B on-chip message):");
            let rows = vec![
                ("RCCE blocking".to_string(), events_block.clone(), t_block),
                ("iRCCE pipelined".to_string(), events_pipe.clone(), t_pipe),
            ];
            print!("{}", vscc_bench::critpath_table("protocol", &rows));
            println!(
                "  (pipelining shrinks mpb-wait: the receiver drains each slot while\n  \
                 the sender fills the other one)"
            );
        }
        vscc_bench::export_observability(
            &metrics_pipe,
            &[("blocking", &events_block), ("pipelined", &events_pipe)],
        );
    }
}
