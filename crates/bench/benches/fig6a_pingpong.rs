//! Figure 6a — Ping-Pong throughput, on-chip and inter-device.
//!
//! Series: RCCE blocking (on-chip), iRCCE pipelined with its static
//! ~4 KiB threshold (on-chip), and the best/worst host-assisted
//! inter-device schemes for scale, over message sizes 32 B … 512 KiB.
//! Paper reference points: max on-chip throughput ≈ 150 MB/s (§4.1);
//! inter-device an order of magnitude below.

use vscc::CommScheme;
use vscc_apps::pingpong;

fn main() {
    vscc_bench::banner("Figure 6a", "Ping-Pong throughput (on-chip and inter-device), MB/s");
    let sizes = pingpong::fig6_sizes();
    let reps = 3;

    let cols: Vec<String> =
        ["size", "RCCE", "iRCCE", "vDMA", "routed"].iter().map(|s| s.to_string()).collect();
    println!("{}", vscc_bench::header("series", &cols[1..]));

    struct Row {
        size: usize,
        rcce: f64,
        ircce: f64,
        vdma: f64,
        routed: f64,
    }
    let rows = vscc_bench::parallel_sweep(&sizes, |&size| Row {
        size,
        rcce: pingpong::onchip(false, size, reps).mbps,
        ircce: pingpong::onchip(true, size, reps).mbps,
        vdma: pingpong::interdevice(CommScheme::LocalPutLocalGet, size, reps).mbps,
        routed: pingpong::interdevice(CommScheme::SimpleRouting, size, reps).mbps,
    });

    let mut max_onchip: f64 = 0.0;
    for r in &rows {
        max_onchip = max_onchip.max(r.ircce).max(r.rcce);
        println!(
            "{}",
            vscc_bench::row(&format!("{:>8} B", r.size), &[r.rcce, r.ircce, r.vdma, r.routed])
        );
    }
    println!("\nmax on-chip throughput: {max_onchip:.1} MB/s (paper: 'about 150 MB/s')");
    if vscc_bench::headline_asserts() {
        assert!((110.0..200.0).contains(&max_onchip), "on-chip ceiling out of the calibrated band");
    }

    if vscc_bench::observability_requested() {
        let (_, onchip_trace, _) = pingpong::onchip_observed(true, 64 * 1024, 1);
        let (_, vdma_trace, vdma_reg) =
            pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 64 * 1024, 1);
        vscc_bench::export_observability(
            &vdma_reg,
            &[("ircce-onchip-64K", &onchip_trace), ("vdma-interdevice-64K", &vdma_trace)],
        );
    }
}
