//! Self-healing communication plane (DESIGN.md §5h) — beyond the paper.
//!
//! A storm-then-quiet ack-loss plan (`ackloss=0.8@..800000`) batters one
//! fast-ack device pair: consecutive lossy bursts demote it to the
//! host-acked fallback, the storm ends, and deterministic canary probes
//! re-promote it to the fast path. The table shows the throughput arc —
//! collapsed during the storm, limping through the fallback window,
//! restored after re-promotion — against a fault-free same-seed twin.
//!
//! Headline shapes (asserted on clean-env runs): at least one demotion
//! lands *inside* the storm, at least one probe-driven re-promotion
//! lands *after* it, and the post-recovery per-message gap is within 5%
//! of the twin's steady state.

use des::faultplan::FaultSpec;
use des::Sim;
use vscc::{CommScheme, VsccBuilder};

/// The storm: 80% injected ack loss on every posted line until cycle
/// 800 k, nothing after. Recovery on; a generous watchdog converts any
/// genuine hang into a diagnosed abort.
const STORM: &str = "seed=13,ackloss=0.8@..800000,recovery=on,watchdog=20000000";
/// End of the injection phase (keep in sync with [`STORM`]).
const STORM_END: u64 = 800_000;
/// Message size: small enough that several lossy bursts (and therefore
/// the demotion threshold) fit inside the storm window.
const SIZE: usize = 512;
/// Message count: sized so a fat tail of messages rides the re-promoted
/// fast path.
const MSGS: usize = 96;

/// One run's harvest: per-message completion times at the receiver plus
/// the health ledger.
struct RunOut {
    times: Vec<u64>,
    demotions: u64,
    promotions: u64,
    first_demote: Option<u64>,
    last_promote: Option<u64>,
    still_demoted: usize,
}

fn run(faults: Option<FaultSpec>) -> RunOut {
    let sim = Sim::new();
    // Dense canary cadence so the whole demote→probe→heal arc fits one
    // short figure run; the production default derives a sparser
    // schedule from the PCIe model (probe_interval_base).
    let rc = vscc::host::RecoveryConfig {
        enabled: true,
        probe_interval: 20_000,
        probe_backoff_max: 160_000,
        ..Default::default()
    };
    let mut b = VsccBuilder::new(&sim, 2).scheme(CommScheme::RemotePutHwAck).recovery_config(rc);
    if let Some(spec) = faults {
        b = b.faults(spec);
    }
    let v = b.build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let bb = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, bb]).build();
    // Hold the clock open past the storm plus the probe backoff so the
    // (daemon) probers can finish the healing arc even if the app's
    // traffic drains first.
    let keepalive = sim.clone();
    sim.spawn_named("post-storm-idle", async move {
        keepalive.delay(2_000_000).await;
    });
    let out = s
        .run_app(move |r| async move {
            let mut times = Vec::new();
            for i in 0..MSGS {
                let fill = (i as u8).wrapping_mul(29).wrapping_add(3);
                if r.id() == 0 {
                    r.send(&vec![fill; SIZE], 1).await;
                } else {
                    let mut buf = vec![0u8; SIZE];
                    r.recv(&mut buf, 0).await;
                    assert_eq!(buf, vec![fill; SIZE], "payload corrupt at message {i}");
                    times.push(r.now());
                }
            }
            times
        })
        .expect("recovery figure run must complete");
    let times = out.into_iter().find(|t| !t.is_empty()).expect("receiver times");
    let transitions = v.host.health.transitions();
    RunOut {
        times,
        demotions: v.host.rstats.demotions.get(),
        promotions: v.host.health.promotions.get(),
        first_demote: transitions.iter().find(|t| t.trigger == "demote").map(|t| t.time),
        last_promote: transitions.iter().rev().find(|t| t.trigger == "promote").map(|t| t.time),
        still_demoted: v.host.demoted_pairs().len(),
    }
}

/// Mean cycles per message across `times[lo..hi]`, measured from the
/// completion of the preceding message (`times[lo - 1]`, or 0).
fn mean_gap(times: &[u64], lo: usize, hi: usize) -> f64 {
    let start = if lo == 0 { 0 } else { times[lo - 1] };
    (times[hi - 1] - start) as f64 / (hi - lo) as f64
}

fn mbps(gap_cycles: f64) -> f64 {
    des::time::CORE_FREQ.mbytes_per_sec(SIZE as u64, gap_cycles.max(1.0) as u64)
}

fn main() {
    vscc_bench::banner(
        "Figure (recovery)",
        "self-healing plane: demote under an ack-loss storm, probe back to health",
    );
    // An env VSCC_FAULTS plan replaces the built-in storm (and the
    // banner + skipped asserts flag the run as custom).
    let spec = des::faultplan::spec_from_env()
        .unwrap_or_else(|| FaultSpec::parse(STORM).expect("built-in storm spec"));
    println!("plan: {spec}");
    let faulty = run(Some(spec));
    let clean = run(None);

    // Phase boundaries from the run itself: the storm window, the
    // degraded (fallback) window up to the last re-promotion, and the
    // recovered tail.
    let heal_t = faulty.last_promote.unwrap_or(u64::MAX);
    let in_storm = faulty.times.partition_point(|&t| t <= STORM_END);
    let healed_from = faulty.times.partition_point(|&t| t <= heal_t);
    println!("{}", vscc_bench::header("phase", &["msgs".into(), "cyc/msg".into(), "MB/s".into()]));
    let phase_row = |label: &str, lo: usize, hi: usize| {
        if lo < hi {
            let gap = mean_gap(&faulty.times, lo, hi);
            println!("{}", vscc_bench::row(label, &[(hi - lo) as f64, gap, mbps(gap)]));
        }
    };
    phase_row("storm (injected ack loss)", 0, in_storm);
    phase_row("degraded (host-acked fallback)", in_storm, healed_from);
    phase_row("recovered (probed back to fast path)", healed_from, faulty.times.len());
    let clean_tail = clean.times.len() - (clean.times.len() - healed_from).min(clean.times.len());
    let clean_gap = mean_gap(&clean.times, clean_tail, clean.times.len());
    println!(
        "{}",
        vscc_bench::row(
            "fault-free twin (same tail)",
            &[(clean.times.len() - clean_tail) as f64, clean_gap, mbps(clean_gap)]
        )
    );
    println!(
        "\nhealth ledger: {} demotion(s), {} re-promotion(s), {} pair(s) still demoted",
        faulty.demotions, faulty.promotions, faulty.still_demoted
    );

    if vscc_bench::headline_asserts() {
        let demote_t = faulty.first_demote.expect("the storm must demote the pair");
        assert!(
            demote_t <= STORM_END,
            "demotion at {demote_t} must land inside the storm (.. {STORM_END})"
        );
        assert!(faulty.promotions >= 1, "a canary probe must re-promote the pair");
        let promote_t = faulty.last_promote.expect("promotions counted but none logged");
        assert!(
            promote_t > STORM_END,
            "re-promotion at {promote_t} must land after the storm (.. {STORM_END})"
        );
        assert_eq!(faulty.still_demoted, 0, "no pair may stay demoted once the plan is quiet");
        let tail = faulty.times.len() - healed_from;
        assert!(tail >= 8, "recovered tail too thin ({tail} msgs) to judge throughput");
        let recovered_gap = mean_gap(&faulty.times, healed_from, faulty.times.len());
        let ratio = recovered_gap / clean_gap;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "post-recovery gap {recovered_gap:.0} vs clean {clean_gap:.0} (ratio {ratio:.3}) \
             outside the 5% band"
        );
    }

    if vscc_bench::observability_requested() {
        // Export one traced healing run so the Health-category instants
        // and the degraded-pairs counter track are visible on the
        // timeline.
        let sim = Sim::new();
        let rc = vscc::host::RecoveryConfig {
            enabled: true,
            probe_interval: 20_000,
            probe_backoff_max: 160_000,
            ..Default::default()
        };
        let v = VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::RemotePutHwAck)
            .recovery_config(rc)
            .trace_categories(&des::trace::Category::ALL)
            .faults(FaultSpec::parse(STORM).expect("built-in storm spec"))
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        let ts = v.spawn_sampler(&des::obs::SamplerSpec::every(des::obs::DEFAULT_CADENCE));
        let keepalive = sim.clone();
        sim.spawn_named("post-storm-idle", async move {
            keepalive.delay(2_000_000).await;
        });
        s.run_app(|r| async move {
            for i in 0..MSGS {
                let fill = (i as u8).wrapping_mul(29).wrapping_add(3);
                if r.id() == 0 {
                    r.send(&vec![fill; SIZE], 1).await;
                } else {
                    let mut buf = vec![0u8; SIZE];
                    r.recv(&mut buf, 0).await;
                }
            }
        })
        .expect("traced healing run");
        ts.finish(sim.now());
        vscc_bench::export_observability_sampled(
            v.metrics(),
            &[("healing", v.trace())],
            &[("healing", &ts)],
        );
    }
}
