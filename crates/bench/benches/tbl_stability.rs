//! §2.3 — instability of the FPGA fast write-acknowledge path.
//!
//! "This option has known stability issues, which prevents a tight
//! coupling of more than two SCC devices and works only for applications
//! with a moderate inter-device communication."
//!
//! The table streams a rising posted-write volume across a device pair
//! under the fast-ack scheme for 2..5 coupled devices and reports lost
//! acknowledges: stable at 2 devices, failing beyond — the reason the
//! 2012 prototype could not scale and the motivation for the
//! host-assisted schemes.
//!
//! A second table re-runs the same seeds with the host recovery layer
//! enabled: lost acks are retransmitted, persistently lossy pairs are
//! demoted to the host-acked path, and every run completes with verified
//! payloads — the "unusable at 3+ devices" cliff becomes a measurable
//! recovered-throughput curve. The legacy columns use the identical
//! seeds and code path, so they stay byte-identical.

use des::Sim;
use vscc::{host::HostConfig, CommScheme, VsccBuilder};

/// Generous per-wait watchdog for the recovered runs: an order of
/// magnitude above the worst legitimate wait (a 7680 B message plus a
/// full retry ladder), so it only trips on a genuine hang.
const WATCHDOG_CYCLES: u64 = 20_000_000;

/// Stream `volume` bytes across one pair on an `n_devices` system with
/// fast write-acks; returns (posted writes, lost acks).
fn stream(n_devices: u8, volume: usize, seed: u64) -> (u64, u64) {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, n_devices)
        .scheme(CommScheme::RemotePutHwAck)
        .host_config(HostConfig { seed, ..HostConfig::default() })
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let msg = 7680usize.min(volume);
    let msgs = volume / msg;
    s.run_app(move |r| async move {
        for _ in 0..msgs {
            if r.id() == 0 {
                r.send(&vec![3u8; msg], 1).await;
            } else {
                let mut buf = vec![0u8; msg];
                r.recv(&mut buf, 0).await;
            }
        }
    })
    .expect("stability stream");
    v.host.fastack.stats()
}

/// Outcome of one recovered stream.
struct Recovered {
    verified: bool,
    lost_acks: u64,
    retransmits: u64,
    demotions: u64,
    fallback_writes: u64,
    /// Pairs probed back to the fast path (DESIGN.md §5h).
    promotions: u64,
    /// Mean demote→re-promote span in kcycles (0 when nothing healed).
    heal_kcycles: f64,
    mbps: f64,
}

/// The same stream with the host recovery layer on: identical seeds and
/// fast-ack draw sequence, but lost acks are retransmitted and lossy
/// pairs demoted instead of poisoning the session.
fn stream_recovered(n_devices: u8, volume: usize, seed: u64) -> Recovered {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, n_devices)
        .scheme(CommScheme::RemotePutHwAck)
        .host_config(HostConfig { seed, ..HostConfig::default() })
        .recovery(true)
        .poll_watchdog(WATCHDOG_CYCLES)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let msg = 7680usize.min(volume);
    let msgs = volume / msg;
    // Each rank reports (payloads verified, its completion time). The
    // completion times are taken in-app because watchdog timers can keep
    // the virtual clock ticking after the last rank finishes.
    let out = s
        .run_app(move |r| async move {
            let mut ok = true;
            for _ in 0..msgs {
                if r.id() == 0 {
                    r.send(&vec![3u8; msg], 1).await;
                } else {
                    let mut buf = vec![0u8; msg];
                    r.recv(&mut buf, 0).await;
                    ok &= buf == vec![3u8; msg];
                }
            }
            (ok, r.now())
        })
        .expect("recovered stream must complete");
    let end = out.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let (_writes, lost) = v.host.fastack.stats();
    // Mean demote→re-promote span across the run's health transitions:
    // how long a demoted pair spends earning its way back (§5h).
    let transitions = v.host.health.transitions();
    let mut last_demote: std::collections::BTreeMap<(u8, u8), u64> = Default::default();
    let (mut spans, mut healed) = (0u64, 0u64);
    for t in &transitions {
        match t.trigger {
            "demote" => {
                last_demote.insert(t.pair, t.time);
            }
            "promote" => {
                if let Some(d) = last_demote.remove(&t.pair) {
                    spans += t.time - d;
                    healed += 1;
                }
            }
            _ => {}
        }
    }
    Recovered {
        verified: out.iter().all(|&(ok, _)| ok),
        lost_acks: lost,
        retransmits: v.host.rstats.fastack_retransmits.get(),
        demotions: v.host.rstats.demotions.get(),
        fallback_writes: v.host.rstats.fallback_writes.get(),
        promotions: v.host.health.promotions.get(),
        heal_kcycles: if healed > 0 { spans as f64 / healed as f64 / 1000.0 } else { 0.0 },
        mbps: des::time::CORE_FREQ.mbytes_per_sec(volume as u64, end.max(1)),
    }
}

fn main() {
    vscc_bench::banner(
        "Table (stability)",
        "fast write-ack: lost acknowledges vs device count and traffic volume",
    );
    let volumes = [1usize << 20, 4 << 20, 16 << 20];
    println!(
        "{}",
        vscc_bench::header(
            "devices",
            &volumes.iter().map(|v| format!("{}MB", v >> 20)).collect::<Vec<_>>()
        )
    );

    // All (device count, volume) cells are independent worlds: sweep the
    // whole grid across threads, then fold the results back into rows.
    let grid: Vec<(u8, usize, u64)> = (2u8..=5)
        .flat_map(|n| volumes.iter().enumerate().map(move |(i, &vol)| (n, vol, 40 + i as u64)))
        .collect();
    let losses = vscc_bench::parallel_sweep(&grid, |&(n, vol, seed)| stream(n, vol, seed).1);
    let mut failures_at = [0u64; 6];
    for (chunk, n) in losses.chunks(volumes.len()).zip(2u8..=5) {
        let row: Vec<f64> = chunk.iter().map(|&lost| lost as f64).collect();
        failures_at[n as usize] += chunk.iter().sum::<u64>();
        println!("{}", vscc_bench::row(&format!("{n}"), &row));
    }
    println!("\n(each lost ack destabilizes the session; the paper's prototype could not recover)");
    // Show what the prototype reports for one failing configuration: the
    // StabilityError now carries the virtual-clock time and flow id of
    // each lost ack.
    {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 5)
            .scheme(CommScheme::RemotePutHwAck)
            .host_config(HostConfig { seed: 42, ..HostConfig::default() })
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(|r| async move {
            for _ in 0..2048 {
                if r.id() == 0 {
                    r.send(&vec![3u8; 7680], 1).await;
                } else {
                    let mut buf = vec![0u8; 7680];
                    r.recv(&mut buf, 0).await;
                }
            }
        })
        .expect("diagnosis stream");
        if let Err(e) = v.host.fastack.check() {
            println!("example diagnosis at 5 devices: {e}");
        }
    }

    // The same seeds with the host recovery layer on: retransmission and
    // fallback demotion turn the cliff into a throughput curve.
    let env_plan = !vscc_bench::headline_asserts();
    println!(
        "\n{}",
        vscc_bench::header(
            "devices (with recovery)",
            &[
                "MB/s".into(),
                "lost".into(),
                "retrans".into(),
                "demoted".into(),
                "fb_writes".into(),
                "healed".into(),
                "t_heal(k)".into(),
            ]
        )
    );
    let mut recovered_any_losses = 0u64;
    let mut all_verified = true;
    // Heaviest volume only: the interesting regime is where the seed
    // model falls over. Same seed as the legacy 16MB column.
    let counts: Vec<u8> = (2u8..=5).collect();
    let recovered = vscc_bench::parallel_sweep(&counts, |&n| stream_recovered(n, volumes[2], 42));
    for (&n, r) in counts.iter().zip(&recovered) {
        all_verified &= r.verified;
        if n >= 3 {
            recovered_any_losses += r.lost_acks;
        }
        println!(
            "{}",
            vscc_bench::row(
                &format!("{n}{}", if r.verified { "" } else { " (CORRUPT)" }),
                &[
                    r.mbps,
                    r.lost_acks as f64,
                    r.retransmits as f64,
                    r.demotions as f64,
                    r.fallback_writes as f64,
                    r.promotions as f64,
                    r.heal_kcycles,
                ]
            )
        );
    }
    println!("(same seeds as above; every run completes with verified payloads)");

    if !env_plan {
        assert_eq!(failures_at[2], 0, "2-device coupling must be stable");
        assert!(
            failures_at[3] + failures_at[4] + failures_at[5] > 0,
            ">=3 coupled devices must show instability under heavy traffic"
        );
        assert!(all_verified, "recovered runs must deliver verified payloads");
        assert!(
            recovered_any_losses > 0,
            "recovered 3+-device runs should still see base-instability losses"
        );
    }

    if vscc_bench::observability_requested() {
        // Export one traced 4-device stream so the lost-ack recovery
        // stalls are visible on the timeline.
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 4)
            .scheme(CommScheme::RemotePutHwAck)
            .host_config(HostConfig { seed: 41, ..HostConfig::default() })
            .trace_categories(&des::trace::Category::ALL)
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&vec![3u8; 7680], 1).await;
            } else {
                let mut buf = vec![0u8; 7680];
                r.recv(&mut buf, 0).await;
            }
        })
        .expect("traced stream");
        vscc_bench::export_observability(v.metrics(), &[("hwack-4dev", v.trace())]);
    }
}
