//! §2.3 — instability of the FPGA fast write-acknowledge path.
//!
//! "This option has known stability issues, which prevents a tight
//! coupling of more than two SCC devices and works only for applications
//! with a moderate inter-device communication."
//!
//! The table streams a rising posted-write volume across a device pair
//! under the fast-ack scheme for 2..5 coupled devices and reports lost
//! acknowledges: stable at 2 devices, failing beyond — the reason the
//! 2012 prototype could not scale and the motivation for the
//! host-assisted schemes.

use des::Sim;
use vscc::{host::HostConfig, CommScheme, VsccBuilder};

/// Stream `volume` bytes across one pair on an `n_devices` system with
/// fast write-acks; returns (posted writes, lost acks).
fn stream(n_devices: u8, volume: usize, seed: u64) -> (u64, u64) {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, n_devices)
        .scheme(CommScheme::RemotePutHwAck)
        .host_config(HostConfig { seed, ..HostConfig::default() })
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let msg = 7680usize.min(volume);
    let msgs = volume / msg;
    s.run_app(move |r| async move {
        for _ in 0..msgs {
            if r.id() == 0 {
                r.send(&vec![3u8; msg], 1).await;
            } else {
                let mut buf = vec![0u8; msg];
                r.recv(&mut buf, 0).await;
            }
        }
    })
    .expect("stability stream");
    v.host.fastack.stats()
}

fn main() {
    vscc_bench::banner(
        "Table (stability)",
        "fast write-ack: lost acknowledges vs device count and traffic volume",
    );
    let volumes = [1usize << 20, 4 << 20, 16 << 20];
    println!(
        "{}",
        vscc_bench::header(
            "devices",
            &volumes.iter().map(|v| format!("{}MB", v >> 20)).collect::<Vec<_>>()
        )
    );

    let mut failures_at = [0u64; 6];
    for n in 2u8..=5 {
        let mut row = Vec::new();
        for (i, &vol) in volumes.iter().enumerate() {
            let (_writes, lost) = stream(n, vol, 40 + i as u64);
            failures_at[n as usize] += lost;
            row.push(lost as f64);
        }
        println!("{}", vscc_bench::row(&format!("{n}"), &row));
    }
    println!("\n(each lost ack destabilizes the session; the paper's prototype could not recover)");
    assert_eq!(failures_at[2], 0, "2-device coupling must be stable");
    assert!(
        failures_at[3] + failures_at[4] + failures_at[5] > 0,
        ">=3 coupled devices must show instability under heavy traffic"
    );

    if vscc_bench::observability_requested() {
        // Export one traced 4-device stream so the lost-ack recovery
        // stalls are visible on the timeline.
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 4)
            .scheme(CommScheme::RemotePutHwAck)
            .host_config(HostConfig { seed: 41, ..HostConfig::default() })
            .trace_categories(&des::trace::Category::ALL)
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&vec![3u8; 7680], 1).await;
            } else {
                let mut buf = vec![0u8; 7680];
                r.recv(&mut buf, 0).await;
            }
        })
        .expect("traced stream");
        vscc_bench::export_observability(v.metrics(), &[("hwack-4dev", v.trace())]);
    }
}
