//! Criterion micro-benchmarks of the simulation engine itself: how fast
//! the reproduction executes on the host machine (not simulated time).

use criterion::{criterion_group, Criterion};
use des::Sim;
use rcce::SessionBuilder;
use scc::device::SccDevice;
use scc::geometry::DeviceId;
use vscc::{CommScheme, VsccBuilder};

fn bench_executor(c: &mut Criterion) {
    c.bench_function("des/spawn_delay_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(i % 97).await;
                });
            }
            sim.run().unwrap()
        })
    });

    c.bench_function("des/link_contention_1k_transfers", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let link = des::link::Link::new(des::link::Bandwidth::bytes_per_cycle(1), 100, 10);
            for _ in 0..1_000 {
                let (s, l) = (sim.clone(), link.clone());
                sim.spawn(async move {
                    l.transfer(&s, 256).await;
                });
            }
            sim.run().unwrap()
        })
    });
}

fn bench_onchip(c: &mut Criterion) {
    c.bench_function("rcce/onchip_pingpong_64k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let dev = SccDevice::new(&sim, DeviceId(0));
            let s = SessionBuilder::new(&sim, vec![dev]).max_ranks(2).build();
            s.run_app(|r| async move {
                if r.id() == 0 {
                    r.send(&vec![1u8; 65_536], 1).await;
                } else {
                    let mut buf = vec![0u8; 65_536];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        })
    });
}

fn bench_vscc(c: &mut Criterion) {
    c.bench_function("vscc/vdma_pingpong_64k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
            let a = v.devices[0].global(scc::geometry::CoreId(0));
            let d = v.devices[1].global(scc::geometry::CoreId(0));
            let s = v.session_builder().participants(vec![a, d]).build();
            s.run_app(|r| async move {
                if r.id() == 0 {
                    r.send(&vec![1u8; 65_536], 1).await;
                } else {
                    let mut buf = vec![0u8; 65_536];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_onchip, bench_vscc
}

fn main() {
    benches();

    if vscc_bench::observability_requested() {
        // The micro-bench runs themselves are host-time measurements; for
        // the export, trace one simulated vDMA ping-pong.
        let (_, trace, reg) =
            vscc_apps::pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 65_536, 1);
        vscc_bench::export_observability(&reg, &[("vdma-64K", &trace)]);
    }
}
