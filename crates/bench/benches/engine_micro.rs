//! Criterion micro-benchmarks of the simulation engine itself, plus the
//! wall-clock perf harness behind `BENCH_engine.json`: how fast the
//! reproduction executes on the *host* machine (not simulated time).
//!
//! Two layers:
//!
//! 1. The criterion section prints mean/min per-iteration wall time for
//!    a handful of engine-bound workloads — a quick eyeball check.
//! 2. The harness section measures engine *events/sec* for each hot
//!    path the PR optimised (executor timers, metric increments,
//!    disabled-category tracing), prints the headline before/after
//!    numbers against the recorded pre-optimisation baseline, and
//!    writes a machine-readable `target/BENCH_engine.json`. With
//!    `VSCC_PERF_GATE=1` it exits non-zero if any scenario's events/sec
//!    regressed more than 30 % against the committed repo-root
//!    `BENCH_engine.json` (the perf-trajectory baseline);
//!    `VSCC_PERF_FAST=1` shrinks sample counts for CI smoke use.
//!
//! Wall-clock here is measurement-only: nothing read from `Instant`
//! ever feeds the virtual clock (determinism invariant #1).

use criterion::{criterion_group, Criterion};
use des::Sim;
use rcce::SessionBuilder;
use scc::device::SccDevice;
use scc::geometry::DeviceId;
use vscc::{CommScheme, VsccBuilder};

/// Counting global allocator: wraps `System`, bumping a per-thread
/// counter on every `alloc`/`realloc`/`alloc_zeroed`. The harness
/// differences the counter around deterministic workloads to report
/// allocations-per-message for the data-path scenarios; per-thread
/// counting keeps criterion's own threads out of the numbers. The
/// counter is a const-initialised `thread_local` `Cell`, so bumping it
/// never allocates (no recursion into the allocator).
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAlloc;

    fn bump() {
        // try_with: TLS may be mid-teardown during thread exit.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump();
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            bump();
            System.alloc_zeroed(layout)
        }
    }

    /// Allocations performed by this thread so far.
    pub fn count() -> u64 {
        ALLOCS.try_with(|c| c.get()).unwrap_or(0)
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

fn bench_executor(c: &mut Criterion) {
    c.bench_function("des/spawn_delay_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(i % 97).await;
                });
            }
            sim.run().unwrap()
        })
    });

    c.bench_function("des/link_contention_1k_transfers", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let link = des::link::Link::new(des::link::Bandwidth::bytes_per_cycle(1), 100, 10);
            for _ in 0..1_000 {
                let (s, l) = (sim.clone(), link.clone());
                sim.spawn(async move {
                    l.transfer(&s, 256).await;
                });
            }
            sim.run().unwrap()
        })
    });
}

fn bench_onchip(c: &mut Criterion) {
    c.bench_function("rcce/onchip_pingpong_64k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let dev = SccDevice::new(&sim, DeviceId(0));
            let s = SessionBuilder::new(&sim, vec![dev]).max_ranks(2).build();
            s.run_app(|r| async move {
                if r.id() == 0 {
                    r.send(&vec![1u8; 65_536], 1).await;
                } else {
                    let mut buf = vec![0u8; 65_536];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        })
    });
}

fn bench_vscc(c: &mut Criterion) {
    c.bench_function("vscc/vdma_pingpong_64k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
            let a = v.devices[0].global(scc::geometry::CoreId(0));
            let d = v.devices[1].global(scc::geometry::CoreId(0));
            let s = v.session_builder().participants(vec![a, d]).build();
            s.run_app(|r| async move {
                if r.id() == 0 {
                    r.send(&vec![1u8; 65_536], 1).await;
                } else {
                    let mut buf = vec![0u8; 65_536];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_onchip, bench_vscc
}

mod harness {
    use std::hint::black_box;
    use std::time::Instant;

    use des::obs::Registry;
    use des::trace::{Category, Trace};
    use des::Sim;
    use vscc::{CommScheme, VsccBuilder};

    use super::counting_alloc;

    /// Wall-time of the `des/spawn_delay_10k_tasks` criterion bench
    /// before this optimisation pass (BinaryHeap timers, per-poll
    /// `Arc<TaskWaker>`, two-allocation tasks), measured on the same
    /// container that produced the committed baseline. The harness
    /// prints the current numbers against these.
    const PRE_PR_SPAWN_DELAY_MEAN_MS: f64 = 5.255;
    const PRE_PR_SPAWN_DELAY_MIN_MS: f64 = 4.224;
    /// Allocations per one-way message on the data-path scenarios
    /// before the zero-copy payload plane (Vec-per-hop tunnel, cloning
    /// swcache install, per-chunk copies), measured on the same
    /// container that produced the committed baseline.
    const PRE_PR_DATAPATH_1K_ALLOCS_PER_MSG: f64 = 101.7;
    const PRE_PR_DATAPATH_8K_ALLOCS_PER_MSG: f64 = 318.4;
    /// Regression gate: fail `VSCC_PERF_GATE=1` runs when a scenario's
    /// events/sec drops below this fraction of the committed baseline.
    const GATE_RATIO: f64 = 0.70;
    /// Allocation gate: fail when a data-path scenario allocates more
    /// than this multiple of the committed allocations-per-message.
    const ALLOC_GATE_RATIO: f64 = 1.20;
    /// Audit-overhead gate: the audited data-path run must keep at least
    /// this fraction of its audit-off twin's events/sec (i.e. the
    /// hash-chained audit stream may cost at most ~10 %). The twin is
    /// measured back-to-back in the same process, so the ratio is the
    /// audit tax itself, not host drift.
    const AUDIT_GATE_RATIO: f64 = 0.90;
    /// Scaling gate: on a host with >= 4 cores, the 4-device sharded run
    /// must reach at least this multiple of its 1-worker twin's
    /// events/sec (same plan, same windows — pure thread-level speedup).
    /// Hosts with fewer cores record the numbers but skip enforcement.
    const SCALING_GATE_RATIO: f64 = 1.80;

    struct Outcome {
        name: &'static str,
        samples: usize,
        mean_ns: f64,
        min_ns: f64,
        /// Engine events of one sample (identical across samples: the
        /// workloads are deterministic).
        events: u64,
        /// Host allocations per one-way message (data-path scenarios
        /// only). Deterministic: the workload is single-threaded and
        /// seeded, so the count is exact, not sampled.
        allocs_per_msg: Option<f64>,
    }

    impl Outcome {
        /// Events/sec at the best observed sample (least host noise).
        fn events_per_sec(&self) -> f64 {
            self.events as f64 / (self.min_ns / 1e9)
        }
    }

    /// Run `routine` `samples` times, timing each; it returns the
    /// number of engine events one sample performs.
    fn measure(name: &'static str, samples: usize, mut routine: impl FnMut() -> u64) -> Outcome {
        let mut events = routine(); // warmup, untimed
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            events = black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        let mean_ns = times.iter().sum::<f64>() / times.len() as f64;
        let min_ns = times.iter().copied().fold(f64::INFINITY, f64::min);
        Outcome { name, samples, mean_ns, min_ns, events, allocs_per_msg: None }
    }

    /// Scheduler events of a finished run: polls, timer traffic, wakes.
    fn engine_events(sim: &Sim) -> u64 {
        let st = sim.engine_stats();
        st.polls + st.timers_set + st.timers_fired + st.timers_cancelled + st.wakes
    }

    /// The headline workload: 10k tasks, each sleeping once. Exercises
    /// spawn, timer-wheel insert/fire, and the direct task-id wake path.
    fn spawn_delay_10k() -> Outcome {
        measure("executor/spawn_delay_10k_tasks", samples(15), || {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(i % 97).await;
                });
            }
            sim.run().unwrap();
            engine_events(&sim)
        })
    }

    /// Timer cancellation churn: every `race` cancels its losing arm's
    /// timer. Pre-wheel these lingered in the heap; now the run must end
    /// with zero pending timers and cancellation must stay O(1)-cheap.
    fn timer_cancel_churn() -> Outcome {
        measure("executor/timer_cancel_churn_100k", samples(10), || {
            let sim = Sim::new();
            let s = sim.clone();
            sim.spawn(async move {
                for _ in 0..100_000u32 {
                    des::sync::race(s.delay(1), s.delay(1_000_000)).await;
                }
            });
            sim.run().unwrap();
            assert_eq!(sim.pending_timers(), 0, "cancelled race losers must leave the wheel");
            engine_events(&sim)
        })
    }

    /// Pre-registered counter handle: per-increment cost must be a
    /// `Cell` update — no string hash, no registry lookup.
    fn counter_inc() -> Outcome {
        let registry = Registry::new();
        let counter = registry.scoped("bench").register_counter("inc");
        measure("metrics/counter_inc_10m", samples(10), move || {
            const N: u64 = 10_000_000;
            for _ in 0..N {
                // black_box defeats folding the whole loop into `+= N`.
                counter.add(black_box(1));
            }
            black_box(counter.get());
            N
        })
    }

    /// Pre-registered histogram handle: per-record cost is a bucket
    /// increment.
    fn histogram_record() -> Outcome {
        let registry = Registry::new();
        let hist = registry.scoped("bench").register_histogram("rec");
        measure("metrics/histogram_record_10m", samples(10), move || {
            const N: u64 = 10_000_000;
            for i in 0..N {
                hist.record(i & 0xFFFF);
            }
            N
        })
    }

    /// Disabled-category tracing: the call sites pay one branch; the
    /// actor/field closures (which would allocate) are never run. A
    /// fully disabled trace and a category-filtered one are both
    /// exercised — they share the early-out.
    fn disabled_trace() -> Outcome {
        let off = Trace::disabled();
        let filtered = Trace::with_categories(&[Category::Pcie]);
        measure("trace/disabled_category_10m", samples(10), move || {
            const N: u64 = 10_000_000;
            for i in 0..N / 2 {
                off.instant(
                    i,
                    Category::Protocol,
                    "ev",
                    || format!("actor{i}"),
                    || des::fields![n = i],
                );
                filtered.instant(
                    i,
                    Category::Protocol,
                    "ev",
                    || format!("actor{i}"),
                    || des::fields![n = i],
                );
            }
            assert!(filtered.events().is_empty());
            N
        })
    }

    /// Enabled tracing with a pre-interned actor label: recording stores
    /// an `Rc` clone, no per-event string.
    fn interned_trace() -> Outcome {
        measure("trace/enabled_interned_200k", samples(10), || {
            const N: u64 = 200_000;
            let t = Trace::with_categories(&[Category::App]);
            let actor = t.intern("rank0");
            for i in 0..N {
                t.instant(i, Category::App, "tick", || actor.clone(), Vec::new);
            }
            assert_eq!(t.events().len(), N as usize);
            N
        })
    }

    /// One inter-device ping-pong run through the full payload stack
    /// (MPB → tunnel → host delivery); returns the `Sim` for its engine
    /// counters. This is the workload the allocations-per-message
    /// numbers are differenced over.
    fn interdevice_pingpong(scheme: CommScheme, size: usize, reps: usize) -> Sim {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let d = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, d]).build();
        s.run_app(move |r| async move {
            let peer = 1 - r.id();
            let msg = vec![0xA5u8; size];
            let mut buf = vec![0u8; size];
            for _ in 0..reps {
                if r.id() == 0 {
                    r.send(&msg, peer).await;
                    r.recv(&mut buf, peer).await;
                } else {
                    r.recv(&mut buf, peer).await;
                    r.send(&buf, peer).await;
                }
            }
        })
        .unwrap();
        sim
    }

    /// Data-path scenario: wall-clock events/sec of an inter-device
    /// ping-pong plus exact allocations per one-way message.
    ///
    /// The per-message cost is isolated by *rep differencing*: two
    /// identical systems run `R_LOW` and `R_HIGH` ping-pong reps, and
    /// the allocation delta divided by the extra messages cancels all
    /// setup/teardown allocations. Both runs are deterministic, so the
    /// quotient is exact and stable across hosts.
    fn datapath(name: &'static str, scheme: CommScheme, size: usize) -> Outcome {
        const R_LOW: usize = 4;
        const R_HIGH: usize = 36;
        let low = {
            let before = counting_alloc::count();
            black_box(interdevice_pingpong(scheme, size, R_LOW));
            counting_alloc::count() - before
        };
        let high = {
            let before = counting_alloc::count();
            black_box(interdevice_pingpong(scheme, size, R_HIGH));
            counting_alloc::count() - before
        };
        // 2 one-way messages per ping-pong rep.
        let allocs_per_msg = (high - low) as f64 / (2 * (R_HIGH - R_LOW)) as f64;
        let mut o = measure(name, samples(8), || {
            let sim = interdevice_pingpong(scheme, size, R_HIGH);
            engine_events(&sim)
        });
        o.allocs_per_msg = Some(allocs_per_msg);
        o
    }

    fn datapath_1k() -> Outcome {
        datapath("datapath/interdevice_1k_wcb", CommScheme::RemotePutWcb, 1024)
    }

    fn datapath_8k() -> Outcome {
        datapath("datapath/interdevice_8k_swcache", CommScheme::LocalPutRemoteGet, 8192)
    }

    /// Audit-stream overhead pair: the vDMA data-path ping-pong bare and
    /// with the hash-chained audit stream installed (`VSCC_AUDIT`). The
    /// audited run folds every scheduler decision into the FNV chain, so
    /// its events/sec against the bare twin is exactly the per-decision
    /// audit cost. The samples are interleaved (off, on, off, on, ...)
    /// so host-frequency drift hits both sides alike and the min-based
    /// ratio stays meaningful on a busy machine.
    fn audit_pair() -> (Outcome, Outcome) {
        const REPS: usize = 36;
        let run_off = || {
            let sim = interdevice_pingpong(CommScheme::LocalPutLocalGet, 8192, REPS);
            engine_events(&sim)
        };
        let run_on = || {
            let audit = des::audit::Audit::new(des::audit::DEFAULT_EPOCH_CYCLES);
            let guard = audit.install();
            let sim = interdevice_pingpong(CommScheme::LocalPutLocalGet, 8192, REPS);
            drop(guard);
            assert!(audit.total_decisions() > 0, "the audited twin must fold decisions");
            black_box(audit.chain());
            engine_events(&sim)
        };
        let n = samples(8);
        let mut ev_off = run_off(); // warmup, untimed
        let mut ev_on = run_on();
        let (mut t_off, mut t_on) = (Vec::with_capacity(n), Vec::with_capacity(n));
        for _ in 0..n {
            let start = Instant::now();
            ev_off = black_box(run_off());
            t_off.push(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            ev_on = black_box(run_on());
            t_on.push(start.elapsed().as_nanos() as f64);
        }
        let outcome = |name, times: &[f64], events| Outcome {
            name,
            samples: n,
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            min_ns: times.iter().copied().fold(f64::INFINITY, f64::min),
            events,
            allocs_per_msg: None,
        };
        (
            outcome("audit/interdevice_8k_vdma_off", &t_off, ev_off),
            outcome("audit/interdevice_8k_vdma_audited", &t_on, ev_on),
        )
    }

    /// Device-count scaling workload (DESIGN.md §5i): one shard per SCC
    /// device, each running an on-chip RCCE ping-pong session, linked
    /// into a TLP token ring at the PCIe-derived lookahead. Returns the
    /// aggregated engine-event count — identical at any worker count
    /// (the sharded engine's byte-identity contract), so events/sec is
    /// comparable between the serial (1-worker) and sharded runs.
    fn sharded_ring(devices: usize, workers: usize) -> u64 {
        use des::shard::{ShardPlan, Tlp};
        use std::sync::Arc;

        // Dense shard-local traffic (4 concurrent on-chip ping-pong
        // pairs per device) keeps each epoch window busy, so the barrier
        // cost amortizes over real per-window work.
        const ONCHIP_RANKS: usize = 8;
        const ONCHIP_REPS: usize = 24;
        const RING_LAPS: u64 = 16;
        let lookahead = pcie::PcieModel::default().shard_lookahead();
        let mut plan: ShardPlan<()> = ShardPlan::new(lookahead);
        for d in 0..devices {
            let n = devices;
            plan.shard(&format!("dev{d}"), move |sim, ctx| {
                // Shard-local on-chip traffic: a two-rank ping-pong
                // session on this device (built here, on the worker —
                // the device id space is shard-local, so each shard's
                // lone device is id 0).
                let dev = scc::device::SccDevice::new(sim, scc::geometry::DeviceId(0));
                let sess =
                    rcce::SessionBuilder::new(sim, vec![dev]).max_ranks(ONCHIP_RANKS).build();
                let _handles = sess.spawn_ranks(|r| async move {
                    let peer = r.id() ^ 1;
                    let msg = vec![0x5Au8; 1024];
                    let mut buf = vec![0u8; 1024];
                    for _ in 0..ONCHIP_REPS {
                        if r.id() % 2 == 0 {
                            r.send(&msg, peer).await;
                            r.recv(&mut buf, peer).await;
                        } else {
                            r.recv(&mut buf, peer).await;
                            r.send(&msg, peer).await;
                        }
                    }
                });
                // Ring forwarder: conduit `d` leaves shard d, conduit
                // `(d + n - 1) % n` enters it. A token circles the ring
                // RING_LAPS times, then a poison sweep retires every
                // forwarder.
                let tx = ctx.tx(d);
                let rx = ctx.rx((d + n - 1) % n);
                let next = ((d + 1) % n) as u32;
                let token = move |kind: u32, tag: u64| Tlp {
                    kind,
                    src: d as u32,
                    dst: next,
                    tag,
                    payload: Arc::from(&[0u8; 32][..]),
                };
                sim.spawn(async move {
                    if d == 0 {
                        tx.send(token(0, RING_LAPS * n as u64));
                    }
                    loop {
                        let t = rx.recv().await;
                        match (t.kind, t.tag) {
                            (0, 0) => {
                                tx.send(token(1, n as u64 - 1));
                                break;
                            }
                            (0, ttl) => tx.send(token(0, ttl - 1)),
                            (_, 0) => break,
                            (_, k) => {
                                tx.send(token(1, k - 1));
                                break;
                            }
                        }
                    }
                });
                || ()
            });
        }
        for d in 0..devices {
            plan.conduit(&format!("ring{d}"), d, (d + 1) % devices, lookahead);
        }
        let report = plan.run(workers).expect("scaling workload completes");
        report.stats.events()
    }

    /// Fig6b-shaped scaling workload: the partition the latency-stamped
    /// MMIO boundary yields on the calibrated system — one host shard
    /// servicing doorbell TLPs plus one shard per device, each device
    /// running dense on-chip traffic interleaved with doorbell/answer
    /// round trips to the host. Every conduit runs at the MMIO crossing
    /// cost, which *is* the tunnel lookahead
    /// (`PcieModel::mmio_crossing_cycles() == shard_lookahead()`), so
    /// this is the same coupling graph `VsccBuilder::shards` partitions
    /// on a real fig6b system, driven through the true multi-worker
    /// engine. Returns the aggregated engine-event count (identical at
    /// any worker count).
    fn fig6b_sharded(devices: usize, workers: usize) -> u64 {
        use des::shard::{ShardPlan, Tlp};
        use std::sync::Arc;

        const ONCHIP_RANKS: usize = 8;
        const ONCHIP_REPS: usize = 24;
        const DOORBELLS: u64 = 16;
        // Conduit layout: 2d = doorbell (dev d -> host), 2d+1 = answer.
        const DOORBELL: u32 = 0;
        const ANSWER: u32 = 1;
        const POISON: u32 = 2;
        let lookahead = pcie::PcieModel::default().mmio_crossing_cycles();
        let line = || Arc::from(&[0u8; 32][..]);
        let mut plan: ShardPlan<()> = ShardPlan::new(lookahead);
        let n = devices;
        plan.shard("host", move |sim, ctx| {
            for d in 0..n {
                let rx = ctx.rx(2 * d);
                let tx = ctx.tx(2 * d + 1);
                sim.spawn(async move {
                    loop {
                        let t = rx.recv().await;
                        if t.kind == POISON {
                            break;
                        }
                        tx.send(Tlp {
                            kind: ANSWER,
                            src: 0,
                            dst: (1 + d) as u32,
                            tag: t.tag,
                            payload: line(),
                        });
                    }
                });
            }
            || ()
        });
        for d in 0..devices {
            plan.shard(&format!("dev{d}"), move |sim, ctx| {
                let dev = scc::device::SccDevice::new(sim, scc::geometry::DeviceId(0));
                let sess =
                    rcce::SessionBuilder::new(sim, vec![dev]).max_ranks(ONCHIP_RANKS).build();
                let _handles = sess.spawn_ranks(|r| async move {
                    let peer = r.id() ^ 1;
                    let msg = vec![0x5Au8; 1024];
                    let mut buf = vec![0u8; 1024];
                    for _ in 0..ONCHIP_REPS {
                        if r.id() % 2 == 0 {
                            r.send(&msg, peer).await;
                            r.recv(&mut buf, peer).await;
                        } else {
                            r.recv(&mut buf, peer).await;
                            r.send(&msg, peer).await;
                        }
                    }
                });
                let tx = ctx.tx(2 * d);
                let rx = ctx.rx(2 * d + 1);
                sim.spawn(async move {
                    let doorbell = move |kind: u32, tag: u64| Tlp {
                        kind,
                        src: (1 + d) as u32,
                        dst: 0,
                        tag,
                        payload: line(),
                    };
                    for i in 0..DOORBELLS {
                        tx.send(doorbell(DOORBELL, i));
                        let ans = rx.recv().await;
                        assert_eq!(ans.tag, i, "answer out of order");
                    }
                    tx.send(doorbell(POISON, 0));
                });
                || ()
            });
        }
        for d in 0..devices {
            plan.conduit(&format!("doorbell{d}"), 1 + d, 0, lookahead);
            plan.conduit(&format!("answer{d}"), 0, 1 + d, lookahead);
        }
        let report = plan.run(workers).expect("fig6b scaling workload completes");
        report.stats.events()
    }

    /// The scaling scenario table: `(name, devices, workers)`. Serial is
    /// the 1-worker run of the *same* plan (same windows, same barriers),
    /// so the sharded/serial ratio isolates thread-level speedup.
    const SCALING: &[(&str, usize, usize)] = &[
        ("scaling/ring_1dev_serial", 1, 1),
        ("scaling/ring_2dev_serial", 2, 1),
        ("scaling/ring_2dev_sharded", 2, 2),
        ("scaling/ring_4dev_serial", 4, 1),
        ("scaling/ring_4dev_sharded", 4, 4),
    ];

    /// The fig6b-shaped pair: 4 devices + host = 5 execution groups, so
    /// the sharded run uses one worker per group.
    const FIG6B_SCALING: &[(&str, usize)] =
        &[("scaling/fig6b_4dev_serial", 1), ("scaling/fig6b_4dev_sharded", 5)];

    fn scaling_outcomes() -> Vec<Outcome> {
        let mut outcomes: Vec<Outcome> = SCALING
            .iter()
            .map(|&(name, devices, workers)| {
                measure(name, samples(6), || sharded_ring(devices, workers))
            })
            .collect();
        outcomes.extend(
            FIG6B_SCALING
                .iter()
                .map(|&(name, workers)| measure(name, samples(6), || fig6b_sharded(4, workers))),
        );
        // Byte-identity spot check: the serial and sharded runs of one
        // plan must schedule exactly the same events.
        for pair in [(1usize, 2usize), (3, 4), (5, 6)] {
            assert_eq!(
                outcomes[pair.0].events, outcomes[pair.1].events,
                "sharded run diverged from its serial twin"
            );
        }
        outcomes
    }

    fn samples(full: usize) -> usize {
        if std::env::var("VSCC_PERF_FAST").map(|v| v == "1").unwrap_or(false) {
            3
        } else {
            full
        }
    }

    fn repo_root() -> std::path::PathBuf {
        // crates/bench -> workspace root.
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// True for a sharded-scaling scenario measured on a host that
    /// cannot actually run its workers in parallel. Such numbers are
    /// *not* a perf baseline — a 1-core container once shipped sub-1x
    /// "sharded" baselines that later gated honest multi-core runs —
    /// so they are excluded from the JSON artifact entirely.
    fn unshippable(o: &Outcome, cores: usize) -> bool {
        cores < 4 && o.name.starts_with("scaling/") && o.name.ends_with("_sharded")
    }

    fn write_json(outcomes: &[Outcome], cores: usize, path: &std::path::Path) {
        let shippable: Vec<&Outcome> = outcomes.iter().filter(|o| !unshippable(o, cores)).collect();
        let excluded = outcomes.len() - shippable.len();
        if excluded > 0 {
            println!(
                "  (excluding {excluded} sharded scaling scenario(s) from the JSON artifact: \
                 {cores} host core(s) cannot produce an honest parallel baseline)"
            );
        }
        let mut s = String::from("{\n  \"schema\": \"vscc-engine-bench-v4\",\n");
        s.push_str(&format!("  \"host_cores\": {cores},\n"));
        s.push_str(&format!(
            "  \"pre_pr_baseline\": {{ \"spawn_delay_10k_tasks_ms\": {{ \"mean\": {PRE_PR_SPAWN_DELAY_MEAN_MS}, \"min\": {PRE_PR_SPAWN_DELAY_MIN_MS} }}, \"datapath_allocs_per_msg\": {{ \"interdevice_1k_wcb\": {PRE_PR_DATAPATH_1K_ALLOCS_PER_MSG}, \"interdevice_8k_swcache\": {PRE_PR_DATAPATH_8K_ALLOCS_PER_MSG} }} }},\n"
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, o) in shippable.iter().enumerate() {
            let allocs = match o.allocs_per_msg {
                Some(a) => format!(", \"allocs_per_msg\": {a:.2}"),
                None => String::new(),
            };
            s.push_str(&format!(
                "    {{ \"name\": \"{}\", \"samples\": {}, \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"events\": {}, \"events_per_sec\": {:.0}{} }}{}\n",
                o.name,
                o.samples,
                o.mean_ns,
                o.min_ns,
                o.events,
                o.events_per_sec(),
                allocs,
                if i + 1 < shippable.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }

    /// Pull one numeric field of the named scenario out of a baseline
    /// file written by [`write_json`] (no JSON dep available). Each
    /// scenario is one line, so the search for `key` is confined to the
    /// line holding the matching name.
    fn baseline_field(text: &str, name: &str, key: &str) -> Option<f64> {
        let needle = format!("\"name\": \"{name}\"");
        let at = text.find(&needle)?;
        let line = text[at..].lines().next()?;
        let key = format!("\"{key}\": ");
        let k = line.find(&key)?;
        let tail = &line[k + key.len()..];
        let end = tail.find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')?;
        tail[..end].parse().ok()
    }

    fn baseline_events_per_sec(text: &str, name: &str) -> Option<f64> {
        baseline_field(text, name, "events_per_sec")
    }

    pub fn run() {
        println!();
        println!("engine wall-clock harness (host time; never feeds the virtual clock)");
        println!(
            "{:<36} {:>8} {:>12} {:>12} {:>12} {:>14} {:>12}",
            "scenario", "samples", "mean", "min", "events", "events/sec", "allocs/msg"
        );

        let (audit_off, audit_on) = audit_pair();
        let mut outcomes = vec![
            spawn_delay_10k(),
            timer_cancel_churn(),
            counter_inc(),
            histogram_record(),
            disabled_trace(),
            interned_trace(),
            datapath_1k(),
            datapath_8k(),
            audit_off,
            audit_on,
        ];
        outcomes.extend(scaling_outcomes());
        for o in &outcomes {
            let allocs = match o.allocs_per_msg {
                Some(a) => format!("{a:.1}"),
                None => "-".to_string(),
            };
            println!(
                "{:<36} {:>8} {:>10.3}ms {:>10.3}ms {:>12} {:>14.0} {:>12}",
                o.name,
                o.samples,
                o.mean_ns / 1e6,
                o.min_ns / 1e6,
                o.events,
                o.events_per_sec(),
                allocs
            );
        }

        let spawn = &outcomes[0];
        let (spawn_mean_ms, spawn_min_ms) = (spawn.mean_ns / 1e6, spawn.min_ns / 1e6);
        println!();
        println!("headline vs pre-optimisation baseline (des/spawn_delay_10k_tasks):");
        println!(
            "  before: mean {PRE_PR_SPAWN_DELAY_MEAN_MS:.3} ms   min {PRE_PR_SPAWN_DELAY_MIN_MS:.3} ms"
        );
        println!("  after:  mean {spawn_mean_ms:.3} ms   min {spawn_min_ms:.3} ms");
        println!(
            "  speedup: {:.2}x (mean), {:.2}x (min)",
            PRE_PR_SPAWN_DELAY_MEAN_MS / spawn_mean_ms,
            PRE_PR_SPAWN_DELAY_MIN_MS / spawn_min_ms
        );

        println!();
        println!("data-path allocations per one-way message vs pre-zero-copy baseline:");
        for (o, pre) in [
            (&outcomes[6], PRE_PR_DATAPATH_1K_ALLOCS_PER_MSG),
            (&outcomes[7], PRE_PR_DATAPATH_8K_ALLOCS_PER_MSG),
        ] {
            let now = o.allocs_per_msg.expect("datapath scenarios carry alloc counts");
            println!(
                "  {:<36} before {pre:.1}   after {now:.1}   ({:.1}x fewer)",
                o.name,
                pre / now.max(f64::MIN_POSITIVE)
            );
        }

        let gate = std::env::var("VSCC_PERF_GATE").map(|v| v == "1").unwrap_or(false);
        let (audit_off, audit_on) = (&outcomes[8], &outcomes[9]);
        let audit_ratio = audit_on.events_per_sec() / audit_off.events_per_sec();
        println!();
        println!("audit-stream overhead (hash-chained scheduler audit, VSCC_AUDIT):");
        println!(
            "  off {:>14.0} ev/s   on {:>14.0} ev/s   ratio {audit_ratio:.3}x (gate >= {AUDIT_GATE_RATIO:.2}x)",
            audit_off.events_per_sec(),
            audit_on.events_per_sec(),
        );
        if gate && audit_ratio < AUDIT_GATE_RATIO {
            eprintln!(
                "PERF GATE FAILED: audit stream costs {:.1}% events/sec (budget {:.0}%)",
                (1.0 - audit_ratio) * 100.0,
                (1.0 - AUDIT_GATE_RATIO) * 100.0
            );
            std::process::exit(1);
        }

        let eps = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.name == name)
                .map(Outcome::events_per_sec)
                .expect("scaling scenario present")
        };
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        println!();
        println!(
            "sharded engine device-count scaling (VSCC_SHARDS, DESIGN.md §5i; \
             detected {cores} host core(s)):"
        );
        for (label, serial, sharded) in [
            ("ring, 2 devices", "scaling/ring_2dev_serial", "scaling/ring_2dev_sharded"),
            ("ring, 4 devices", "scaling/ring_4dev_serial", "scaling/ring_4dev_sharded"),
            (
                "fig6b, 4 devices + host (5 groups)",
                "scaling/fig6b_4dev_serial",
                "scaling/fig6b_4dev_sharded",
            ),
        ] {
            println!(
                "  {label:<36} serial {:>12.0} ev/s   sharded {:>12.0} ev/s   {:.2}x",
                eps(serial),
                eps(sharded),
                eps(sharded) / eps(serial)
            );
        }
        let scaling_4dev = eps("scaling/ring_4dev_sharded") / eps("scaling/ring_4dev_serial");
        println!("  gate: 4-device sharded >= {SCALING_GATE_RATIO:.2}x serial");
        if cores < 4 {
            println!(
                "  [skip] scaling gate skipped: needs >= 4 host cores, detected {cores}; \
                 numbers recorded, speedup not enforced"
            );
        } else if gate && scaling_4dev < SCALING_GATE_RATIO {
            eprintln!(
                "PERF GATE FAILED: 4-device sharded scaling {scaling_4dev:.2}x \
                 below the {SCALING_GATE_RATIO:.2}x floor"
            );
            std::process::exit(1);
        }

        let out_path = match std::env::var("VSCC_PERF_OUT") {
            Ok(p) => std::path::PathBuf::from(p),
            Err(_) => repo_root().join("target/BENCH_engine.json"),
        };
        write_json(&outcomes, cores, &out_path);
        println!("wrote {}", out_path.display());

        let baseline_path = repo_root().join("BENCH_engine.json");
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let mut failed = Vec::new();
                let mut alloc_failed = Vec::new();
                println!();
                println!("vs committed baseline ({}):", baseline_path.display());
                for o in &outcomes {
                    match baseline_events_per_sec(&text, o.name) {
                        Some(base) if base > 0.0 => {
                            let ratio = o.events_per_sec() / base;
                            println!("  {:<36} {:>6.2}x baseline", o.name, ratio);
                            if ratio < GATE_RATIO {
                                failed.push((o.name, ratio));
                            }
                        }
                        _ => println!("  {:<36} (not in baseline)", o.name),
                    }
                    if let (Some(now), Some(base)) =
                        (o.allocs_per_msg, baseline_field(&text, o.name, "allocs_per_msg"))
                    {
                        if base > 0.0 {
                            let ratio = now / base;
                            println!("  {:<36} {:>6.2}x baseline allocs/msg", o.name, ratio);
                            if ratio > ALLOC_GATE_RATIO {
                                alloc_failed.push((o.name, ratio));
                            }
                        }
                    }
                }
                if gate && !failed.is_empty() {
                    eprintln!(
                        "PERF GATE FAILED: events/sec regressed >{:.0}% on: {}",
                        (1.0 - GATE_RATIO) * 100.0,
                        failed
                            .iter()
                            .map(|(n, r)| format!("{n} ({r:.2}x)"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(1);
                }
                if gate && !alloc_failed.is_empty() {
                    eprintln!(
                        "PERF GATE FAILED: allocations/message regressed >{:.0}% on: {}",
                        (ALLOC_GATE_RATIO - 1.0) * 100.0,
                        alloc_failed
                            .iter()
                            .map(|(n, r)| format!("{n} ({r:.2}x)"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(1);
                }
            }
            Err(_) => {
                println!(
                    "no committed baseline at {}; skipping comparison",
                    baseline_path.display()
                );
                if gate {
                    eprintln!("PERF GATE FAILED: VSCC_PERF_GATE=1 but no committed baseline");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn main() {
    benches();
    harness::run();

    if vscc_bench::observability_requested() {
        // The micro-bench runs themselves are host-time measurements; for
        // the export, trace one simulated vDMA ping-pong.
        let (_, trace, reg) =
            vscc_apps::pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 65_536, 1);
        vscc_bench::export_observability(&reg, &[("vdma-64K", &trace)]);
    }
}
