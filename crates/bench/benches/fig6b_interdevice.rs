//! Figure 6b — detail of inter-device communication: all five schemes
//! over the message-size sweep, plus the headline ratios of §4.1/§5:
//!
//! * simple packet routing (2012 prototype) is the lower bound;
//! * remote put with FPGA fast write-acks is the non-scalable upper bound
//!   (dashed black curve);
//! * local put / remote get reaches ~72 % of that bound (paper: 71.72 %);
//! * local put / local get (vDMA) sits close to the bound and has no
//!   throughput drop at the 8 KiB MPB boundary (the "slope" the
//!   communication task's pipelining removes);
//! * the best scheme recovers ~24 % of on-chip throughput.

use vscc::CommScheme;
use vscc_apps::pingpong;

fn main() {
    vscc_bench::banner("Figure 6b", "inter-device Ping-Pong throughput per scheme, MB/s");
    let sizes = pingpong::fig6_sizes();
    let reps = 3;

    let cols: Vec<String> =
        ["routed", "hw-ack", "WCB", "LPRG", "vDMA"].iter().map(|s| s.to_string()).collect();
    println!("{}", vscc_bench::header("size", &cols));

    let rows = vscc_bench::parallel_sweep(&sizes, |&size| {
        CommScheme::ALL
            .iter()
            .map(|&s| pingpong::interdevice(s, size, reps).mbps)
            .collect::<Vec<f64>>()
    });
    for (size, vals) in sizes.iter().zip(&rows) {
        println!("{}", vscc_bench::row(&format!("{size:>8} B"), vals));
    }

    // Headline ratios at steady state (large messages).
    let big = 128 * 1024;
    let bound = pingpong::interdevice(CommScheme::RemotePutHwAck, big, reps).mbps;
    let lprg = pingpong::interdevice(CommScheme::LocalPutRemoteGet, big, reps).mbps;
    let vdma = pingpong::interdevice(CommScheme::LocalPutLocalGet, big, reps).mbps;
    let routed = pingpong::interdevice(CommScheme::SimpleRouting, big, reps).mbps;
    let onchip = pingpong::onchip(true, 256 * 1024, reps).mbps;

    println!("\nheadline ratios at {big} B:");
    println!("  hw-accelerated bound            {bound:>7.2} MB/s");
    println!(
        "  local put / remote get          {lprg:>7.2} MB/s = {:.1}% of bound (paper: 71.72%)",
        lprg / bound * 100.0
    );
    println!(
        "  local put / local get (vDMA)    {vdma:>7.2} MB/s = {:.1}% of bound (paper: 'close to')",
        vdma / bound * 100.0
    );
    println!(
        "  simple routing                  {routed:>7.2} MB/s = {:.1}% of bound",
        routed / bound * 100.0
    );
    println!(
        "  best scheme / on-chip ({onchip:.0} MB/s) = {:.1}% (paper: 'recover 24 %')",
        vdma.max(lprg) / onchip * 100.0
    );

    // The 8 KiB drop: present for LPRG, absent for vDMA (§4.1).
    let dip = |scheme: CommScheme| {
        pingpong::interdevice(scheme, 8192, reps).mbps
            / pingpong::interdevice(scheme, 7424, reps).mbps
    };
    println!(
        "  8 KiB dip: LPRG x{:.3}, vDMA x{:.3} (vDMA slope removed)",
        dip(CommScheme::LocalPutRemoteGet),
        dip(CommScheme::LocalPutLocalGet)
    );

    if vscc_bench::critpath_requested() {
        // VSCC_CRITPATH=1: where does one round trip spend its cycles?
        // The per-phase columns sum to the measured completion exactly.
        println!("\ncritical-path attribution (cycles per 1-rep round trip):");
        for size in [2048usize, 7424, 8192, 32 * 1024] {
            let rows: Vec<(String, des::trace::Trace, u64)> = CommScheme::ALL
                .iter()
                .map(|&s| {
                    let (p, trace, _) = pingpong::interdevice_observed(s, size, 1);
                    (s.name().to_string(), trace, p.cycles)
                })
                .collect();
            println!("\n  {size} B:");
            print!("{}", vscc_bench::critpath_table("scheme", &rows));
        }
        println!(
            "\n  reading the dip: above 7424 B the sw-cache scheme pays a second\n  \
             prefetch round (cache-stale + pcie-wire grow between 7424 B and\n  \
             8192 B), while vDMA keeps streaming chunk-pipelined (pcie-wire\n  \
             scales smoothly) -- the local put / local get curve has no 8 KiB dip."
        );
    }

    if vscc_bench::observability_requested() {
        // Sampled runs: counter tracks (tunnel busy-fraction, MPB window
        // occupancy, commtask busy-fraction, ...) ride the Chrome trace,
        // and the vDMA run's series is the `VSCC_TIMESERIES` export.
        let cadence = des::obs::DEFAULT_CADENCE;
        let (_, vdma_trace, vdma_reg, vdma_ts) =
            pingpong::interdevice_sampled(CommScheme::LocalPutLocalGet, 8192, 1, cadence);
        let (_, lprg_trace, _, lprg_ts) =
            pingpong::interdevice_sampled(CommScheme::LocalPutRemoteGet, 8192, 1, cadence);
        vscc_bench::export_observability_sampled(
            &vdma_reg,
            &[("vdma-8K", &vdma_trace), ("lprg-8K", &lprg_trace)],
            &[("vdma-8K", &vdma_ts), ("lprg-8K", &lprg_ts)],
        );
    }

    if vscc_bench::audit_requested() {
        // VSCC_AUDIT=out.json: re-run the vDMA 8 KiB point under the
        // hash-chained scheduler audit stream and export the per-epoch
        // digests (byte-identical across reruns). VSCC_AUDIT_ZOOM=<epoch>
        // additionally dumps that epoch's raw decisions for bisection;
        // an active VSCC_FAULTS plan rides along, seed and all.
        let (_, audit) = pingpong::interdevice_audited(
            CommScheme::LocalPutLocalGet,
            8192,
            1,
            des::audit::DEFAULT_EPOCH_CYCLES,
            vscc_bench::audit_zoom_from_env(),
            des::faultplan::spec_from_env(),
        );
        vscc_bench::export_audit(&audit);
    }
}
