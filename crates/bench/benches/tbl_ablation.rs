//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. software-cache prefetch on/off (local put / remote get);
//! 2. vDMA / prefetch chunk size;
//! 3. host write-combining-buffer flush granularity;
//! 4. fused vs discrete programming of the vDMA registers (the 32 B
//!    alignment trick of §3.3 / Fig. 5).

use std::rc::Rc;

use des::Sim;
use scc::geometry::CoreId;
use vscc::schemes::CachedGetProtocol;
use vscc::{CommScheme, VsccBuilder};

const SIZE: usize = 64 * 1024;
const REPS: usize = 3;

fn pair_throughput(v: &vscc::Vscc, proto: Option<Rc<dyn rcce::PointToPoint>>) -> f64 {
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let mut sb = v.session_builder().participants(vec![a, b]);
    if let Some(p) = proto {
        sb = sb.interdevice_protocol(p);
    }
    let s = sb.build();
    s.run_app(move |r| async move {
        for _ in 0..REPS {
            if r.id() == 0 {
                r.send(&vec![9u8; SIZE], 1).await;
                let mut buf = vec![0u8; SIZE];
                r.recv(&mut buf, 1).await;
            } else {
                let mut buf = vec![0u8; SIZE];
                r.recv(&mut buf, 0).await;
                r.send(&buf, 0).await;
            }
        }
    })
    .expect("ablation run");
    des::time::CORE_FREQ.mbytes_per_sec((2 * REPS * SIZE) as u64, v.sim.now())
}

fn main() {
    vscc_bench::banner("Table (ablations)", "design-choice ablations, ping-pong MB/s at 64 KiB");

    // 1. Prefetch on/off for the software cache.
    {
        let both = vscc_bench::parallel_sweep(&[true, false], |&prefetch| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutRemoteGet).build();
            let proto: Option<Rc<dyn rcce::PointToPoint>> = if prefetch {
                None
            } else {
                Some(Rc::new(CachedGetProtocol { prefetch: false, ..Default::default() }))
            };
            pair_throughput(&v, proto)
        });
        let (on, off) = (both[0], both[1]);
        println!("\n1. software-cache prefetch (local put / remote get)");
        println!("{}", vscc_bench::row("   prefetch on", &[on]));
        println!("{}", vscc_bench::row("   prefetch off (demand misses)", &[off]));
        if vscc_bench::headline_asserts() {
            assert!(on > off, "prefetching must hide the device->host leg");
        }
    }

    // 2. vDMA chunk size.
    {
        println!("\n2. vDMA transfer granularity (local put / local get)");
        let chunks = [256usize, 512, 1024, 1920];
        let rows = vscc_bench::parallel_sweep(&chunks, |&chunk| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2)
                .scheme(CommScheme::LocalPutLocalGet)
                .dma_chunk(chunk)
                .build();
            pair_throughput(&v, None)
        });
        for (&chunk, &t) in chunks.iter().zip(&rows) {
            println!("{}", vscc_bench::row(&format!("   chunk {chunk:>5} B"), &[t]));
        }
    }

    // 3. WCB flush granularity.
    {
        println!("\n3. host WCB flush granularity (remote put)");
        let granules = [128usize, 512, 1024, 3840];
        let rows = vscc_bench::parallel_sweep(&granules, |&g| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2)
                .scheme(CommScheme::RemotePutWcb)
                .wcb_granularity(g)
                .build();
            pair_throughput(&v, None)
        });
        for (&g, &t) in granules.iter().zip(&rows) {
            println!("{}", vscc_bench::row(&format!("   granule {g:>5} B"), &[t]));
        }
    }

    // 4. Fused vs discrete vDMA register programming.
    {
        let measure = |fused: bool| -> u64 {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
            let dev0 = v.devices[0].clone();
            let t = sim
                .block_on(async move {
                    let core = scc::CoreHandle::new(&dev0, CoreId(0));
                    let data = scc::remote::pack_vdma_line(0, 0, 0, 0);
                    let start = core.sim().now();
                    for _ in 0..64 {
                        if fused {
                            core.mmio_write_fused(vscc::mmio::REG_STATUS, data).await;
                        } else {
                            core.mmio_write_discrete(vscc::mmio::REG_STATUS, data).await;
                        }
                    }
                    core.sim().now() - start
                })
                .expect("mmio measure");
            t / 64
        };
        let both = vscc_bench::parallel_sweep(&[true, false], |&f| measure(f));
        let (fused, discrete) = (both[0], both[1]);
        println!("\n4. vDMA register programming (cycles per controller setup)");
        println!("{}", vscc_bench::row("   fused 32B-aligned write", &[fused as f64]));
        println!("{}", vscc_bench::row("   three discrete writes", &[discrete as f64]));
        println!(
            "   write-combining saves {:.1}% of the programming overhead (Fig. 5 layout)",
            (1.0 - fused as f64 / discrete as f64) * 100.0
        );
        if vscc_bench::headline_asserts() {
            assert!(fused * 2 < discrete, "fusing must save at least half the transactions");
        }
    }

    if vscc_bench::observability_requested() {
        // Export the two ends of the vDMA-chunk ablation, fully traced.
        let traced = |chunk: usize| {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2)
                .scheme(CommScheme::LocalPutLocalGet)
                .dma_chunk(chunk)
                .trace_categories(&des::trace::Category::ALL)
                .build();
            pair_throughput(&v, None);
            (v.trace().clone(), v.metrics().clone())
        };
        let (small, _) = traced(256);
        let (large, reg) = traced(1920);
        vscc_bench::export_observability(&reg, &[("chunk-256", &small), ("chunk-1920", &large)]);
    }
}
