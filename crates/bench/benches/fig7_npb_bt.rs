//! Figure 7 — NPB BT class C performance over core counts.
//!
//! Square process counts up to 225 (the paper: "225 represents the maximum
//! configuration, since the application can only handle a number of
//! processes which is a square number"), ranks laid out linearly over up
//! to five devices, for the optimal (vDMA local put / local get) and the
//! worst (simple routing) inter-device configuration. The paper's Fig. 7
//! shows the optimal configuration scaling well and the worst
//! configuration falling far behind once the tunnels carry traffic.
//!
//! Throughput is steady state, so one warm-up plus two timed iterations
//! reproduce the per-iteration rate of the full 200-iteration NPB run.

use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::npb::{run_bt, BtClass, BtConfig};

fn bt_gflops(scheme: CommScheme, ranks: usize) -> f64 {
    let sim = Sim::new();
    let devices = ranks.div_ceil(48).max(1) as u8;
    let v = VsccBuilder::new(&sim, devices).scheme(scheme).build();
    let s = v.session_with_ranks(ranks);
    let mut cfg = BtConfig::new(BtClass::C, ranks);
    cfg.measured = 2;
    let res = run_bt(&s, &cfg).expect("BT run");
    if vscc_bench::headline_asserts() {
        assert!(res.verified, "BT payload verification failed for {scheme:?} at {ranks} ranks");
    }
    res.gflops
}

fn main() {
    vscc_bench::banner(
        "Figure 7",
        "NPB BT class C (162^3) performance, GFLOP/s vs cores (peak 0.533/core)",
    );
    let counts = [16usize, 25, 36, 49, 64, 100, 121, 144, 169, 196, 225];
    println!(
        "{}",
        vscc_bench::header("cores", &["optimal".into(), "worst".into(), "ratio".into()])
    );

    let rows = vscc_bench::parallel_sweep(&counts, |&ranks| {
        let best = bt_gflops(CommScheme::LocalPutLocalGet, ranks);
        let worst = bt_gflops(CommScheme::SimpleRouting, ranks);
        (ranks, best, worst)
    });

    for (ranks, best, worst) in &rows {
        println!("{}", vscc_bench::row(&format!("{ranks:>5}"), &[*best, *worst, *best / *worst]));
    }

    let single_device = rows.iter().find(|(r, _, _)| *r == 36).expect("36-rank row");
    let largest = rows.last().expect("225-rank row");
    println!(
        "\noptimal config at 225 cores: {:.2} GFLOP/s ({:.1}x the worst config; single-device 36-core point {:.2})",
        largest.1,
        largest.1 / largest.2,
        single_device.1
    );
    if vscc_bench::headline_asserts() {
        assert!(
            largest.1 > 2.0 * largest.2,
            "host-accelerated communication must clearly beat transparent routing"
        );
    }

    if vscc_bench::observability_requested() {
        // One small fully-observed BT run for the exports.
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 1)
            .scheme(CommScheme::LocalPutLocalGet)
            .trace_categories(&des::trace::Category::ALL)
            .build();
        let s = v.session_with_ranks(16);
        let mut cfg = BtConfig::new(BtClass::C, 16);
        cfg.measured = 1;
        run_bt(&s, &cfg).expect("observed BT run");
        vscc_bench::export_observability(v.metrics(), &[("bt-class-c-16", v.trace())]);
    }
}
