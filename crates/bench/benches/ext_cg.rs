//! Extension experiment (not a paper figure): NPB CG on vSCC.
//!
//! CG's strided row-reduce / transpose pattern is the stress case the
//! paper's conclusion warns about — applications *without* neighbourhood
//! locality put far more pairs onto the tunnel. The table contrasts CG's
//! scaling under the optimal and worst schemes with the inter-device
//! fraction of its traffic, alongside BT's for reference.

use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::npb::{run_bt, run_cg, BtClass, BtConfig, CgClass, CgConfig};
use vscc_apps::traffic::TrafficMatrix;

fn cg_point(scheme: CommScheme, ranks: usize) -> (f64, f64) {
    let sim = Sim::new();
    let devices = ranks.div_ceil(48).max(1) as u8;
    let v = VsccBuilder::new(&sim, devices.max(2)).scheme(scheme).build();
    let per_dev = ranks.div_ceil(devices.max(2) as usize);
    let s = v.session_builder().cores_per_device(per_dev).max_ranks(ranks).build();
    let res = run_cg(&s, &CgConfig::new(CgClass::A, ranks)).expect("CG run");
    if vscc_bench::headline_asserts() {
        assert!(res.verified);
    }
    let m = TrafficMatrix::capture(&s);
    (res.gflops, m.inter_device_fraction())
}

fn main() {
    vscc_bench::banner(
        "Extension (CG)",
        "NPB CG class A on vSCC: GFLOP/s and inter-device traffic share",
    );
    println!(
        "{}",
        vscc_bench::header("ranks", &["vDMA GF/s".into(), "routed GF/s".into(), "x-dev %".into()])
    );
    let rank_counts = [4usize, 8, 16, 32, 64];
    let rows = vscc_bench::parallel_sweep(&rank_counts, |&ranks| {
        let (best, xf) = cg_point(CommScheme::LocalPutLocalGet, ranks);
        let (worst, _) = cg_point(CommScheme::SimpleRouting, ranks);
        (best, worst, xf)
    });
    for (&ranks, &(best, worst, xf)) in rank_counts.iter().zip(&rows) {
        println!("{}", vscc_bench::row(&format!("{ranks:>5}"), &[best, worst, xf * 100.0]));
    }

    // Contrast the traffic structure with BT at the same scale. (At 16
    // ranks CG's smallest-stride partners are also near the diagonal;
    // the structural difference shows in how the share decays with
    // radius and in the transpose band.)
    // The two 16-rank structure probes are independent runs; each returns
    // only its (Send) ring-distance fractions.
    let apps = ["BT (neighbourhood rings)", "CG (strided reduce/transpose)"];
    let fractions = vscc_bench::parallel_sweep(&apps, |&app| {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
        let s = v.session_builder().cores_per_device(8).build();
        if app.starts_with("BT") {
            let mut cfg = BtConfig::new(BtClass::W, 16);
            cfg.measured = 2;
            run_bt(&s, &cfg).expect("BT");
        } else {
            run_cg(&s, &CgConfig::new(CgClass::A, 16)).expect("CG");
        }
        let m = TrafficMatrix::capture(&s);
        [m.neighbour_fraction(1), m.neighbour_fraction(2), m.neighbour_fraction(4)]
    });
    for (&app, f) in apps.iter().zip(&fractions) {
        println!(
            "{app}: {:.0}% of bytes at ring distance <=1, {:.0}% at <=2, {:.0}% at <=4",
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0
        );
    }

    if vscc_bench::observability_requested() {
        // A fully-traced 16-rank CG run for export.
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::LocalPutLocalGet)
            .trace_categories(&des::trace::Category::ALL)
            .build();
        let s = v.session_builder().cores_per_device(8).build();
        run_cg(&s, &CgConfig::new(CgClass::A, 16)).expect("CG");
        vscc_bench::export_observability(v.metrics(), &[("cg-16", v.trace())]);
    }
}
