//! Figure 8 — NPB BT (class C) communication traffic of 64 cores.
//!
//! The traffic matrix of a 64-rank class C run on two devices, scaled
//! from the simulated iterations to the full 200 NPB iterations. Paper
//! reference points: a neighbourhood-dominated pattern (dark squares near
//! the diagonal), inter-device traffic highlighted at the device
//! boundaries, and a maximum pairwise traffic of about 186 MB.

use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::npb::{run_bt, BtClass, BtConfig};
use vscc_apps::traffic::TrafficMatrix;

fn main() {
    vscc_bench::banner("Figure 8", "NPB BT (class C) communication traffic of 64 cores");
    let ranks = 64usize;
    // One big BT world: run it through the sweep pool like the other
    // bench targets (the closure owns the whole non-Send sim, including
    // the observability export, and hands back only printable data).
    let summaries = vscc_bench::parallel_sweep(&[ranks], |&ranks| {
        let sim = Sim::new();
        let mut b = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet);
        if vscc_bench::observability_requested() {
            b = b.trace_categories(&des::trace::Category::ALL);
        }
        let v = b.build();
        let s = v.session_with_ranks(ranks);
        let mut cfg = BtConfig::new(BtClass::C, ranks);
        cfg.measured = 2;
        let res = run_bt(&s, &cfg).expect("BT run");

        // Scale the recorded (warmup + measured) iterations to the full run.
        let simulated_iters = (cfg.warmup + cfg.measured) as u64;
        let full =
            TrafficMatrix::capture(&s).scaled(BtClass::C.full_iterations() as u64, simulated_iters);
        vscc_bench::export_observability(v.metrics(), &[("bt-class-c-64", v.trace())]);
        let (src, dst, bytes) = full.max_pair();
        (
            res.verified,
            full.render(),
            (src, dst, bytes),
            full.inter_device_fraction(),
            full.total(),
            full.neighbour_fraction(9),
        )
    });
    let (verified, rendered, (src, dst, bytes), xdev, total, neigh9) = &summaries[0];

    if vscc_bench::headline_asserts() {
        assert!(verified);
    }
    println!("{rendered}");
    println!(
        "max pairwise traffic: rank{src} -> rank{dst}, {:.1} MB over {} iterations (paper: 'about 186 MB')",
        *bytes as f64 / 1e6,
        BtClass::C.full_iterations()
    );
    println!(
        "inter-device share: {:.1}% of {:.1} GB total; neighbour(radius 9) share {:.1}%",
        xdev * 100.0,
        *total as f64 / 1e9,
        neigh9 * 100.0
    );
    if vscc_bench::headline_asserts() {
        assert!(
            (50.0..400.0).contains(&(*bytes as f64 / 1e6)),
            "max pairwise traffic must be in the paper's order of magnitude"
        );
        assert!(*neigh9 > 0.5, "the pattern must be neighbourhood-based");
    }
}
