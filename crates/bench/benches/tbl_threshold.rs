//! §3.3 — the direct-transfer threshold.
//!
//! "Because programming the vDMA controller represents a certain
//! overhead, to recover low latency for small messages we have defined a
//! threshold for a core to directly transfer data, which is about 32 B to
//! 128 B dependent on the communication scheme."
//!
//! This table measures one-way small-message latency with the threshold
//! enabled (default) and disabled (every message programs the
//! controller / triggers the prefetch), showing where the crossover sits.

use std::rc::Rc;

use des::Sim;
use vscc::schemes::{CachedGetProtocol, VdmaProtocol};
use vscc::{CommScheme, VsccBuilder};

fn latency(scheme: CommScheme, threshold: usize, size: usize) -> f64 {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let proto: Rc<dyn rcce::PointToPoint> = match scheme {
        CommScheme::LocalPutLocalGet => Rc::new(VdmaProtocol::with_threshold(threshold)),
        CommScheme::LocalPutRemoteGet => {
            Rc::new(CachedGetProtocol { direct_threshold: threshold, ..Default::default() })
        }
        _ => unreachable!("threshold applies to the explicit schemes"),
    };
    let s = v.session_builder().participants(vec![a, b]).interdevice_protocol(proto).build();
    s.run_app(move |r| async move {
        if r.id() == 0 {
            r.send(&vec![1u8; size], 1).await;
        } else {
            let mut buf = vec![0u8; size];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("latency run");
    // One-way latency in microseconds at 533 MHz.
    sim.now() as f64 / 533.0
}

fn main() {
    vscc_bench::banner(
        "Table (threshold)",
        "small-message one-way latency in us: direct transfer vs controller path",
    );
    let sizes = [16usize, 32, 64, 96, 128, 192, 256, 512];
    for (scheme, default_thr) in
        [(CommScheme::LocalPutLocalGet, 128usize), (CommScheme::LocalPutRemoteGet, 96usize)]
    {
        println!("\n{} (default threshold {default_thr} B)", scheme.name());
        println!(
            "{}",
            vscc_bench::header(
                "size",
                &["direct on".into(), "direct off".into(), "speedup".into()]
            )
        );
        // Every (size, threshold) point is an independent simulation:
        // sweep them across threads.
        let points = vscc_bench::parallel_sweep(&sizes, |&size| {
            (latency(scheme, default_thr, size), latency(scheme, 0, size))
        });
        for (&size, &(on, off)) in sizes.iter().zip(&points) {
            println!("{}", vscc_bench::row(&format!("{size:>5} B"), &[on, off, off / on]));
        }
        // Below the threshold, the direct path must win clearly.
        let (on, off) = points[sizes.iter().position(|&s| s == 64).expect("64 B point")];
        if vscc_bench::headline_asserts() {
            assert!(on < off, "{}: direct path must cut small-message latency", scheme.name());
        }
    }

    if vscc_bench::observability_requested() {
        // Export one traced sub-threshold message (the direct path) next
        // to one over-threshold message (the controller path).
        let (_, direct, reg) =
            vscc_apps::pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 64, 1);
        let (_, controller, _) =
            vscc_apps::pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 512, 1);
        vscc_bench::export_observability(
            &reg,
            &[("direct-64B", &direct), ("vdma-512B", &controller)],
        );
    }
}
