//! Building complete vSCC systems: devices + host + communication task +
//! RCCE session wiring.

use std::rc::Rc;

use des::faultplan::FaultSpec;
use des::obs::Registry;
use des::trace::{Category, Trace};
use des::{Cycles, Sim};
use rcce::{PipelinedProtocol, Session, SessionBuilder};
use scc::device::{BootConfig, SccDevice};
use scc::geometry::DeviceId;

use crate::host::{HostConfig, HostSide};
use crate::monitor::Monitors;
use crate::schemes::CommScheme;

/// Which protocol same-device pairs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnchipProtocol {
    /// RCCE's default blocking protocol.
    Blocking,
    /// iRCCE's pipelined protocol.
    Pipelined,
}

/// Builder for a [`Vscc`] system.
pub struct VsccBuilder {
    sim: Sim,
    n_devices: u8,
    scheme: CommScheme,
    onchip: OnchipProtocol,
    boot: BootConfig,
    host_cfg: HostConfig,
    metrics: Option<Registry>,
    trace: Trace,
    monitors: bool,
    monitor_fail_fast: bool,
    poll_watchdog: Option<Cycles>,
    shards: Option<u32>,
}

impl VsccBuilder {
    /// A system of `n_devices` SCC devices (the paper's flagship has 5).
    pub fn new(sim: &Sim, n_devices: u8) -> Self {
        assert!((1..=5).contains(&n_devices), "the host takes 1..=5 PCIe expansion slots");
        VsccBuilder {
            sim: sim.clone(),
            n_devices,
            scheme: CommScheme::LocalPutLocalGet,
            onchip: OnchipProtocol::Blocking,
            boot: BootConfig::default(),
            host_cfg: HostConfig::default(),
            metrics: None,
            trace: Trace::disabled(),
            monitors: true,
            monitor_fail_fast: true,
            poll_watchdog: None,
            shards: None,
        }
    }

    /// Select the inter-device communication scheme.
    pub fn scheme(mut self, scheme: CommScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Select the on-chip protocol.
    pub fn onchip(mut self, p: OnchipProtocol) -> Self {
        self.onchip = p;
        self
    }

    /// Configure boot-time core-failure injection.
    pub fn boot(mut self, cfg: BootConfig) -> Self {
        self.boot = cfg;
        self
    }

    /// Replace the host/communication-task configuration.
    pub fn host_config(mut self, cfg: HostConfig) -> Self {
        self.host_cfg = cfg;
        self
    }

    /// Set the vDMA / prefetch chunk size (ablation knob).
    pub fn dma_chunk(mut self, bytes: usize) -> Self {
        self.host_cfg.dma_chunk = bytes;
        self
    }

    /// Set the host WCB flush granularity (ablation knob).
    pub fn wcb_granularity(mut self, bytes: usize) -> Self {
        self.host_cfg.wcb_granularity = bytes;
        self
    }

    /// Install a deterministic fault-injection plan (see
    /// [`FaultSpec::parse`] for the `VSCC_FAULTS` grammar). An inactive
    /// spec builds no plan at all.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.host_cfg.faults = spec;
        self
    }

    /// Enable (or disable) the host recovery layer: tunnel checksums with
    /// retry/backoff, idempotent vDMA re-programming, and fast-ack
    /// fallback demotion.
    pub fn recovery(mut self, on: bool) -> Self {
        self.host_cfg.recovery.enabled = on;
        self
    }

    /// Replace the whole recovery configuration (thresholds, probe
    /// cadence, promotion/quarantine counts — see
    /// [`host::RecoveryConfig`](crate::host::RecoveryConfig)). Zero
    /// timing fields still derive from the PCIe model at build time.
    pub fn recovery_config(mut self, cfg: crate::host::RecoveryConfig) -> Self {
        self.host_cfg.recovery = cfg;
        self
    }

    /// Opt in to the sharded engine with `n` workers (DESIGN.md §5i).
    /// Takes precedence over the `VSCC_SHARDS` environment knob. The
    /// host↔device MMIO boundary is latency-stamped at exactly one
    /// tunnel lookahead ([`pcie::PcieModel::mmio_crossing_cycles`]), so
    /// the system partitions into one execution group per device plus
    /// one for the host ([`Vscc::shard_groups`] echoes the resolved
    /// partition). The run is driven in lockstep epoch windows of one
    /// lookahead ([`pcie::PcieModel::shard_lookahead`]), byte-identical
    /// to the serial engine at any worker count.
    pub fn shards(mut self, n: u32) -> Self {
        assert!(n >= 1, "shard count must be at least 1");
        self.shards = Some(n);
        self
    }

    /// Abort any single RCCE flag wait exceeding `limit` cycles with a
    /// diagnosed timeout (threads through to sessions built from this
    /// system).
    pub fn poll_watchdog(mut self, limit: Cycles) -> Self {
        self.poll_watchdog = Some(limit);
        self
    }

    /// Report every layer's metrics into an externally-owned registry
    /// (by default the system creates its own; see [`Vscc::metrics`]).
    pub fn metrics_registry(mut self, registry: &Registry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Enable structured tracing for `cats` across every layer (host,
    /// PCIe, vDMA, and the RCCE protocols of sessions built from this
    /// system). With `VSCC_FLIGHT=N` in the environment the trace becomes
    /// a flight recorder bounded to the last `N` events.
    pub fn trace_categories(mut self, cats: &[Category]) -> Self {
        self.trace = match des::obs::flight_capacity_from_env() {
            Some(n) => Trace::with_categories_ring(cats, n),
            None => Trace::with_categories(cats),
        };
        self
    }

    /// Enable or disable the protocol invariant monitors (default: on).
    pub fn monitors(mut self, on: bool) -> Self {
        self.monitors = on;
        self
    }

    /// Choose whether a monitor violation panics immediately (default) or
    /// is only recorded for later inspection via [`Vscc::violations`].
    pub fn monitor_fail_fast(mut self, fail_fast: bool) -> Self {
        self.monitor_fail_fast = fail_fast;
        self
    }

    /// Use an externally-shared trace instead (e.g. to interleave two
    /// systems' events on one timeline).
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Build devices, boot them, start the communication task.
    ///
    /// If no fault plan was configured programmatically, `VSCC_FAULTS` in
    /// the environment installs one (mirroring `VSCC_TRACE` /
    /// `VSCC_CRITPATH`): any bench or test built through this builder can
    /// be chaos-tested without code changes.
    pub fn build(mut self) -> Vscc {
        if !self.host_cfg.faults.is_active() {
            if let Some(spec) = des::faultplan::spec_from_env() {
                self.host_cfg.faults = spec;
            }
        }
        let shards = self
            .shards
            .or_else(|| des::shard::effective_shards().unwrap_or_else(|e| panic!("{e}")));
        // The system's coupling graph (DESIGN.md §5i, "multi-group
        // vSCC"): shard 0 is the host, shard 1+d is device d, and every
        // host↔device edge is latency-stamped at the MMIO crossing cost.
        // The crossing equals the lookahead, so the partitioner cuts
        // every edge: one execution group per device plus the host.
        let lookahead = self.host_cfg.model.shard_lookahead();
        let shard_names: Vec<String> = std::iter::once("host".to_string())
            .chain((0..self.n_devices).map(|d| format!("dev{d}")))
            .collect();
        let edges: Vec<des::shard::CouplingEdge> = (0..self.n_devices as usize)
            .map(|d| (0, 1 + d, Some(self.host_cfg.model.mmio_crossing_cycles())))
            .collect();
        let shard_groups: Vec<Vec<String>> =
            des::shard::partition_groups(shard_names.len(), lookahead, &edges)
                .into_iter()
                .map(|g| g.into_iter().map(|s| shard_names[s].clone()).collect())
                .collect();
        if let Some(n) = shards {
            // Epoch-slice the engine at the tunnel lookahead: every
            // group advances through the same bounded windows, so the
            // sharded run is byte-identical to the serial one at any
            // worker count (pinned by tests/golden_exports.rs).
            self.sim.set_epoch_slice(lookahead);
            // Echo the resolved partition once per process, so a user
            // can see that sharding genuinely split the system.
            static ECHO: std::sync::Once = std::sync::Once::new();
            let (groups, workers) = (shard_groups.len(), (n as usize).min(shard_groups.len()));
            ECHO.call_once(|| {
                let names: Vec<String> = shard_groups.iter().map(|g| g.join("+")).collect();
                println!(
                    "[engine] {}={n}: workers={workers} groups={groups} ({}), \
                     lockstep epochs of {lookahead} cycles",
                    des::shard::SHARDS_ENV,
                    names.join(" | "),
                );
            });
        }
        let poll_watchdog = self.poll_watchdog.or(self.host_cfg.faults.watchdog);
        let metrics = self.metrics.unwrap_or_default();
        let devices: Vec<Rc<SccDevice>> =
            (0..self.n_devices).map(|d| SccDevice::new(&self.sim, DeviceId(d))).collect();
        for dev in &devices {
            dev.boot(&self.boot);
            dev.register_metrics(&metrics);
        }
        let host = HostSide::with_obs(
            &self.sim,
            self.n_devices,
            self.scheme,
            self.host_cfg,
            &metrics,
            self.trace.clone(),
        );
        host.attach(&devices);
        let monitors = self.monitors.then(|| {
            let m = Rc::new(Monitors::new(
                &self.sim,
                self.trace.clone(),
                self.scheme,
                self.n_devices,
                self.monitor_fail_fast,
            ));
            for dev in &devices {
                dev.set_monitor(m.clone());
            }
            m
        });
        Vscc {
            sim: self.sim,
            devices,
            host,
            scheme: self.scheme,
            onchip: self.onchip,
            metrics,
            trace: self.trace,
            monitors,
            poll_watchdog,
            shards,
            shard_groups,
        }
    }
}

/// A running vSCC system.
pub struct Vscc {
    /// The simulation clock.
    pub sim: Sim,
    /// The SCC devices, in id order.
    pub devices: Vec<Rc<SccDevice>>,
    /// The host communication task / fabric.
    pub host: Rc<HostSide>,
    /// The active inter-device scheme.
    pub scheme: CommScheme,
    onchip: OnchipProtocol,
    metrics: Registry,
    trace: Trace,
    monitors: Option<Rc<Monitors>>,
    poll_watchdog: Option<Cycles>,
    shards: Option<u32>,
    shard_groups: Vec<Vec<String>>,
}

impl Vscc {
    /// Total cores that booted across all devices.
    pub fn alive_cores(&self) -> usize {
        self.devices.iter().map(|d| d.alive_cores().len()).sum()
    }

    /// The system-wide metrics registry (`host.*`, `pcie.*`, `scc.*`,
    /// plus `rcce.*` once a session is built).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The system-wide structured trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The sharded-engine worker count this system was built with
    /// ([`None`] = serial engine; see [`VsccBuilder::shards`]).
    pub fn shards(&self) -> Option<u32> {
        self.shards
    }

    /// The resolved execution-group partition (DESIGN.md §5i): member
    /// shard names per group, in group order — `["host"]` plus one
    /// `["dev<N>"]` group per device, because every host↔device MMIO
    /// signal is latency-stamped at the tunnel lookahead. Computed for
    /// serial builds too, so tooling can inspect what a sharded run of
    /// the same system would partition into.
    pub fn shard_groups(&self) -> &[Vec<String>] {
        &self.shard_groups
    }

    /// The installed invariant monitors ([`None`] if disabled).
    pub fn monitors(&self) -> Option<&Rc<Monitors>> {
        self.monitors.as_ref()
    }

    /// Invariant violations recorded so far (always empty when
    /// `monitor_fail_fast` is on — those panic instead).
    pub fn violations(&self) -> Vec<crate::monitor::Violation> {
        self.monitors.as_ref().map(|m| m.violations()).unwrap_or_default()
    }

    /// A pre-wired session builder (on-chip protocol and inter-device
    /// scheme installed); customize ranks and build.
    ///
    /// On multi-device systems the on-chip protocols are *confined* to the
    /// send half of the payload area: the inter-device schemes deliver
    /// inbound traffic (remote-put chunks, vDMA packets, direct messages)
    /// into the receive half, and a rank may be sending on-chip while such
    /// a delivery is in flight.
    pub fn session_builder(&self) -> SessionBuilder {
        let mut b = SessionBuilder::new(&self.sim, self.devices.clone())
            .with_metrics(&self.metrics)
            .with_shared_trace(self.trace.clone());
        if let Some(limit) = self.poll_watchdog {
            b = b.poll_watchdog(limit);
        }
        let multi = self.devices.len() > 1;
        let send_window = crate::schemes::SEND_AREA_BYTES;
        let b = match (self.onchip, multi) {
            (OnchipProtocol::Blocking, false) => b,
            (OnchipProtocol::Blocking, true) => {
                b.onchip_protocol(Rc::new(rcce::BlockingProtocol::confined(0, send_window)))
            }
            (OnchipProtocol::Pipelined, false) => {
                b.onchip_protocol(Rc::new(PipelinedProtocol::default()))
            }
            (OnchipProtocol::Pipelined, true) => {
                b.onchip_protocol(Rc::new(PipelinedProtocol::confined(0, send_window)))
            }
        };
        b.interdevice_protocol(self.scheme.protocol_with_obs(&self.metrics))
    }

    /// Spawn the virtual-time metrics sampler ([`des::obs::timeseries`])
    /// over this system's registry. Call it *after* building the session:
    /// selection is resolved at spawn time, so `rcce.*` metrics (which
    /// register with the session) are only tracked once they exist. The
    /// returned series also tracks the global byte-pool occupancy as
    /// `bytes.pool.free_buffers` (a thread-local gauge that must stay out
    /// of the registry — the pool outlives any single run).
    pub fn spawn_sampler(&self, spec: &des::obs::SamplerSpec) -> des::obs::TimeSeries {
        let ts = des::obs::TimeSeries::spawn(&self.sim, &self.metrics, spec);
        ts.track_gauge("bytes.pool.free_buffers", &des::bytes::global_pool_free_gauge());
        ts
    }

    /// A session over every alive core.
    pub fn session(&self) -> Session {
        self.session_builder().build()
    }

    /// A session over the first `n` alive cores (linear rank extension).
    pub fn session_with_ranks(&self, n: usize) -> Session {
        self.session_builder().max_ranks(n).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cross-device rank pair: rank 0 on device 0, plus the first rank on
    /// device 1 (rank 48 when all cores boot).
    fn cross_pair_session(scheme: CommScheme) -> (Sim, Session) {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
        let d0 = v.devices[0].global(scc::geometry::CoreId(0));
        let d1 = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![d0, d1]).build();
        (sim, s)
    }

    fn roundtrip(scheme: CommScheme, len: usize) {
        let (_sim, s) = cross_pair_session(scheme);
        let msg: Vec<u8> = (0..len).map(|x| (x * 31 % 251) as u8).collect();
        let expect = msg.clone();
        s.run_app(move |r| {
            let msg = msg.clone();
            let expect = expect.clone();
            async move {
                if r.id() == 0 {
                    r.send(&msg, 1).await;
                    // And back, to exercise both directions.
                    let back = r.recv_vec(expect.len(), 1).await;
                    assert_eq!(back, expect, "{:?} corrupted the echo", scheme);
                } else {
                    let got = r.recv_vec(expect.len(), 0).await;
                    assert_eq!(got, expect, "{:?} corrupted the message", scheme);
                    r.send(&got, 0).await;
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn all_schemes_roundtrip_small() {
        for scheme in CommScheme::ALL {
            roundtrip(scheme, 64);
        }
    }

    #[test]
    fn all_schemes_roundtrip_one_chunk() {
        for scheme in CommScheme::ALL {
            roundtrip(scheme, 4000);
        }
    }

    #[test]
    fn all_schemes_roundtrip_multi_chunk() {
        for scheme in CommScheme::ALL {
            roundtrip(scheme, 30_000);
        }
    }

    #[test]
    fn all_schemes_roundtrip_exact_boundaries() {
        for scheme in CommScheme::ALL {
            for len in [
                1usize,
                scc::LINE_BYTES,
                crate::schemes::VDMA_SLOT,
                crate::schemes::VDMA_SLOT + 1,
                crate::schemes::LPRG_CHUNK,
                rcce::layout::CHUNK_BYTES,
                8192,
            ] {
                roundtrip(scheme, len);
            }
        }
    }

    #[test]
    fn scheme_throughput_ordering_matches_paper() {
        // Fig. 6b: routing << cached LPRG < vDMA <= hw-accelerated bound.
        let time_for = |scheme: CommScheme| -> u64 {
            let (sim, s) = cross_pair_session(scheme);
            let reps = 4usize;
            s.run_app(move |r| async move {
                let msg = vec![5u8; 4096];
                for _ in 0..reps {
                    if r.id() == 0 {
                        r.send(&msg, 1).await;
                        let mut buf = vec![0u8; 4096];
                        r.recv(&mut buf, 1).await;
                    } else {
                        let mut buf = vec![0u8; 4096];
                        r.recv(&mut buf, 0).await;
                        r.send(&buf, 0).await;
                    }
                }
            })
            .unwrap();
            sim.now()
        };
        let routing = time_for(CommScheme::SimpleRouting);
        let lprg = time_for(CommScheme::LocalPutRemoteGet);
        let vdma = time_for(CommScheme::LocalPutLocalGet);
        let hwack = time_for(CommScheme::RemotePutHwAck);
        assert!(routing > 5 * lprg, "routing {routing} should be >5x slower than LPRG {lprg}");
        assert!(lprg > vdma, "LPRG {lprg} should be slower than vDMA {vdma}");
        assert!(vdma as f64 >= hwack as f64 * 0.8, "vDMA can approach but not beat hw-ack");
    }

    #[test]
    fn onchip_pairs_unaffected_by_scheme() {
        // Two ranks on the same device must use the on-chip protocol even
        // in a multi-device system.
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::SimpleRouting).build();
        let s = v.session_builder().max_ranks(2).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[1u8; 2000], 1).await;
            } else {
                let got = r.recv_vec(2000, 0).await;
                assert_eq!(got, vec![1u8; 2000]);
            }
        })
        .unwrap();
        // No routed lines: the pair is on-chip.
        assert_eq!(v.host.stats.routed_lines.get(), 0);
    }

    #[test]
    fn vdma_ops_counted() {
        let (_sim, s) = cross_pair_session(CommScheme::LocalPutLocalGet);
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[9u8; 6000], 1).await;
            } else {
                let mut buf = vec![0u8; 6000];
                r.recv(&mut buf, 0).await;
            }
        })
        .unwrap();
    }

    #[test]
    fn cross_device_barrier_and_collectives() {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
        let s = v.session_builder().cores_per_device(3).build();
        assert_eq!(s.num_ranks(), 6);
        let out = s
            .run_app(|r| async move {
                r.barrier().await;
                let sum = r.allreduce_f64(1.0, rcce::collectives::Op::Sum).await;
                sum
            })
            .unwrap();
        assert!(out.iter().all(|&v| v == 6.0));
    }

    #[test]
    fn system_wide_observability_covers_every_layer() {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::LocalPutLocalGet)
            .trace_categories(&Category::ALL)
            .build();
        let d0 = v.devices[0].global(scc::geometry::CoreId(0));
        let d1 = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![d0, d1]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[3u8; 6000], 1).await;
            } else {
                let mut buf = vec![0u8; 6000];
                r.recv(&mut buf, 0).await;
            }
        })
        .unwrap();
        // One registry spans scc, pcie, host, and rcce.
        let names = v.metrics().names();
        for expect in [
            "scc.d0.mpb.writes",
            "scc.d1.cl1inv",
            "pcie.link0.egress.bytes",
            "pcie.host_mem.queue_depth",
            "host.vdma_ops",
            "host.swcache.hits",
            "rcce.send.lock_wait_cycles",
        ] {
            assert!(names.contains(&expect.to_string()), "missing metric {expect}");
        }
        assert!(v.metrics().counter("host.vdma_ops").get() >= 1);
        assert!(v.metrics().counter("pcie.link0.egress.bytes").get() >= 6000);
        // One trace interleaves protocol and host/vDMA events.
        let evs = v.trace().events();
        assert!(evs.iter().any(|e| e.cat == Category::Vdma && e.kind == "vdma"));
        assert!(evs.iter().any(|e| e.cat == Category::Protocol));
        // Session-level accessors share the same objects.
        assert!(s.metrics().names().contains(&"host.vdma_ops".to_string()));
        assert!(s.trace().is_enabled());
    }

    #[test]
    fn five_devices_240_cores() {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 5).build();
        assert_eq!(v.alive_cores(), 240);
        let s = v.session();
        assert_eq!(s.num_ranks(), 240);
    }

    #[test]
    fn boot_failures_reduce_ranks() {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 5)
            .boot(BootConfig { core_failure_prob: 0.05, seed: 42 })
            .build();
        let alive = v.alive_cores();
        assert!(alive < 240, "5% failures over 240 cores should drop some");
        assert_eq!(v.session().num_ranks(), alive);
    }

    #[test]
    fn concurrent_pairs_share_tunnel() {
        // Two disjoint cross-device pairs run concurrently; both must
        // finish, and the tunnel contention must show up as slowdown
        // versus a single pair.
        let run = |pairs: usize| -> u64 {
            let sim = Sim::new();
            let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
            let mut cores = Vec::new();
            for p in 0..pairs {
                cores.push(v.devices[0].global(scc::geometry::CoreId(p as u8)));
            }
            for p in 0..pairs {
                cores.push(v.devices[1].global(scc::geometry::CoreId(p as u8)));
            }
            let s = v.session_builder().participants(cores).build();
            s.run_app(move |r| async move {
                let me = r.id();
                let msg = vec![1u8; 16_000];
                if me < pairs {
                    r.send(&msg, me + pairs).await;
                } else {
                    let mut buf = vec![0u8; 16_000];
                    r.recv(&mut buf, me - pairs).await;
                }
            })
            .unwrap();
            sim.now()
        };
        let one = run(1);
        let four = run(4);
        assert!(four > one, "four pairs ({four}) must take longer than one ({one})");
        assert!(four < one * 8, "but not pathologically longer");
    }
}
