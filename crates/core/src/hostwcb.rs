//! The host write-combining buffer for the remote-put scheme (§3.3,
//! Fig. 4c).
//!
//! In this scheme the sender writes its message "directly to the host
//! located intermediate buffer"; the communication task then copies the
//! data "in a certain granularity" to the MPB of the remote device. The
//! buffer therefore accumulates per (destination core) streams and flushes
//! either when the configured granularity fills or when ordering demands
//! it (a synchronization-flag write to the same destination must not
//! overtake buffered data).
//!
//! The buffer assumes each destination receives a *linear* stream (the
//! sender emits chunk bytes in address order, as the remote-put protocol
//! does); runs that overlap are not re-ordered against already-flushed
//! granules — the same limitation a hardware write-combining buffer has.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use des::bytes::{pooled_with_capacity, Bytes, BytesMut};
use des::obs::{CounterHandle, GaugeHandle, Registry};
use scc::{GlobalCore, MPB_BYTES};

/// One buffered contiguous write run for a destination, frozen for
/// delivery: downstream hops (`deliver_payload`, the tunnel, retries)
/// clone the shared [`Bytes`] instead of copying.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRun {
    /// Destination MPB offset of the first byte.
    pub offset: u16,
    /// Buffered bytes.
    pub data: Bytes,
}

/// A run still accumulating (growable until frozen for flush).
struct Accum {
    offset: u16,
    data: BytesMut,
}

#[derive(Default)]
struct State {
    pending: HashMap<GlobalCore, Vec<Accum>>,
}

/// A named snapshot of the buffer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostWcbStats {
    /// Complete granules emitted (append-triggered or drained).
    pub flushes: u64,
    /// Stores merged into the preceding contiguous run.
    pub merges: u64,
}

/// The write-combining buffer.
#[derive(Clone)]
pub struct HostWcb {
    state: Rc<RefCell<State>>,
    granularity: usize,
    flushes: CounterHandle,
    merges: CounterHandle,
    depth: GaugeHandle,
}

impl HostWcb {
    /// Create a buffer flushing at `granularity` bytes per destination.
    pub fn new(granularity: usize) -> Self {
        assert!(granularity > 0 && granularity <= MPB_BYTES);
        HostWcb {
            state: Rc::new(RefCell::new(State::default())),
            granularity,
            flushes: CounterHandle::default(),
            merges: CounterHandle::default(),
            depth: GaugeHandle::default(),
        }
    }

    /// Like [`HostWcb::new`], but with the counters registered in
    /// `registry` under `host.wcb.{flushes, merges, depth}` — `depth` is
    /// the bytes currently buffered across all destinations.
    pub fn with_registry(granularity: usize, registry: &Registry) -> Self {
        let scope = registry.scoped("host").scoped("wcb");
        let mut wcb = Self::new(granularity);
        wcb.flushes = scope.register_counter("flushes");
        wcb.merges = scope.register_counter("merges");
        wcb.depth = scope.register_gauge("depth");
        wcb
    }

    /// The flush granularity in bytes.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// Buffer `data` headed for `dst` at `offset`. Returns the runs that
    /// became ready to flush (granularity reached), in arrival order.
    pub fn append(&self, dst: GlobalCore, offset: u16, data: &[u8]) -> Vec<PendingRun> {
        let mut ready = Vec::new();
        self.append_into(dst, offset, data, &mut ready);
        ready
    }

    /// [`HostWcb::append`] emitting into a caller-owned `ready` buffer,
    /// so a steady stream of stores reuses one scratch vector instead
    /// of allocating a return `Vec` per append.
    pub fn append_into(
        &self,
        dst: GlobalCore,
        offset: u16,
        data: &[u8],
        ready: &mut Vec<PendingRun>,
    ) {
        let mut st = self.state.borrow_mut();
        self.depth.add(data.len() as i64);
        let runs = st.pending.entry(dst).or_default();
        // Merge with the last run when contiguous (the combining part).
        match runs.last_mut() {
            Some(last) if last.offset as usize + last.data.len() == offset as usize => {
                last.data.extend_from_slice(data);
                self.merges.inc();
            }
            _ => {
                // Pooled accumulator sized for a full granule plus the
                // triggering store, so steady-state merging never grows.
                let mut buf = pooled_with_capacity(self.granularity + data.len());
                buf.extend_from_slice(data);
                runs.push(Accum { offset, data: buf });
            }
        }
        // Flush every complete granule, rewriting `runs` in place. A run
        // that reached the granularity is frozen once; its granules are
        // O(1) slices of the shared storage, and only a sub-granule
        // remainder is copied back into an accumulator.
        let before = ready.len();
        let mut i = 0;
        while i < runs.len() {
            if runs[i].data.len() < self.granularity {
                if runs[i].data.is_empty() {
                    runs.remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            let run = std::mem::replace(&mut runs[i], Accum { offset: 0, data: BytesMut::new() });
            let frozen = run.data.freeze();
            let mut offset = run.offset;
            let mut pos = 0;
            while frozen.len() - pos >= self.granularity {
                ready.push(PendingRun { offset, data: frozen.slice(pos..pos + self.granularity) });
                pos += self.granularity;
                offset += self.granularity as u16;
            }
            if pos < frozen.len() {
                let mut rest = pooled_with_capacity(self.granularity + (frozen.len() - pos));
                rest.extend_from_slice(&frozen[pos..]);
                runs[i] = Accum { offset, data: rest };
                i += 1;
            } else {
                runs.remove(i);
            }
        }
        let emitted = ready.len() - before;
        self.flushes.add(emitted as u64);
        self.depth.sub((emitted * self.granularity) as i64);
    }

    /// Drain everything buffered for `dst` (ordering flush before a flag
    /// write, or end of message).
    pub fn drain(&self, dst: GlobalCore) -> Vec<PendingRun> {
        let out: Vec<PendingRun> = self
            .state
            .borrow_mut()
            .pending
            .remove(&dst)
            .unwrap_or_default()
            .into_iter()
            .map(|run| PendingRun { offset: run.offset, data: run.data.freeze() })
            .collect();
        self.flushes.add(out.len() as u64);
        self.depth.sub(out.iter().map(|r| r.data.len() as i64).sum());
        out
    }

    /// Buffered bytes currently held for `dst`.
    pub fn buffered(&self, dst: GlobalCore) -> usize {
        self.state
            .borrow()
            .pending
            .get(&dst)
            .map(|runs| runs.iter().map(|r| r.data.len()).sum())
            .unwrap_or(0)
    }

    /// Current counter values, by name.
    pub fn stats(&self) -> HostWcbStats {
        HostWcbStats { flushes: self.flushes.get(), merges: self.merges.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dst() -> GlobalCore {
        GlobalCore::new(2, 3)
    }

    #[test]
    fn small_writes_accumulate() {
        let w = HostWcb::new(1024);
        assert!(w.append(dst(), 512, &[1; 100]).is_empty());
        assert!(w.append(dst(), 612, &[2; 100]).is_empty());
        assert_eq!(w.buffered(dst()), 200);
        assert_eq!(w.stats().merges, 1, "contiguous append must merge");
    }

    #[test]
    fn registry_backed_wcb_reports_named_metrics() {
        let reg = Registry::new();
        let w = HostWcb::with_registry(256, &reg);
        w.append(dst(), 0, &[1; 256]);
        assert_eq!(reg.counter("host.wcb.flushes").get(), 1);
        assert_eq!(w.stats(), HostWcbStats { flushes: 1, merges: 0 });
    }

    #[test]
    fn depth_gauge_tracks_buffered_bytes() {
        let reg = Registry::new();
        let w = HostWcb::with_registry(256, &reg);
        let depth = reg.gauge("host.wcb.depth");
        w.append(dst(), 0, &[1; 100]);
        assert_eq!(depth.get(), 100);
        w.append(dst(), 100, &[2; 300]); // crosses a granule: 256 flush
        assert_eq!(depth.get(), 400 - 256);
        assert_eq!(depth.get() as usize, w.buffered(dst()));
        w.drain(dst());
        assert_eq!(depth.get(), 0);
    }

    #[test]
    fn granularity_reached_emits_flush() {
        let w = HostWcb::new(256);
        let ready = w.append(dst(), 512, &[7; 600]);
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].offset, 512);
        assert_eq!(ready[0].data.len(), 256);
        assert_eq!(ready[1].offset, 768);
        assert_eq!(w.buffered(dst()), 600 - 512);
    }

    #[test]
    fn drain_returns_remainder_in_order() {
        let w = HostWcb::new(1024);
        w.append(dst(), 512, &[1; 10]);
        w.append(dst(), 700, &[2; 10]); // non-contiguous: second run
        let runs = w.drain(dst());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].offset, 512);
        assert_eq!(runs[1].offset, 700);
        assert_eq!(w.buffered(dst()), 0);
    }

    #[test]
    fn destinations_are_independent() {
        let w = HostWcb::new(1024);
        let other = GlobalCore::new(3, 0);
        w.append(dst(), 512, &[1; 50]);
        w.append(other, 512, &[2; 60]);
        assert_eq!(w.buffered(dst()), 50);
        assert_eq!(w.buffered(other), 60);
        w.drain(dst());
        assert_eq!(w.buffered(other), 60);
    }

    #[test]
    fn flush_preserves_bytes_exactly() {
        let w = HostWcb::new(128);
        let payload: Vec<u8> = (0..200u8).collect();
        let mut got = w.append(dst(), 512, &payload);
        got.extend(w.drain(dst()));
        let mut reassembled = vec![0u8; 200];
        for run in got {
            let off = run.offset as usize - 512;
            reassembled[off..off + run.data.len()].copy_from_slice(&run.data);
        }
        assert_eq!(reassembled, payload);
    }
}
