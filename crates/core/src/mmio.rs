//! The memory-mapped register file the paper adds to the host driver.
//!
//! Each core owns one register window in the host's address space. The
//! vDMA controller's three logical registers — *address*, *count*,
//! *control* (§3.3, Fig. 5) — are laid out contiguously within one 32 B
//! line, so the SCC's write-combining buffer fuses programming them into a
//! single PCIe transaction. Cache-control operations (explicit update /
//! invalidate of the host software cache, §3.1) and buffer registration
//! use further lines of the same window.

use scc::remote::{pack_vdma_line, unpack_vdma_line, RegisterLine};
use scc::{GlobalCore, LINE_BYTES};

/// Register line index of the vDMA programming registers.
pub const REG_VDMA: u16 = 0;
/// Register line index of the cache-control registers.
pub const REG_CACHE: u16 = 1;
/// Register line index of buffer registration.
pub const REG_REGISTER: u16 = 2;
/// Register line index of the read-only status register.
pub const REG_STATUS: u16 = 3;

/// Control-word opcodes.
const OP_VDMA_START: u64 = 1;
const OP_CACHE_UPDATE: u64 = 2;
const OP_CACHE_INVALIDATE: u64 = 3;
const OP_REGISTER_BUFFER: u64 = 4;

/// A decoded command for the communication task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCmd {
    /// Program the virtual DMA controller: copy `len` bytes from the
    /// issuing core's MPB at `src_off` into `dst`'s MPB at `dst_off`;
    /// on completion, write `seq` into `sent[src_rank]` at the
    /// destination.
    VdmaStart {
        /// Issuing (source) core.
        src: GlobalCore,
        /// Source MPB offset.
        src_off: u16,
        /// Destination core.
        dst: GlobalCore,
        /// Destination MPB offset.
        dst_off: u16,
        /// Bytes to move.
        len: usize,
        /// Completion counter value for the destination's `sent` flag.
        seq: u8,
        /// Rank of the sender (indexes the destination's flag arrays).
        src_rank: u8,
        /// Per-core drain sequence: written to the sender's `vdma_done`
        /// flag once the source slot has been drained to the host, so the
        /// core knows when it may reuse the slot (§3.3 busy-wait).
        drain_seq: u8,
        /// Provenance flow id of the message this transfer belongs to
        /// (rides in the free upper half of the control word; `None` when
        /// the encoder had no flow or it overflowed 32 bits).
        flow: Option<u64>,
    },
    /// Update the host copy of the issuing core's MPB range (prefetch
    /// trigger; §3.2).
    CacheUpdate {
        /// Owner whose region is mirrored.
        owner: GlobalCore,
        /// Start offset.
        offset: u16,
        /// Length in bytes.
        len: usize,
        /// Provenance flow id of the triggering message, if any.
        flow: Option<u64>,
    },
    /// Invalidate the host copy of the issuing core's MPB range.
    CacheInvalidate {
        /// Owner whose region is mirrored.
        owner: GlobalCore,
        /// Start offset.
        offset: u16,
        /// Length in bytes.
        len: usize,
    },
    /// Register the issuing rank's communication buffer with the task
    /// (start address and length, §3.1).
    RegisterBuffer {
        /// Owner core.
        owner: GlobalCore,
        /// Buffer start offset.
        offset: u16,
        /// Buffer length in bytes.
        len: usize,
    },
}

/// 32-bit FNV-1a guard over the meaningful register words. It rides the
/// free upper half of the *address* word — the encoders always set it,
/// the decoder ignores it (the 2012 host had no such check), and the
/// recovery layer calls [`verify`] to catch programming writes garbled in
/// flight before they reach the vDMA engine.
fn guard(address_lo: u64, count: u64, control: u64, arg: u64) -> u64 {
    let mut h: u32 = 0x811c_9dc5;
    for w in [address_lo, count, control, arg] {
        for b in w.to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h as u64
}

/// Pack the register words with the guard sealed into the address word.
fn seal(address: u64, count: u64, control: u64, arg: u64) -> [u8; LINE_BYTES] {
    debug_assert!(address >> 32 == 0, "address word upper half is reserved for the guard");
    pack_vdma_line(address | (guard(address, count, control, arg) << 32), count, control, arg)
}

/// Whether `line`'s guard matches its payload words. A line garbled in
/// flight fails (up to the 2^-32 collision odds); lines not produced by
/// this module's encoders aren't covered and fail too.
pub fn verify(line: &RegisterLine) -> bool {
    let (address, count, control, arg) = unpack_vdma_line(&line.data);
    address >> 32 == guard(address & 0xFFFF_FFFF, count, control, arg)
}

/// Pack a provenance flow id into the free upper half of a control word.
/// Ids above 32 bits don't fit in the register line and are dropped.
fn pack_flow(flow: Option<u64>) -> u64 {
    match flow {
        Some(f) if f <= u32::MAX as u64 => f << 32,
        _ => 0,
    }
}

/// Inverse of [`pack_flow`]: zero means "no flow" (real ids start at 1).
fn unpack_flow(control: u64) -> Option<u64> {
    match control >> 32 {
        0 => None,
        f => Some(f),
    }
}

/// Encode a vDMA programming command into a fused register line.
#[allow(clippy::too_many_arguments)]
pub fn encode_vdma(
    src_off: u16,
    dst: GlobalCore,
    dst_off: u16,
    len: usize,
    seq: u8,
    src_rank: u8,
    drain_seq: u8,
    flow: Option<u64>,
) -> [u8; LINE_BYTES] {
    let address = src_off as u64 | ((dst_off as u64) << 16);
    let count = len as u64;
    let control = OP_VDMA_START
        | ((seq as u64) << 8)
        | ((src_rank as u64) << 16)
        | ((drain_seq as u64) << 24)
        | pack_flow(flow);
    let arg = dst.linear() as u64;
    seal(address, count, control, arg)
}

/// Encode a cache-control command (`update == true` for update, else
/// invalidate).
pub fn encode_cache(offset: u16, len: usize, update: bool, flow: Option<u64>) -> [u8; LINE_BYTES] {
    let op = if update { OP_CACHE_UPDATE } else { OP_CACHE_INVALIDATE };
    seal(offset as u64, len as u64, op | pack_flow(flow), 0)
}

/// Encode a buffer registration.
pub fn encode_register(offset: u16, len: usize) -> [u8; LINE_BYTES] {
    seal(offset as u64, len as u64, OP_REGISTER_BUFFER, 0)
}

/// Decode a register-line write into a command. Returns `None` for
/// malformed writes (unknown opcode or wrong register line).
pub fn decode(line: &RegisterLine) -> Option<HostCmd> {
    let (address, count, control, arg) = unpack_vdma_line(&line.data);
    let op = control & 0xFF;
    match (line.line, op) {
        (REG_VDMA, OP_VDMA_START) => Some(HostCmd::VdmaStart {
            src: line.src,
            src_off: (address & 0xFFFF) as u16,
            dst: GlobalCore::from_linear(arg as u32),
            dst_off: ((address >> 16) & 0xFFFF) as u16,
            len: count as usize,
            seq: ((control >> 8) & 0xFF) as u8,
            src_rank: ((control >> 16) & 0xFF) as u8,
            drain_seq: ((control >> 24) & 0xFF) as u8,
            flow: unpack_flow(control),
        }),
        (REG_CACHE, OP_CACHE_UPDATE) => Some(HostCmd::CacheUpdate {
            owner: line.src,
            offset: address as u16,
            len: count as usize,
            flow: unpack_flow(control),
        }),
        (REG_CACHE, OP_CACHE_INVALIDATE) => Some(HostCmd::CacheInvalidate {
            owner: line.src,
            offset: address as u16,
            len: count as usize,
        }),
        (REG_REGISTER, OP_REGISTER_BUFFER) => Some(HostCmd::RegisterBuffer {
            owner: line.src,
            offset: address as u16,
            len: count as usize,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(src: GlobalCore, idx: u16, data: [u8; LINE_BYTES]) -> RegisterLine {
        RegisterLine { src, line: idx, data }
    }

    #[test]
    fn vdma_roundtrip() {
        let src = GlobalCore::new(0, 5);
        let dst = GlobalCore::new(2, 17);
        let enc = encode_vdma(512, dst, 4352, 3840, 9, 5, 77, Some(123_456));
        let cmd = decode(&line(src, REG_VDMA, enc)).unwrap();
        assert_eq!(
            cmd,
            HostCmd::VdmaStart {
                src,
                src_off: 512,
                dst,
                dst_off: 4352,
                len: 3840,
                seq: 9,
                src_rank: 5,
                drain_seq: 77,
                flow: Some(123_456),
            }
        );
    }

    #[test]
    fn flow_id_rides_control_word() {
        let src = GlobalCore::new(0, 0);
        let dst = GlobalCore::new(1, 1);
        // No flow → decodes to None.
        let enc = encode_vdma(0, dst, 0, 64, 1, 0, 1, None);
        match decode(&line(src, REG_VDMA, enc)).unwrap() {
            HostCmd::VdmaStart { flow, .. } => assert_eq!(flow, None),
            other => panic!("wrong decode: {other:?}"),
        }
        // Oversized flow ids don't fit the line and are dropped, not
        // truncated to a wrong id.
        let enc = encode_vdma(0, dst, 0, 64, 1, 0, 1, Some(1 << 40));
        match decode(&line(src, REG_VDMA, enc)).unwrap() {
            HostCmd::VdmaStart { flow, .. } => assert_eq!(flow, None),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn cache_update_roundtrip() {
        let src = GlobalCore::new(1, 0);
        let cmd = decode(&line(src, REG_CACHE, encode_cache(512, 7680, true, Some(7)))).unwrap();
        assert_eq!(cmd, HostCmd::CacheUpdate { owner: src, offset: 512, len: 7680, flow: Some(7) });
    }

    #[test]
    fn cache_invalidate_roundtrip() {
        let src = GlobalCore::new(1, 0);
        let cmd = decode(&line(src, REG_CACHE, encode_cache(600, 100, false, None))).unwrap();
        assert_eq!(cmd, HostCmd::CacheInvalidate { owner: src, offset: 600, len: 100 });
    }

    #[test]
    fn register_roundtrip() {
        let src = GlobalCore::new(4, 47);
        let cmd = decode(&line(src, REG_REGISTER, encode_register(512, 7680))).unwrap();
        assert_eq!(cmd, HostCmd::RegisterBuffer { owner: src, offset: 512, len: 7680 });
    }

    #[test]
    fn malformed_writes_rejected() {
        let src = GlobalCore::new(0, 0);
        // Wrong line for the opcode.
        assert!(decode(&line(src, REG_CACHE, encode_register(0, 1))).is_none());
        // Garbage.
        assert!(decode(&line(src, REG_VDMA, [0xFF; LINE_BYTES])).is_none());
    }

    #[test]
    fn guard_detects_any_single_byte_garble() {
        let src = GlobalCore::new(0, 5);
        let dst = GlobalCore::new(2, 17);
        for enc in [
            encode_vdma(512, dst, 4352, 3840, 9, 5, 77, Some(123_456)),
            encode_cache(512, 7680, true, Some(7)),
            encode_register(512, 7680),
        ] {
            let l = line(src, REG_VDMA, enc);
            assert!(verify(&l), "pristine encoder output must verify");
            for i in 0..LINE_BYTES {
                let mut garbled = l.clone();
                garbled.data[i] ^= 0x40;
                assert!(!verify(&garbled), "flip at byte {i} escaped the guard");
            }
        }
    }

    #[test]
    fn guarded_lines_still_decode_identically() {
        // The guard rides a word half the decoder masks off: sealing must
        // not change any decoded field.
        let src = GlobalCore::new(1, 3);
        let dst = GlobalCore::new(0, 0);
        let sealed = encode_vdma(1024, dst, 2048, 512, 4, 2, 9, None);
        let (address, count, control, arg) = unpack_vdma_line(&sealed);
        let bare = pack_vdma_line(address & 0xFFFF_FFFF, count, control, arg);
        assert_eq!(decode(&line(src, REG_VDMA, sealed)), decode(&line(src, REG_VDMA, bare)),);
    }

    #[test]
    fn vdma_extreme_field_values() {
        let src = GlobalCore::new(0, 0);
        let dst = GlobalCore::new(4, 47);
        let enc =
            encode_vdma(8191, dst, 8191, scc::MPB_BYTES, 255, 239, 255, Some(u32::MAX as u64));
        match decode(&line(src, REG_VDMA, enc)).unwrap() {
            HostCmd::VdmaStart { src_off, dst_off, len, seq, src_rank, dst: d, .. } => {
                assert_eq!((src_off, dst_off), (8191, 8191));
                assert_eq!(len, scc::MPB_BYTES);
                assert_eq!((seq, src_rank), (255, 239));
                assert_eq!(d, dst);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
