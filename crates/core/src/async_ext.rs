//! Asynchronous communication acceleration — the paper's stated future
//! work (§5: "we plan to extend our communication concept to accelerate
//! asynchronous communication").
//!
//! The blocking vDMA scheme makes the sender spin on its completion flag
//! after programming the controller (§3.3), which "prevents a core of
//! doing useful work as long as the copy operation is in progress". This
//! extension removes that limitation for one-sided transfers: the core
//! programs the controller and *returns immediately*; completion is
//! observed later through the same on-chip flag, so compute and the
//! tunnel transfer overlap.
//!
//! The primitive is a one-sided asynchronous put ([`AsyncVdma::start`])
//! from a staged MPB slot into a remote rank's receive window, paired
//! with a receiver-side arrival wait — the building block an asynchronous
//! iRCCE layer would sit on.

use rcce::layout;
use rcce::protocol::flag_wait_reached;
use rcce::Rcce;

use crate::mmio;
use crate::schemes::{DIRECT_MAX, DIRECT_OFF, VDMA_SLOT};

/// Handle of one in-flight asynchronous vDMA transfer.
pub struct AsyncTransfer {
    /// Drain sequence: the sender's `vdma_done` flag reaches this value
    /// once the source slot may be reused.
    drain_seq: u8,
    /// Arrival sequence at the destination's `sent[src]` flag.
    arrival_seq: u8,
    src_rank: usize,
    /// Destination rank (for diagnostics).
    pub dest_rank: usize,
}

impl AsyncTransfer {
    /// The sequence the receiver's `sent[src]` counter reaches on arrival.
    pub fn arrival_seq(&self) -> u8 {
        self.arrival_seq
    }
}

/// Asynchronous one-sided transfers over the virtual DMA controller.
///
/// The owner must be the *only* user of the vDMA slots on its rank while
/// transfers are in flight (the synchronous [`crate::schemes::VdmaProtocol`]
/// and this extension share the slot space — compose one of them per rank,
/// as an asynchronous runtime would).
pub struct AsyncVdma {
    issued: std::cell::Cell<u8>,
}

impl Default for AsyncVdma {
    fn default() -> Self {
        Self::new()
    }
}

impl AsyncVdma {
    /// Fresh per-rank controller state.
    pub fn new() -> Self {
        AsyncVdma { issued: std::cell::Cell::new(0) }
    }

    /// Start an asynchronous transfer of `data` (at most one vDMA slot,
    /// [`VDMA_SLOT`] bytes) to `dest`'s direct window. Returns right
    /// after the fused register write — the controller works while the
    /// core computes.
    pub async fn start(&self, r: &Rcce, dest: usize, data: &[u8]) -> AsyncTransfer {
        assert!(data.len() <= VDMA_SLOT.min(DIRECT_MAX), "one async transfer fills one slot");
        assert!(
            r.ctx().session.is_inter_device(r.id(), dest),
            "the controller only serves inter-device transfers"
        );
        let ctx = r.ctx();
        let my = ctx.who();
        let peer = ctx.session.who(dest);
        let gseq = self.issued.get().wrapping_add(1);
        self.issued.set(gseq);
        // Wait (usually instantly) until the slot we stage into drained.
        flag_wait_reached(ctx, layout::vdma_done_flag(my), gseq.wrapping_sub(2)).await;
        let slot = layout::payload(my, (gseq as usize % 2) * VDMA_SLOT);
        ctx.core.put(slot, data).await;
        let arrival_seq = {
            let mut sc = ctx.sent_count.borrow_mut();
            sc[dest] = sc[dest].wrapping_add(1);
            sc[dest]
        };
        ctx.core
            .mmio_write_fused(
                mmio::REG_VDMA,
                mmio::encode_vdma(
                    slot.offset,
                    peer,
                    layout::payload(peer, DIRECT_OFF).offset,
                    data.len(),
                    arrival_seq,
                    r.id() as u8,
                    gseq,
                    None,
                ),
            )
            .await;
        ctx.session.record_traffic(r.id(), dest, data.len() as u64);
        AsyncTransfer { drain_seq: gseq, arrival_seq, src_rank: r.id(), dest_rank: dest }
    }

    /// Wait until the transfer's source slot drained (safe to start the
    /// over-next transfer; with two slots, two may always be in flight).
    pub async fn wait_local(&self, r: &Rcce, t: &AsyncTransfer) {
        assert_eq!(t.src_rank, r.id());
        flag_wait_reached(r.ctx(), layout::vdma_done_flag(r.who()), t.drain_seq).await;
    }

    /// Receiver side: wait for the transfer's arrival and copy it out of
    /// the direct window.
    pub async fn wait_arrival(r: &Rcce, src: usize, seq: u8, buf: &mut [u8]) {
        assert!(buf.len() <= DIRECT_MAX);
        let ctx = r.ctx();
        ctx.inbound_lock.lock().await;
        flag_wait_reached(ctx, layout::sent_flag(r.who(), src), seq).await;
        ctx.core.cl1invmb().await;
        ctx.core.get(layout::payload(r.who(), DIRECT_OFF), buf).await;
        ctx.recv_count.borrow_mut()[src] = seq;
        ctx.inbound_lock.unlock();
    }

    /// Transfers issued so far.
    pub fn issued(&self) -> u8 {
        self.issued.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommScheme, VsccBuilder};
    use des::Sim;

    fn pair() -> (Sim, rcce::Session) {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        (sim.clone(), v.session_builder().participants(vec![a, b]).build())
    }

    #[test]
    fn async_put_delivers() {
        let (_sim, s) = pair();
        s.run_app(|r| async move {
            if r.id() == 0 {
                let vdma = AsyncVdma::new();
                let t = vdma.start(&r, 1, &[0xCD; 200]).await;
                vdma.wait_local(&r, &t).await;
                assert_eq!(t.arrival_seq(), 1);
            } else {
                let mut buf = [0u8; 200];
                AsyncVdma::wait_arrival(&r, 0, 1, &mut buf).await;
                assert_eq!(buf, [0xCD; 200]);
            }
        })
        .unwrap();
    }

    #[test]
    fn compute_overlaps_transfer() {
        // The async start must return long before the synchronous send
        // would: compare total time of (start + compute) against
        // (blocking send + compute) for the same payload.
        let run = |asynchronous: bool| -> u64 {
            let (sim, s) = pair();
            s.run_app(move |r| async move {
                let payload = vec![7u8; 200];
                if r.id() == 0 {
                    if asynchronous {
                        let vdma = AsyncVdma::new();
                        let t = vdma.start(&r, 1, &payload).await;
                        r.compute(40_000).await; // overlaps the tunnel
                        vdma.wait_local(&r, &t).await;
                    } else {
                        r.send(&payload, 1).await;
                        r.compute(40_000).await;
                    }
                } else if asynchronous {
                    let mut buf = vec![0u8; 200];
                    AsyncVdma::wait_arrival(&r, 0, 1, &mut buf).await;
                } else {
                    let mut buf = vec![0u8; 200];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        };
        let t_async = run(true);
        let t_sync = run(false);
        assert!(t_async < t_sync, "asynchronous overlap ({t_async}) must beat blocking ({t_sync})");
    }

    #[test]
    fn pipelined_async_stream() {
        // Two transfers in flight using the two slots; receiver drains in
        // order.
        let (_sim, s) = pair();
        s.run_app(|r| async move {
            const N: u8 = 6;
            if r.id() == 0 {
                let vdma = AsyncVdma::new();
                let mut pending = std::collections::VecDeque::new();
                for i in 0..N {
                    let t = vdma.start(&r, 1, &[i + 1; 64]).await;
                    pending.push_back(t);
                    if pending.len() == 2 {
                        let t = pending.pop_front().expect("non-empty");
                        vdma.wait_local(&r, &t).await;
                    }
                }
                for t in pending {
                    vdma.wait_local(&r, &t).await;
                }
            } else {
                for i in 0..N {
                    let mut buf = [0u8; 64];
                    AsyncVdma::wait_arrival(&r, 0, i + 1, &mut buf).await;
                    assert_eq!(buf, [i + 1; 64]);
                }
            }
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "inter-device")]
    fn onchip_rejected() {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
        let s = v.session_builder().cores_per_device(2).build();
        let _ = s.run_app(|r| async move {
            if r.id() == 0 {
                let vdma = AsyncVdma::new();
                let _ = vdma.start(&r, 1, &[0; 8]).await; // same device: panic
            }
        });
    }
}
