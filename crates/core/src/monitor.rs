//! Always-on protocol invariant monitors.
//!
//! [`Monitors`] implements [`scc::device::MpbWriteMonitor`] and watches
//! every MPB store (core-local and host-delivered) plus software-cache
//! hits. All checks are *passive*: they never advance simulated time, so
//! installing them perturbs no measured number. Three invariants:
//!
//! 1. **Flag-counter monotonicity** — the one-byte wrapping counters
//!    (`sent`, `ready`, `vdma_done`) may only move forward (a wrap-safe
//!    delta below 128); a backwards write means a protocol sequencing bug.
//!    The barrier flags are excluded: they toggle by round, not count.
//! 2. **Window discipline** — each [`CommScheme`] partitions the payload
//!    area into a core-owned send window and a host-delivery window (see
//!    DESIGN.md §4b). A store outside the writer's window would silently
//!    corrupt an in-flight message of another path.
//! 3. **Software-cache consistency** — a cache *hit* must serve exactly
//!    the bytes the owning device holds; divergence means a missed
//!    invalidate/update.
//!
//! Violations emit an [`Category::App`] trace event tagged with the flow
//! id, dump the flight-recorder ring to stderr, and (by default) panic so
//! tests fail at the violating store instead of at a downstream payload
//! verification.

use std::cell::RefCell;
use std::collections::HashMap;

use des::trace::{Category, Trace};
use des::{fields, Sim};
use rcce::layout::{self, CHUNK_BYTES, MAX_RANKS, OFF_BARRIER, OFF_PAYLOAD, OFF_VDMA_DONE};
use scc::device::MpbWriteMonitor;
use scc::geometry::{GlobalCore, MpbAddr};

use crate::schemes::{CommScheme, LPRG_CHUNK, SEND_AREA_BYTES};

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant tripped (`flag_monotonicity`, `window_discipline`,
    /// `swcache_consistency`).
    pub check: &'static str,
    /// Human-readable description.
    pub detail: String,
    /// Flow id of the offending access, if known.
    pub flow: Option<u64>,
}

/// The monitor set; one instance is shared by every device of a system.
pub struct Monitors {
    sim: Sim,
    trace: Trace,
    scheme: CommScheme,
    multi_device: bool,
    fail_fast: bool,
    /// Last observed value per counter flag byte.
    flags: RefCell<HashMap<(GlobalCore, u16), u8>>,
    violations: RefCell<Vec<Violation>>,
}

impl Monitors {
    /// Monitors for a system running `scheme` over `n_devices` devices.
    /// `fail_fast` panics at the violating store (the default in systems
    /// built by [`crate::VsccBuilder`]); disable it to collect
    /// [`Monitors::violations`] instead.
    pub fn new(
        sim: &Sim,
        trace: Trace,
        scheme: CommScheme,
        n_devices: u8,
        fail_fast: bool,
    ) -> Self {
        Monitors {
            sim: sim.clone(),
            trace,
            scheme,
            multi_device: n_devices > 1,
            fail_fast,
            flags: RefCell::new(HashMap::new()),
            violations: RefCell::new(Vec::new()),
        }
    }

    /// Violations recorded so far (empty unless `fail_fast` is off).
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.borrow().clone()
    }

    fn report(&self, check: &'static str, flow: Option<u64>, detail: String) {
        let d = detail.clone();
        self.trace.instant_f(
            self.sim.now(),
            Category::App,
            "monitor_violation",
            flow,
            || "monitor",
            || fields![check = check, detail = d.clone()],
        );
        self.violations.borrow_mut().push(Violation { check, detail: detail.clone(), flow });
        if self.fail_fast {
            // Dump the (ring-buffered) trace so the events leading up to
            // the violation survive the panic.
            eprintln!("--- monitor violation: last traced events ---");
            eprint!("{}", self.trace.render());
            panic!("protocol invariant violated [{check}]: {detail}");
        }
    }

    /// Wrap-safe forward check on the counter-flag bytes. `sent` occupies
    /// `[0, MAX_RANKS)`, `ready` `[OFF_READY, OFF_READY + MAX_RANKS)`,
    /// `vdma_done` is one byte; the barrier flags `[OFF_BARRIER,
    /// OFF_VDMA_DONE)` toggle per round and are exempt.
    fn check_flags(&self, addr: MpbAddr, data: &[u8], flow: Option<u64>) {
        if data.len() != 1 || addr.offset >= OFF_PAYLOAD {
            return;
        }
        let off = addr.offset;
        let is_counter = (off as usize) < MAX_RANKS
            || (off >= layout::OFF_READY
                && (off as usize) < layout::OFF_READY as usize + MAX_RANKS)
            || off == OFF_VDMA_DONE;
        let is_barrier = (OFF_BARRIER..OFF_VDMA_DONE).contains(&off);
        if !is_counter || is_barrier {
            return;
        }
        let new = data[0];
        let mut flags = self.flags.borrow_mut();
        match flags.insert((addr.owner, off), new) {
            Some(old) if new.wrapping_sub(old) >= 128 => {
                drop(flags);
                self.report(
                    "flag_monotonicity",
                    flow,
                    format!("flag at {:?}+{off} stepped backwards: {old} -> {new}", addr.owner),
                );
            }
            _ => {}
        }
    }

    /// The payload window a *core-issued* store may touch.
    fn core_window(&self) -> usize {
        match self.scheme {
            CommScheme::SimpleRouting => CHUNK_BYTES,
            CommScheme::LocalPutRemoteGet => LPRG_CHUNK,
            CommScheme::RemotePutHwAck
            | CommScheme::RemotePutWcb
            | CommScheme::LocalPutLocalGet => SEND_AREA_BYTES,
        }
    }

    fn check_core_window(&self, writer: GlobalCore, addr: MpbAddr, len: usize, flow: Option<u64>) {
        if !self.multi_device || addr.offset < OFF_PAYLOAD {
            return;
        }
        let po = (addr.offset - OFF_PAYLOAD) as usize;
        let limit = self.core_window();
        if po + len > limit {
            self.report(
                "window_discipline",
                flow,
                format!(
                    "core {writer:?} wrote payload [{po}, {}) of {:?}, outside the \
                     {:?} core window [0, {limit})",
                    po + len,
                    addr.owner,
                    self.scheme
                ),
            );
        }
    }

    fn check_host_window(&self, writer: GlobalCore, addr: MpbAddr, len: usize, flow: Option<u64>) {
        if addr.offset < OFF_PAYLOAD {
            return;
        }
        let po = (addr.offset - OFF_PAYLOAD) as usize;
        // Transparent routing writes anywhere a core could; the explicit
        // schemes deliver inbound traffic only into the receive half.
        let (lo, hi) = match self.scheme {
            CommScheme::SimpleRouting => (0, CHUNK_BYTES),
            _ => (SEND_AREA_BYTES, CHUNK_BYTES),
        };
        if po < lo || po + len > hi {
            self.report(
                "window_discipline",
                flow,
                format!(
                    "host delivered [{po}, {}) into {:?} on behalf of {writer:?}, outside \
                     the {:?} delivery window [{lo}, {hi})",
                    po + len,
                    addr.owner,
                    self.scheme
                ),
            );
        }
    }
}

impl MpbWriteMonitor for Monitors {
    fn core_write(&self, writer: GlobalCore, addr: MpbAddr, data: &[u8], flow: Option<u64>) {
        self.check_flags(addr, data, flow);
        self.check_core_window(writer, addr, data.len(), flow);
    }

    fn host_write(&self, writer: GlobalCore, addr: MpbAddr, data: &[u8], flow: Option<u64>) {
        self.check_flags(addr, data, flow);
        self.check_host_window(writer, addr, data.len(), flow);
    }

    fn cache_read_check(
        &self,
        owner: GlobalCore,
        offset: u16,
        cached: &[u8],
        device_bytes: &[u8],
        flow: Option<u64>,
    ) {
        if cached != device_bytes {
            let first = cached.iter().zip(device_bytes).position(|(a, b)| a != b).unwrap_or(0);
            self.report(
                "swcache_consistency",
                flow,
                format!(
                    "software-cache hit for {owner:?}+{offset} diverges from the device \
                     (first differing byte at +{first}: cached {} vs device {})",
                    cached[first], device_bytes[first]
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitors(scheme: CommScheme, n_devices: u8) -> Monitors {
        let sim = Sim::new();
        Monitors::new(&sim, Trace::enabled(), scheme, n_devices, false)
    }

    fn core(d: u8, c: u8) -> GlobalCore {
        GlobalCore::new(d, c)
    }

    #[test]
    fn forward_flag_steps_pass_backwards_fails() {
        let m = monitors(CommScheme::LocalPutLocalGet, 2);
        let a = MpbAddr::new(core(0, 0), 3); // a sent flag
        m.core_write(core(0, 0), a, &[1], None);
        m.core_write(core(0, 0), a, &[2], None);
        m.core_write(core(0, 0), a, &[2], None); // idempotent rewrite ok
        assert!(m.violations().is_empty());
        m.core_write(core(0, 0), a, &[1], Some(9));
        let v = m.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "flag_monotonicity");
        assert_eq!(v[0].flow, Some(9));
    }

    #[test]
    fn counter_wrap_is_not_a_violation() {
        let m = monitors(CommScheme::LocalPutLocalGet, 2);
        let a = MpbAddr::new(core(0, 0), layout::OFF_READY + 5);
        m.core_write(core(0, 0), a, &[250], None);
        m.core_write(core(0, 0), a, &[3], None); // wraps forward by 9
        assert!(m.violations().is_empty());
    }

    #[test]
    fn barrier_flags_exempt() {
        let m = monitors(CommScheme::LocalPutLocalGet, 2);
        let a = MpbAddr::new(core(0, 0), OFF_BARRIER + 2);
        m.core_write(core(0, 0), a, &[1], None);
        m.core_write(core(0, 0), a, &[0], None); // toggles back: fine
        assert!(m.violations().is_empty());
    }

    #[test]
    fn core_window_enforced_per_scheme() {
        let m = monitors(CommScheme::LocalPutLocalGet, 2);
        let inside = layout::payload(core(0, 0), 0);
        m.core_write(core(0, 0), inside, &[0u8; SEND_AREA_BYTES], None);
        assert!(m.violations().is_empty());
        // One byte past the send area: the receive half belongs to the host.
        let outside = layout::payload(core(0, 0), SEND_AREA_BYTES);
        m.core_write(core(0, 0), outside, &[0u8; 1], Some(4));
        let v = m.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "window_discipline");
    }

    #[test]
    fn single_device_core_writes_unconstrained() {
        let m = monitors(CommScheme::LocalPutLocalGet, 1);
        let a = layout::payload(core(0, 0), CHUNK_BYTES - 1);
        m.core_write(core(0, 0), a, &[0u8; 1], None);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn host_delivery_window_enforced() {
        let m = monitors(CommScheme::RemotePutWcb, 2);
        let rx = layout::payload(core(1, 0), SEND_AREA_BYTES);
        m.host_write(core(0, 0), rx, &[0u8; 64], None);
        assert!(m.violations().is_empty());
        let tx = layout::payload(core(1, 0), 0);
        m.host_write(core(0, 0), tx, &[0u8; 64], None);
        assert_eq!(m.violations().len(), 1);
        // Simple routing may deliver anywhere.
        let m = monitors(CommScheme::SimpleRouting, 2);
        m.host_write(core(0, 0), tx, &[0u8; 64], None);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn swcache_divergence_detected() {
        let m = monitors(CommScheme::LocalPutRemoteGet, 2);
        m.cache_read_check(core(0, 0), 512, &[1, 2, 3], &[1, 2, 3], None);
        assert!(m.violations().is_empty());
        m.cache_read_check(core(0, 0), 512, &[1, 2, 3], &[1, 9, 3], Some(7));
        let v = m.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "swcache_consistency");
        assert!(v[0].detail.contains("+1"));
    }
}
