//! The host software cache of remote MPBs (§3.1/§3.2).
//!
//! The communication task mirrors (parts of) device MPB regions in host
//! memory. Consistency is *relaxed and explicit*: the cache only changes
//! when a core issues an update (prefetch) or invalidate instruction
//! through the MMIO register file. A read served from an un-updated range
//! returns stale bytes — exactly the failure mode the paper's protocol
//! rules out by having the sender invalidate/update "the outdated part of
//! the host copy explicitly".

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use des::bytes::{pooled, Bytes};
use des::event::Notify;
use des::obs::{CounterHandle, Registry};
use scc::{GlobalCore, MPB_BYTES};

struct Entry {
    data: Box<[u8]>,
    valid: Box<[bool]>, // per byte; simple and exact
    pending: u64,       // in-flight updates targeting this region
}

impl Entry {
    fn new() -> Self {
        Entry {
            data: vec![0u8; MPB_BYTES].into_boxed_slice(),
            valid: vec![false; MPB_BYTES].into_boxed_slice(),
            pending: 0,
        }
    }
}

/// A named snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwCacheStats {
    /// Reads fully served from a valid mirror range.
    pub hits: u64,
    /// Reads that found (part of) the range invalid.
    pub misses: u64,
    /// Completed prefetch (update) operations.
    pub updates: u64,
    /// Explicit invalidate operations.
    pub invalidations: u64,
}

/// The software cache: one optional mirror per remote core region.
#[derive(Clone, Default)]
pub struct SwCache {
    entries: Rc<RefCell<HashMap<GlobalCore, Entry>>>,
    notify: Notify,
    hits: CounterHandle,
    misses: CounterHandle,
    invalidations: CounterHandle,
    updates: CounterHandle,
}

impl SwCache {
    /// Empty cache with private (unregistered) counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache whose counters are registered in `registry` under
    /// `host.swcache.{hits, misses, updates, invalidations}`.
    pub fn with_registry(registry: &Registry) -> Self {
        let scope = registry.scoped("host").scoped("swcache");
        SwCache {
            entries: Rc::default(),
            notify: Notify::new(),
            hits: scope.register_counter("hits"),
            misses: scope.register_counter("misses"),
            updates: scope.register_counter("updates"),
            invalidations: scope.register_counter("invalidations"),
        }
    }

    /// Mark an update of `owner`'s mirror as in flight (called when the
    /// MMIO command *arrives at the host*, before the DMA completes, so
    /// later reads wait instead of racing).
    pub fn begin_update(&self, owner: GlobalCore) {
        self.entries.borrow_mut().entry(owner).or_insert_with(Entry::new).pending += 1;
    }

    /// Install bytes of an in-flight update at `offset` and wake waiting
    /// readers; the update stays pending until [`SwCache::finish_update`].
    /// Lets the prefetch stream chunk by chunk so readers overlap with it
    /// ("answer remote memory requests of the receiver in parallel", §3.2).
    pub fn install(&self, owner: GlobalCore, offset: u16, data: &[u8]) {
        {
            let mut entries = self.entries.borrow_mut();
            let e = entries.entry(owner).or_insert_with(Entry::new);
            let off = offset as usize;
            e.data[off..off + data.len()].copy_from_slice(data);
            e.valid[off..off + data.len()].fill(true);
        }
        self.notify.notify_all();
    }

    /// Mark one in-flight update as finished.
    pub fn finish_update(&self, owner: GlobalCore) {
        {
            let mut entries = self.entries.borrow_mut();
            let e = entries.entry(owner).or_insert_with(Entry::new);
            debug_assert!(e.pending > 0, "finish_update without begin_update");
            e.pending = e.pending.saturating_sub(1);
        }
        self.updates.inc();
        self.notify.notify_all();
    }

    /// Complete an update in one step: install `data` and finish.
    pub fn complete_update(&self, owner: GlobalCore, offset: u16, data: &[u8]) {
        self.install(owner, offset, data);
        self.finish_update(owner);
    }

    /// Whether `[offset, offset+len)` of `owner`'s mirror is fully valid.
    pub fn range_valid(&self, owner: GlobalCore, offset: u16, len: usize) -> bool {
        let entries = self.entries.borrow();
        let off = offset as usize;
        entries.get(&owner).map(|e| e.valid[off..off + len].iter().all(|&v| v)).unwrap_or(false)
    }

    /// Wait until the range is valid or no update is in flight (so a read
    /// can decide between a hit and a genuine miss).
    pub async fn wait_range_or_settled(&self, owner: GlobalCore, offset: u16, len: usize) {
        let this = self.clone();
        self.notify
            .wait_until(move || this.range_valid(owner, offset, len) || !this.has_pending(owner))
            .await;
    }

    /// Explicitly invalidate `[offset, offset+len)` of `owner`'s mirror.
    pub fn invalidate(&self, owner: GlobalCore, offset: u16, len: usize) {
        if let Some(e) = self.entries.borrow_mut().get_mut(&owner) {
            let off = offset as usize;
            e.valid[off..off + len].fill(false);
        }
        self.invalidations.inc();
    }

    /// Whether any update for `owner` is still in flight.
    pub fn has_pending(&self, owner: GlobalCore) -> bool {
        self.entries.borrow().get(&owner).map(|e| e.pending > 0).unwrap_or(false)
    }

    /// Wait until no update for `owner` is in flight (the "warmup" the
    /// paper describes: the task answers read requests in parallel with
    /// prefetching, delaying them until the data is there).
    pub async fn wait_settled(&self, owner: GlobalCore) {
        let this = self.clone();
        self.notify.wait_until(move || !this.has_pending(owner)).await;
    }

    /// Try to serve `[offset, offset+len)` of `owner`'s mirror.
    /// Returns `Some(bytes)` on a full hit, `None` if any byte is invalid.
    /// The hit copies out of the mirror into a pooled chunk, so serving
    /// the same range repeatedly recycles one buffer instead of
    /// allocating per read.
    pub fn read(&self, owner: GlobalCore, offset: u16, len: usize) -> Option<Bytes> {
        let entries = self.entries.borrow();
        let off = offset as usize;
        match entries.get(&owner) {
            Some(e) if e.valid[off..off + len].iter().all(|&v| v) => {
                self.hits.inc();
                let mut out = pooled(len);
                out.copy_from_slice(&e.data[off..off + len]);
                Some(out.freeze())
            }
            _ => {
                self.misses.inc();
                None
            }
        }
    }

    /// Current counter values, by name.
    pub fn stats(&self) -> SwCacheStats {
        SwCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            updates: self.updates.get(),
            invalidations: self.invalidations.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Sim;

    fn owner() -> GlobalCore {
        GlobalCore::new(1, 7)
    }

    #[test]
    fn miss_before_update_hit_after() {
        let c = SwCache::new();
        assert!(c.read(owner(), 512, 64).is_none());
        c.begin_update(owner());
        c.complete_update(owner(), 512, &[7u8; 64]);
        assert_eq!(c.read(owner(), 512, 64).unwrap(), vec![7u8; 64]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.updates), (1, 1, 1));
    }

    #[test]
    fn registry_backed_cache_reports_named_metrics() {
        let reg = Registry::new();
        let c = SwCache::with_registry(&reg);
        assert!(c.read(owner(), 0, 8).is_none());
        c.begin_update(owner());
        c.complete_update(owner(), 0, &[1u8; 8]);
        assert!(c.read(owner(), 0, 8).is_some());
        c.invalidate(owner(), 0, 8);
        assert_eq!(reg.counter("host.swcache.hits").get(), 1);
        assert_eq!(reg.counter("host.swcache.misses").get(), 1);
        assert_eq!(reg.counter("host.swcache.updates").get(), 1);
        assert_eq!(reg.counter("host.swcache.invalidations").get(), 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn partial_validity_is_a_miss() {
        let c = SwCache::new();
        c.begin_update(owner());
        c.complete_update(owner(), 512, &[1u8; 32]);
        // Request extends past the updated range.
        assert!(c.read(owner(), 512, 64).is_none());
    }

    #[test]
    fn invalidate_makes_range_stale() {
        let c = SwCache::new();
        c.begin_update(owner());
        c.complete_update(owner(), 512, &[1u8; 128]);
        c.invalidate(owner(), 544, 32);
        assert!(c.read(owner(), 512, 128).is_none());
        // Adjacent untouched range still hits.
        assert!(c.read(owner(), 512, 32).is_some());
    }

    #[test]
    fn stale_data_served_without_explicit_update() {
        // The cache is *relaxed*: a second write to the device without an
        // update leaves the host copy stale — and the cache serves it.
        let c = SwCache::new();
        c.begin_update(owner());
        c.complete_update(owner(), 512, &[0xAA; 32]);
        // Device memory changed to 0xBB, but no update was issued:
        assert_eq!(c.read(owner(), 512, 32).unwrap(), vec![0xAA; 32]);
    }

    #[test]
    fn reader_waits_for_inflight_update() {
        let sim = Sim::new();
        let c = SwCache::new();
        c.begin_update(owner());
        let (c2, s2) = (c.clone(), sim.clone());
        sim.spawn_named("reader", async move {
            c2.wait_settled(owner()).await;
            assert_eq!(s2.now(), 400);
            assert!(c2.read(owner(), 0, 8).is_some());
        });
        let s = sim.clone();
        sim.spawn_named("dma", async move {
            s.delay(400).await;
            c.complete_update(owner(), 0, &[3u8; 8]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn regions_are_independent() {
        let c = SwCache::new();
        let a = GlobalCore::new(0, 0);
        let b = GlobalCore::new(1, 0);
        c.begin_update(a);
        c.complete_update(a, 0, &[1; 16]);
        assert!(c.read(a, 0, 16).is_some());
        assert!(c.read(b, 0, 16).is_none());
        assert!(!c.has_pending(a));
    }
}
