//! vSCC: host-assisted communication for a grid of cluster-on-a-chip
//! processors — the paper's contribution.
//!
//! vSCC couples several SCC devices through a single host into one virtual
//! many-core processor (240 cores at five devices). Because the PCIe tunnel
//! is ~120× slower than the on-chip mesh, the naive transparent extension
//! (route every 32 B on-chip packet through the host daemon) collapses;
//! the paper instead *waives transparency* and extends the architecture:
//!
//! * the host **communication task** ([`host::HostSide`]) classifies
//!   incoming traffic into *synchronization* (flag) and *communication*
//!   (buffer) accesses and handles them differently (§3.1);
//! * a **software cache** of remote MPBs with relaxed consistency and
//!   explicit invalidate/update instructions ([`swcache`]);
//! * a host **write-combining buffer** for the remote-put scheme
//!   ([`hostwcb`]);
//! * a **virtual DMA controller** programmed through three memory-mapped
//!   registers fused into one 32 B write ([`mmio`], [`host`]), enabling the
//!   new *local-put / local-get* scheme;
//! * a **direct-transfer threshold** recovering low latency for small
//!   messages (§3.3);
//! * a **self-healing communication plane** ([`health`]) layered over the
//!   recovery path: per-pair health FSM, canary re-promotion probing, and
//!   adaptive retry timeouts (beyond the paper — DESIGN.md §5h).
//!
//! [`schemes`] packages all of this as drop-in inter-device protocols for
//! the RCCE session layer; [`system`] builds complete vSCC machines.

pub mod async_ext;
pub mod health;
pub mod host;
pub mod hostwcb;
pub mod mmio;
pub mod monitor;
pub mod schemes;
pub mod swcache;
pub mod system;

pub use schemes::CommScheme;
pub use system::{OnchipProtocol, Vscc, VsccBuilder};
