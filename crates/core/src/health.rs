//! Per-pair health state machine of the self-healing communication plane
//! (DESIGN.md §5h).
//!
//! PR 3's recovery layer demoted a 3×-lossy device pair from the posted
//! remote-put fast path to the host-acked fallback — and left it there
//! forever. This module closes the loop:
//!
//! ```text
//!             consecutive lossy bursts ≥ fallback_threshold
//!   Healthy ─────────────────────────────────────────────► Degraded
//!      ▲                                                      │
//!      │ promote: K consecutive probe successes               │ probe
//!      │                                                      ▼ timer
//!   Probing ◄──────────────────────────────────────────── (canary)
//!      │  probe_fail: back to Degraded, interval doubled
//!      │
//!      └── demote_count ≥ quarantine_after ──► Quarantined (terminal)
//! ```
//!
//! A demoted pair keeps serving traffic over the safe fallback while a
//! daemon prober sends periodic single-line canaries over the *demoted*
//! fast path. `promote_after` consecutive successes re-promote the pair;
//! any failure resets the success count and doubles the probe interval
//! (bounded by `probe_backoff_max`) — exponential hysteresis, so a pair
//! under an ongoing fault storm is re-tested ever more rarely and cannot
//! flap. A pair demoted `quarantine_after` times is quarantined: it stays
//! on the fallback permanently and its prober retires. Every transition
//! is timestamped, logged (bounded), traced (`Category::Health`), and
//! counted (`host.health.*`).
//!
//! The tracker also derives **adaptive per-pair retry timeouts**: an
//! EWMA (α = 1/8, integer arithmetic) of observed transfer windows
//! replaces the static 4×RT retry budget, clamped to the model's
//! floor/ceiling so calibration bands cannot move. The EWMA is only fed
//! on runs with an active fault plan, and probers only spawn after a
//! demotion — on a fault-free run this module is pure inert state, which
//! is what keeps the committed goldens byte-identical.
//!
//! All state lives behind `RefCell` (single-threaded simulation) and all
//! clocks are virtual: two identical seeded runs produce identical
//! transition logs.

use std::cell::RefCell;
use std::collections::BTreeMap;

use des::obs::Registry;
use des::stats::{Counter, Gauge};
use des::Cycles;

/// Health of one `(src_device, dst_device)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairHealth {
    /// Fast path in use; no demotion in effect.
    Healthy,
    /// Demoted to the host-acked fallback; prober armed.
    Degraded,
    /// A canary probe is in flight on the fast path.
    Probing,
    /// Demoted too many times; fallback is permanent, prober retired.
    Quarantined,
}

impl PairHealth {
    /// Lower-case name, as traced and reported.
    pub fn name(self) -> &'static str {
        match self {
            PairHealth::Healthy => "healthy",
            PairHealth::Degraded => "degraded",
            PairHealth::Probing => "probing",
            PairHealth::Quarantined => "quarantined",
        }
    }

    /// Whether traffic for this pair must use the host-acked fallback.
    pub fn uses_fallback(self) -> bool {
        !matches!(self, PairHealth::Healthy)
    }
}

/// One recorded FSM transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Virtual-clock time of the transition.
    pub time: Cycles,
    /// The `(src_device, dst_device)` pair.
    pub pair: (u8, u8),
    /// State before.
    pub from: PairHealth,
    /// State after.
    pub to: PairHealth,
    /// What caused it: `"demote"`, `"probe_start"`, `"probe_fail"`,
    /// `"promote"`, or `"quarantine"`.
    pub trigger: &'static str,
}

/// Bound on the transition log: enough for any bench arc, bounded for
/// chaos loops (the counters always cover everything).
const TRANSITION_LOG: usize = 1024;

#[derive(Debug, Default)]
struct PairState {
    health: Option<PairHealth>, // None = never touched (counts as Healthy)
    ack_streak: u32,
    demote_count: u32,
    probe_successes: u32,
    probe_interval: Cycles,
    prober_active: bool,
    ewma_rt: Cycles,
}

impl PairState {
    fn health(&self) -> PairHealth {
        self.health.unwrap_or(PairHealth::Healthy)
    }
}

/// Tracker of every pair's health, probe schedule, and RT estimate.
///
/// Owned by `vscc::host::HostSide`; always constructed (field reads are
/// cheap) but its metrics are only registered when a fault plan is
/// active, mirroring `FaultPlan::register_metrics`.
pub struct HealthTracker {
    pairs: RefCell<BTreeMap<(u8, u8), PairState>>,
    transitions: RefCell<Vec<HealthTransition>>,
    /// Pairs currently Degraded (`host.health.degraded_pairs`).
    pub degraded_pairs: Gauge,
    /// Pairs currently Probing (`host.health.probing_pairs`).
    pub probing_pairs: Gauge,
    /// Pairs currently Quarantined (`host.health.quarantined_pairs`).
    pub quarantined_pairs: Gauge,
    /// Probe-driven re-promotions (`host.health.promotions`).
    pub promotions: Counter,
    /// Canary probes sent (`host.health.probe_sent`).
    pub probe_sent: Counter,
    /// Canary probes acked (`host.health.probe_ok`).
    pub probe_ok: Counter,
    /// Canary probes lost (`host.health.probe_fail`).
    pub probe_fail: Counter,
    /// Pairs quarantined (`host.health.quarantines`).
    pub quarantines: Counter,
}

impl HealthTracker {
    pub fn new() -> Self {
        HealthTracker {
            pairs: RefCell::new(BTreeMap::new()),
            transitions: RefCell::new(Vec::new()),
            degraded_pairs: Gauge::new(),
            probing_pairs: Gauge::new(),
            quarantined_pairs: Gauge::new(),
            promotions: Counter::new(),
            probe_sent: Counter::new(),
            probe_ok: Counter::new(),
            probe_fail: Counter::new(),
            quarantines: Counter::new(),
        }
    }

    /// Surface the gauges and counters in `registry` under
    /// `host.health.*`. Called only when a fault plan is active, so
    /// fault-free metric snapshots stay byte-identical.
    pub fn register(&self, registry: &Registry) {
        let h = registry.scoped("host").scoped("health");
        h.adopt_gauge("degraded_pairs", &self.degraded_pairs);
        h.adopt_gauge("probing_pairs", &self.probing_pairs);
        h.adopt_gauge("quarantined_pairs", &self.quarantined_pairs);
        h.adopt_counter("promotions", &self.promotions);
        h.adopt_counter("probe_sent", &self.probe_sent);
        h.adopt_counter("probe_ok", &self.probe_ok);
        h.adopt_counter("probe_fail", &self.probe_fail);
        h.adopt_counter("quarantines", &self.quarantines);
    }

    fn gauge_of(&self, s: PairHealth) -> Option<&Gauge> {
        match s {
            PairHealth::Healthy => None,
            PairHealth::Degraded => Some(&self.degraded_pairs),
            PairHealth::Probing => Some(&self.probing_pairs),
            PairHealth::Quarantined => Some(&self.quarantined_pairs),
        }
    }

    /// Move `pair` to `to`, maintaining the per-state gauges and the
    /// bounded transition log. Returns the transition for tracing.
    fn transition(
        &self,
        now: Cycles,
        pair: (u8, u8),
        state: &mut PairState,
        to: PairHealth,
        trigger: &'static str,
    ) -> HealthTransition {
        let from = state.health();
        if let Some(g) = self.gauge_of(from) {
            g.sub(1);
        }
        if let Some(g) = self.gauge_of(to) {
            g.add(1);
        }
        state.health = Some(to);
        let t = HealthTransition { time: now, pair, from, to, trigger };
        let mut log = self.transitions.borrow_mut();
        if log.len() < TRANSITION_LOG {
            log.push(t);
        }
        t
    }

    /// Current health of `pair`.
    pub fn state(&self, pair: (u8, u8)) -> PairHealth {
        self.pairs.borrow().get(&pair).map(|s| s.health()).unwrap_or(PairHealth::Healthy)
    }

    /// Every tracked pair with its state, sorted by pair id.
    pub fn states(&self) -> Vec<((u8, u8), PairHealth)> {
        self.pairs.borrow().iter().map(|(&p, s)| (p, s.health())).collect()
    }

    /// Pairs currently routed over the host-acked fallback, sorted.
    pub fn fallback_pairs(&self) -> Vec<(u8, u8)> {
        self.pairs
            .borrow()
            .iter()
            .filter(|(_, s)| s.health().uses_fallback())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Whether `pair` must currently use the fallback path.
    pub fn is_fallback(&self, pair: (u8, u8)) -> bool {
        self.state(pair).uses_fallback()
    }

    /// The recorded transitions, in order (bounded at `TRANSITION_LOG`).
    pub fn transitions(&self) -> Vec<HealthTransition> {
        self.transitions.borrow().clone()
    }

    /// Times a pair was demoted / re-promoted, summed over all pairs.
    pub fn demotion_count(&self) -> u64 {
        self.pairs.borrow().values().map(|s| s.demote_count as u64).sum()
    }

    /// Track one posted-write burst result for `pair`. Returns `true`
    /// when the consecutive-lossy streak just reached `threshold` on a
    /// Healthy pair — the caller must then [`HealthTracker::demote`].
    pub fn note_ack_burst(&self, pair: (u8, u8), lossy: bool, threshold: u32) -> bool {
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.entry(pair).or_default();
        if !lossy {
            state.ack_streak = 0;
            return false;
        }
        state.ack_streak += 1;
        state.ack_streak >= threshold && state.health() == PairHealth::Healthy
    }

    /// Demote `pair` from the fast path. Escalates to Quarantined when
    /// this is the `quarantine_after`-th demotion; otherwise the pair is
    /// Degraded and its probe interval reset to `probe_interval`.
    /// Returns the transition (for tracing) — `None` if the pair was
    /// already off the fast path.
    pub fn demote(
        &self,
        now: Cycles,
        pair: (u8, u8),
        probe_interval: Cycles,
        quarantine_after: u32,
    ) -> Option<HealthTransition> {
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.entry(pair).or_default();
        if state.health() != PairHealth::Healthy {
            return None;
        }
        state.demote_count += 1;
        state.ack_streak = 0;
        state.probe_successes = 0;
        state.probe_interval = probe_interval;
        if state.demote_count >= quarantine_after {
            self.quarantines.inc();
            Some(self.transition(now, pair, state, PairHealth::Quarantined, "quarantine"))
        } else {
            Some(self.transition(now, pair, state, PairHealth::Degraded, "demote"))
        }
    }

    /// Claim the prober role for `pair`: `true` exactly once per
    /// demotion episode, so duplicate daemons are never spawned.
    pub fn try_start_prober(&self, pair: (u8, u8)) -> bool {
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.entry(pair).or_default();
        if state.prober_active || state.health() != PairHealth::Degraded {
            return false;
        }
        state.prober_active = true;
        true
    }

    /// The prober for `pair` retired (promotion, quarantine, or end of
    /// run).
    pub fn prober_done(&self, pair: (u8, u8)) {
        if let Some(state) = self.pairs.borrow_mut().get_mut(&pair) {
            state.prober_active = false;
        }
    }

    /// Next canary delay for `pair` (set by demote / probe outcomes).
    pub fn probe_interval(&self, pair: (u8, u8)) -> Cycles {
        self.pairs.borrow().get(&pair).map(|s| s.probe_interval).unwrap_or(0).max(1)
    }

    /// A canary is going out: Degraded → Probing. Returns the transition,
    /// or `None` if the pair is not Degraded (prober should retire).
    pub fn begin_probe(&self, now: Cycles, pair: (u8, u8)) -> Option<HealthTransition> {
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.get_mut(&pair)?;
        if state.health() != PairHealth::Degraded {
            return None;
        }
        self.probe_sent.inc();
        Some(self.transition(now, pair, state, PairHealth::Probing, "probe_start"))
    }

    /// The canary was acked. After `promote_after` consecutive successes
    /// the pair re-promotes (Probing → Healthy, returns the transition);
    /// otherwise it returns to Degraded silently (same episode, interval
    /// halved toward `base_interval` — healing pairs are probed faster).
    pub fn note_probe_ok(
        &self,
        now: Cycles,
        pair: (u8, u8),
        promote_after: u32,
        base_interval: Cycles,
    ) -> Option<HealthTransition> {
        self.probe_ok.inc();
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.get_mut(&pair).expect("probe outcome for untracked pair");
        state.probe_successes += 1;
        state.probe_interval = (state.probe_interval / 2).max(base_interval);
        if state.probe_successes >= promote_after {
            state.probe_successes = 0;
            self.promotions.inc();
            Some(self.transition(now, pair, state, PairHealth::Healthy, "promote"))
        } else {
            state.health = Some(PairHealth::Degraded);
            self.probing_pairs.sub(1);
            self.degraded_pairs.add(1);
            None
        }
    }

    /// The canary was lost: success count resets and the probe interval
    /// doubles (bounded by `backoff_max`) — the exponential hysteresis
    /// that keeps a pair from flapping under an ongoing storm. Returns
    /// the Probing → Degraded transition.
    pub fn note_probe_fail(
        &self,
        now: Cycles,
        pair: (u8, u8),
        backoff_max: Cycles,
    ) -> HealthTransition {
        self.probe_fail.inc();
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.get_mut(&pair).expect("probe outcome for untracked pair");
        state.probe_successes = 0;
        state.probe_interval = (state.probe_interval * 2).min(backoff_max);
        self.transition(now, pair, state, PairHealth::Degraded, "probe_fail")
    }

    /// Feed one observed transfer window into `pair`'s RT estimate
    /// (EWMA, α = 1/8, integer arithmetic — deterministic).
    pub fn note_rt_sample(&self, pair: (u8, u8), sample: Cycles) {
        let mut pairs = self.pairs.borrow_mut();
        let state = pairs.entry(pair).or_default();
        state.ewma_rt = if state.ewma_rt == 0 { sample } else { (7 * state.ewma_rt + sample) / 8 };
    }

    /// The adaptive retry timeout for `pair`: 4× the EWMA estimate,
    /// clamped to `[floor, ceiling]`; `fallback` (the static budget)
    /// while no sample has been observed yet.
    pub fn timeout_for(
        &self,
        pair: (u8, u8),
        fallback: Cycles,
        floor: Cycles,
        ceiling: Cycles,
    ) -> Cycles {
        let ewma = self.pairs.borrow().get(&pair).map(|s| s.ewma_rt).unwrap_or(0);
        if ewma == 0 {
            fallback
        } else {
            (4 * ewma).clamp(floor, ceiling)
        }
    }
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Cycles = 160_000;
    const CAP: Cycles = 16 * BASE;

    fn demoted_tracker(pair: (u8, u8)) -> HealthTracker {
        let t = HealthTracker::new();
        assert!(!t.note_ack_burst(pair, true, 3));
        assert!(!t.note_ack_burst(pair, true, 3));
        assert!(t.note_ack_burst(pair, true, 3));
        t.demote(0, pair, BASE, 5).expect("first demotion transitions");
        t
    }

    #[test]
    fn streak_resets_on_clean_burst() {
        let t = HealthTracker::new();
        assert!(!t.note_ack_burst((0, 1), true, 3));
        assert!(!t.note_ack_burst((0, 1), true, 3));
        assert!(!t.note_ack_burst((0, 1), false, 3));
        assert!(!t.note_ack_burst((0, 1), true, 3));
        assert_eq!(t.state((0, 1)), PairHealth::Healthy);
        assert!(t.fallback_pairs().is_empty());
    }

    #[test]
    fn demote_probe_promote_arc() {
        let t = demoted_tracker((0, 1));
        assert_eq!(t.state((0, 1)), PairHealth::Degraded);
        assert_eq!(t.fallback_pairs(), vec![(0, 1)]);
        assert!(t.try_start_prober((0, 1)));
        assert!(!t.try_start_prober((0, 1)), "duplicate prober claimed");
        // K = 2 successes re-promote.
        assert!(t.begin_probe(10, (0, 1)).is_some());
        assert!(t.note_probe_ok(11, (0, 1), 2, BASE).is_none());
        assert!(t.begin_probe(20, (0, 1)).is_some());
        let promoted = t.note_probe_ok(21, (0, 1), 2, BASE).expect("second success promotes");
        assert_eq!((promoted.from, promoted.to), (PairHealth::Probing, PairHealth::Healthy));
        assert_eq!(t.state((0, 1)), PairHealth::Healthy);
        assert!(t.fallback_pairs().is_empty());
        assert_eq!(t.promotions.get(), 1);
        assert_eq!(t.probe_ok.get(), 2);
        assert_eq!(t.degraded_pairs.get(), 0);
        assert_eq!(t.probing_pairs.get(), 0);
        // The transition log names the full arc in order.
        let triggers: Vec<_> = t.transitions().iter().map(|tr| tr.trigger).collect();
        assert_eq!(triggers, vec!["demote", "probe_start", "probe_start", "promote"]);
    }

    #[test]
    fn probe_failure_backs_off_exponentially_with_cap() {
        let t = demoted_tracker((2, 0));
        assert_eq!(t.probe_interval((2, 0)), BASE);
        for i in 0..10 {
            t.begin_probe(i, (2, 0)).unwrap();
            let tr = t.note_probe_fail(i, (2, 0), CAP);
            assert_eq!((tr.from, tr.to), (PairHealth::Probing, PairHealth::Degraded));
        }
        assert_eq!(t.probe_interval((2, 0)), CAP, "backoff must cap");
        assert_eq!(t.probe_fail.get(), 10);
        // A success halves the interval back toward base.
        t.begin_probe(99, (2, 0)).unwrap();
        t.note_probe_ok(99, (2, 0), 3, BASE);
        assert_eq!(t.probe_interval((2, 0)), CAP / 2);
        // Failure also reset the success count: one ok is not enough.
        assert_eq!(t.state((2, 0)), PairHealth::Degraded);
    }

    #[test]
    fn repeated_demotions_quarantine() {
        let t = HealthTracker::new();
        let pair = (1, 2);
        for episode in 0..3u64 {
            let tr = t.demote(episode, pair, BASE, 3).expect("healthy pair demotes");
            if episode < 2 {
                assert_eq!(tr.to, PairHealth::Degraded);
                // Heal it so the next demotion is possible.
                t.begin_probe(episode, pair).unwrap();
                t.note_probe_ok(episode, pair, 1, BASE).expect("K=1 promotes");
            } else {
                assert_eq!(tr.to, PairHealth::Quarantined, "third demotion quarantines");
            }
        }
        assert_eq!(t.quarantines.get(), 1);
        assert_eq!(t.quarantined_pairs.get(), 1);
        assert_eq!(t.state(pair), PairHealth::Quarantined);
        assert!(t.is_fallback(pair));
        // Quarantine is terminal: no probing, no re-demotion.
        assert!(t.begin_probe(99, pair).is_none());
        assert!(t.demote(99, pair, BASE, 3).is_none());
        assert!(!t.try_start_prober(pair));
    }

    #[test]
    fn adaptive_timeout_tracks_ewma_within_clamp() {
        let t = HealthTracker::new();
        let (fb, floor, ceil) = (48_000, 10_000, 80_000);
        // No samples: static fallback budget.
        assert_eq!(t.timeout_for((0, 1), fb, floor, ceil), fb);
        // Fast pair: clamped up to the floor.
        t.note_rt_sample((0, 1), 1000);
        assert_eq!(t.timeout_for((0, 1), fb, floor, ceil), floor);
        // Congested pair: clamped down to the ceiling.
        for _ in 0..64 {
            t.note_rt_sample((0, 1), 1_000_000);
        }
        assert_eq!(t.timeout_for((0, 1), fb, floor, ceil), ceil);
        // Mid-band: 4× the estimate, inside the clamp.
        let u = HealthTracker::new();
        u.note_rt_sample((3, 4), 9_000);
        assert_eq!(u.timeout_for((3, 4), fb, floor, ceil), 36_000);
        // EWMA converges deterministically: same samples, same estimate.
        let v = HealthTracker::new();
        for s in [9_000, 11_000, 10_000] {
            u.note_rt_sample((5, 6), s);
            v.note_rt_sample((5, 6), s);
        }
        assert_eq!(u.timeout_for((5, 6), fb, floor, ceil), v.timeout_for((5, 6), fb, floor, ceil));
    }

    #[test]
    fn states_and_log_are_sorted_and_bounded() {
        let t = HealthTracker::new();
        t.demote(0, (2, 0), BASE, 9).unwrap();
        t.demote(1, (0, 1), BASE, 9).unwrap();
        assert_eq!(
            t.states(),
            vec![((0, 1), PairHealth::Degraded), ((2, 0), PairHealth::Degraded)]
        );
        assert_eq!(t.fallback_pairs(), vec![(0, 1), (2, 0)]);
        assert_eq!(t.demotion_count(), 2);
        // The log bound holds under a hostile flap loop.
        for i in 0..2 * TRANSITION_LOG as u64 {
            t.begin_probe(i, (0, 1));
            t.note_probe_fail(i, (0, 1), CAP);
        }
        assert!(t.transitions().len() <= TRANSITION_LOG);
    }
}
