//! The host communication task (§3.2) and the off-chip fabric it provides.
//!
//! [`HostSide`] is what gets plugged into every device as its
//! [`RemoteFabric`]. It implements, in one place, everything the paper's
//! multithreaded driver daemon does:
//!
//! * **classification** of incoming requests into synchronization-flag
//!   and communication-buffer accesses (§3.1) — flags bypass all buffers
//!   and are forwarded with an immediate host acknowledge; buffer traffic
//!   is handled per the active [`CommScheme`];
//! * the **transparent routing** path of the 2012 prototype (per-32 B-line
//!   store-and-forward round trips) as the baseline;
//! * the FPGA **fast write-acknowledge** path with its instability;
//! * the host **write-combining buffer** (remote-put scheme);
//! * the **software cache** with prefetch and explicit consistency
//!   control (local-put / remote-get scheme);
//! * the **virtual DMA controller** (local-put / local-get scheme),
//!   with one daemon worker per device processing MMIO commands in order.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use des::bytes::{pooled, Bytes};
use des::channel::{unbounded, Receiver, Sender};
use des::faultplan::{checksum, FaultPlan, FaultSpec, MmioFault, TlpFault};
use des::fields;
use des::obs::Registry;
use des::stats::Counter;
use des::trace::{Category, Trace};
use des::{Cycles, Sim};
use pcie::{ConduitKind, ConduitTlp, FastAck, HostFabric, PcieModel};
use rcce::layout::{self, OFF_PAYLOAD};
use scc::device::SccDevice;
use scc::geometry::{DeviceId, GlobalCore, MpbAddr};
use scc::remote::{LocalBoxFuture, RegisterLine, RemoteFabric};
use scc::LINE_BYTES;

use crate::health::{HealthTracker, HealthTransition, PairHealth};
use crate::hostwcb::HostWcb;
use crate::mmio::{self, HostCmd};
use crate::schemes::CommScheme;
use crate::swcache::SwCache;

/// Tunables of the communication task.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// PCIe/SIF timing model.
    pub model: PcieModel,
    /// vDMA / prefetch transfer granularity in bytes.
    pub dma_chunk: usize,
    /// Host write-combining buffer granularity in bytes.
    pub wcb_granularity: usize,
    /// Enable the FPGA fast write-acknowledge path.
    pub fast_ack: bool,
    /// Seed for fault injection.
    pub seed: u64,
    /// Injected-fault plan specification. [`FaultSpec::none`] (the
    /// default) builds no plan at all: the zero-perturbation path.
    pub faults: FaultSpec,
    /// Host recovery layer (off by default, like the 2012 prototype).
    pub recovery: RecoveryConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            model: PcieModel::default(),
            dma_chunk: 1024,
            wcb_granularity: 1024,
            fast_ack: false,
            seed: 0,
            faults: FaultSpec::none(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Configuration of the host recovery layer. Disabled by default — the
/// 2012 prototype had no recovery and the baseline figures must stay
/// byte-identical. Zero timing fields mean "derive from the PCIe model"
/// when the host is built (see `retry_timeout_cycles` /
/// `retry_backoff_base` on [`PcieModel`] for the rationale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Master switch: tunnel checksums, retries, idempotent vDMA
    /// re-programming, and fast-ack fallback demotion.
    pub enabled: bool,
    /// Per-attempt timeout before a lost tunnel transfer is retried.
    pub timeout_cycles: Cycles,
    /// First-retry backoff; doubles per attempt.
    pub backoff_base: Cycles,
    /// Backoff cap.
    pub backoff_max: Cycles,
    /// Retry attempts before a transfer is abandoned (the loss is then
    /// surfaced, not silently dropped).
    pub max_retries: u32,
    /// Consecutive lossy posted-write bursts on one device pair before
    /// the commtask demotes the pair from remote-put to the host-acked
    /// path.
    pub fallback_threshold: u32,
    /// Base interval between health-probe canaries on a demoted pair
    /// (0 derives `probe_interval_base` from the model).
    pub probe_interval: Cycles,
    /// Cap of the exponential probe backoff (0 derives
    /// `probe_interval_max` from the model).
    pub probe_backoff_max: Cycles,
    /// Consecutive successful canaries before a demoted pair re-promotes
    /// to the fast path.
    pub promote_after: u32,
    /// Demotions of one pair before it is quarantined (permanent
    /// fallback, prober retired).
    pub quarantine_after: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: false,
            timeout_cycles: 0,
            backoff_base: 0,
            backoff_max: 0,
            max_retries: 6,
            fallback_threshold: 3,
            probe_interval: 0,
            probe_backoff_max: 0,
            promote_after: 3,
            quarantine_after: 5,
        }
    }
}

impl RecoveryConfig {
    /// Fill derived timing fields from the PCIe model and honor a
    /// `recovery=on` override riding the fault spec.
    fn resolve(mut self, model: &PcieModel, spec: &FaultSpec) -> Self {
        self.enabled |= spec.recovery;
        if self.timeout_cycles == 0 {
            self.timeout_cycles = model.retry_timeout_cycles();
        }
        if self.backoff_base == 0 {
            self.backoff_base = model.retry_backoff_base();
        }
        if self.backoff_max == 0 {
            self.backoff_max = 16 * self.backoff_base;
        }
        if self.probe_interval == 0 {
            self.probe_interval = model.probe_interval_base();
        }
        if self.probe_backoff_max == 0 {
            self.probe_backoff_max = model.probe_interval_max();
        }
        self
    }
}

/// Recovery-activity counters (`host.retry.*`, `host.fallback.*`).
#[derive(Clone, Default)]
pub struct RecoveryStats {
    /// Payload tunnel transfers retried.
    pub payload_retries: Counter,
    /// vDMA tunnel transfers retried.
    pub vdma_retries: Counter,
    /// Prefetch tunnel transfers retried.
    pub prefetch_retries: Counter,
    /// MMIO register lines re-issued after stuck or garbled programming.
    pub mmio_retries: Counter,
    /// Payload lines retransmitted after lost fast acks.
    pub fastack_retransmits: Counter,
    /// Corruptions caught by the tunnel checksum.
    pub checksum_detected: Counter,
    /// Transfers abandoned after exhausting retries.
    pub giveups: Counter,
    /// Duplicate vDMA programming writes suppressed (idempotent
    /// re-issue).
    pub vdma_dedup: Counter,
    /// Device pairs demoted from remote-put to the host-acked path.
    pub demotions: Counter,
    /// Writes served through the fallback path after a demotion.
    pub fallback_writes: Counter,
}

impl RecoveryStats {
    /// Surface the counters in `registry` under `host.retry.*` and
    /// `host.fallback.*`.
    pub fn register(&self, registry: &Registry) {
        let retry = registry.scoped("host").scoped("retry");
        retry.adopt_counter("payload", &self.payload_retries);
        retry.adopt_counter("vdma", &self.vdma_retries);
        retry.adopt_counter("prefetch", &self.prefetch_retries);
        retry.adopt_counter("mmio", &self.mmio_retries);
        retry.adopt_counter("fastack_lines", &self.fastack_retransmits);
        retry.adopt_counter("checksum_detected", &self.checksum_detected);
        retry.adopt_counter("giveups", &self.giveups);
        retry.adopt_counter("vdma_dedup", &self.vdma_dedup);
        let fallback = registry.scoped("host").scoped("fallback");
        fallback.adopt_counter("demotions", &self.demotions);
        fallback.adopt_counter("writes", &self.fallback_writes);
    }
}

/// Counters the experiments inspect.
#[derive(Clone, Default)]
pub struct HostStats {
    /// Routed per-line round trips served.
    pub routed_lines: Counter,
    /// Flag writes forwarded.
    pub flag_forwards: Counter,
    /// vDMA copy commands executed.
    pub vdma_ops: Counter,
    /// Cache prefetch (update) operations executed.
    pub cache_updates: Counter,
    /// Direct small-message writes forwarded.
    pub direct_writes: Counter,
}

impl HostStats {
    /// Surface the counters in `registry` under `host.*`. Field access
    /// (`host.stats.routed_lines.get()`) keeps working; the registry
    /// shares the same handles.
    pub fn register(&self, registry: &Registry) {
        let host = registry.scoped("host");
        host.adopt_counter("routed_lines", &self.routed_lines);
        host.adopt_counter("flag_forwards", &self.flag_forwards);
        host.adopt_counter("vdma_ops", &self.vdma_ops);
        host.adopt_counter("cache_updates", &self.cache_updates);
        host.adopt_counter("direct_writes", &self.direct_writes);
    }
}

/// The communication task and fabric.
pub struct HostSide {
    sim: Sim,
    /// PCIe ports and host memory.
    pub fabric: HostFabric,
    /// Active inter-device communication scheme.
    pub scheme: CommScheme,
    /// The software cache (local-put / remote-get).
    pub cache: SwCache,
    /// The host write-combining buffer (remote-put).
    pub wcb: HostWcb,
    /// Fast write-ack emulation state.
    pub fastack: FastAck,
    /// Operation counters.
    pub stats: HostStats,
    /// Recovery-activity counters.
    pub rstats: RecoveryStats,
    /// Resolved recovery configuration.
    pub recovery: RecoveryConfig,
    /// The installed fault plan (`None` on the zero-perturbation path).
    faults: Option<Rc<FaultPlan>>,
    /// Per-pair health FSM, probe schedule, and RT estimates (the
    /// self-healing plane — DESIGN.md §5h). Always constructed; its
    /// metrics register only when a fault plan is active, and probers
    /// only spawn after a demotion, so fault-free runs are untouched.
    pub health: HealthTracker,
    /// Per-destination-device delivery chain: each posted delivery
    /// (payload forward or flag forward) swaps in a fresh latch and waits
    /// on its predecessor's, so installs happen in issue order even when
    /// recovery retries delay one of them mid-flight.
    delivery_chain: Vec<RefCell<Rc<des::sync::Latch>>>,
    /// Pre-interned per-device trace labels (`"commtask-d<N>"`): the hot
    /// forwarding paths clone an `Rc` instead of formatting per event.
    commtask_labels: Vec<Rc<str>>,
    /// Per-device commtask busy cycles (`host.commtask.d<N>.busy_cycles`):
    /// virtual time each daemon worker spends executing queued commands,
    /// accumulated once per command so the hot path stays allocation-free.
    commtask_busy: Vec<Counter>,
    /// Reusable scratch for WCB flush batches (drained immediately after
    /// each [`HostWcb::append_into`], never held across an await).
    wcb_ready: RefCell<Vec<crate::hostwcb::PendingRun>>,
    trace: Trace,
    cfg: HostConfig,
    me: Weak<HostSide>,
    devices: RefCell<Vec<Weak<SccDevice>>>,
    registered: RefCell<std::collections::HashMap<GlobalCore, (u16, usize)>>,
    workers: RefCell<Vec<Sender<HostCmd>>>,
    /// Per-device doorbell queues: the host side of the latency-stamped
    /// MMIO boundary (DESIGN.md §5i, "multi-group vSCC"). Cores enqueue
    /// stamped conduit TLPs; the `mmio-d<N>` actor services each at its
    /// stamped arrival, so no control signal crosses the host↔device
    /// boundary in under one `PcieModel::mmio_crossing_cycles()`.
    doorbells: RefCell<Vec<Sender<DoorbellMsg>>>,
}

/// A boundary message on a device's doorbell queue.
enum DoorbellMsg {
    /// Posted doorbell write: decode and dispatch the register line at
    /// its stamped arrival.
    Write(ConduitTlp<RegisterLine>),
    /// Non-posted status read: answer with the packed status line,
    /// stamped back through the ingress link. The reply carries the
    /// answer's arrival time at the reading core.
    Read(ConduitTlp<GlobalCore>, Sender<(Cycles, [u8; LINE_BYTES])>),
}

impl HostSide {
    /// Create the host side for `n_devices` devices with `scheme` active,
    /// then [`HostSide::attach`] the devices. Metrics land in a private
    /// registry and tracing is off; see [`HostSide::with_obs`].
    pub fn new(sim: &Sim, n_devices: u8, scheme: CommScheme, cfg: HostConfig) -> Rc<Self> {
        Self::with_obs(sim, n_devices, scheme, cfg, &Registry::new(), Trace::disabled())
    }

    /// Like [`HostSide::new`], but reporting into a shared `registry`
    /// (`host.*`, `pcie.*` names) and emitting structured events into
    /// `trace` ([`Category::Pcie`] / [`Category::Vdma`]).
    pub fn with_obs(
        sim: &Sim,
        n_devices: u8,
        scheme: CommScheme,
        cfg: HostConfig,
        registry: &Registry,
        trace: Trace,
    ) -> Rc<Self> {
        let fabric = HostFabric::new(cfg.model.clone(), n_devices);
        fabric.register_metrics(registry);
        let fast = cfg.fast_ack || scheme == CommScheme::RemotePutHwAck;
        let stats = HostStats::default();
        stats.register(registry);
        let rstats = RecoveryStats::default();
        rstats.register(registry);
        let recovery = cfg.recovery.clone().resolve(&cfg.model, &cfg.faults);
        let health = HealthTracker::new();
        // An inactive spec builds no plan: every fault hook stays on its
        // zero-cost `None` path and no RNG stream is ever created. The
        // health metrics follow the same rule — registered only when a
        // plan is active, so fault-free snapshots stay byte-identical.
        let faults = cfg.faults.is_active().then(|| {
            let plan = Rc::new(FaultPlan::new(cfg.faults.clone(), trace.clone()));
            plan.register_metrics(registry);
            health.register(registry);
            fabric.set_faults(&plan);
            plan
        });
        let fastack = FastAck::new(fast, n_devices as usize, cfg.seed);
        if let Some(plan) = &faults {
            fastack.attach_plan(plan.clone());
        }
        let commtask_busy: Vec<Counter> = (0..n_devices)
            .map(|d| {
                let c = Counter::new();
                registry
                    .scoped("host")
                    .scoped("commtask")
                    .scoped(&format!("d{d}"))
                    .adopt_counter("busy_cycles", &c);
                c
            })
            .collect();
        Rc::new_cyclic(|me| HostSide {
            sim: sim.clone(),
            fabric,
            scheme,
            cache: SwCache::with_registry(registry),
            wcb: HostWcb::with_registry(cfg.wcb_granularity, registry),
            fastack,
            stats,
            rstats,
            recovery,
            faults,
            health,
            delivery_chain: (0..n_devices)
                .map(|_| RefCell::new(Rc::new(des::sync::Latch::new(0))))
                .collect(),
            commtask_labels: (0..n_devices)
                .map(|d| trace.intern(&format!("commtask-d{d}")))
                .collect(),
            commtask_busy,
            wcb_ready: RefCell::new(Vec::new()),
            trace,
            cfg,
            me: me.clone(),
            devices: RefCell::new(Vec::new()),
            registered: RefCell::new(std::collections::HashMap::new()),
            workers: RefCell::new(Vec::new()),
            doorbells: RefCell::new(Vec::new()),
        })
    }

    /// The structured trace host events go to.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Wire the devices to this host: installs `self` as each device's
    /// fabric and spawns one daemon worker per device.
    pub fn attach(self: &Rc<Self>, devices: &[Rc<SccDevice>]) {
        *self.devices.borrow_mut() = devices.iter().map(Rc::downgrade).collect();
        let mut workers = self.workers.borrow_mut();
        let mut doorbells = self.doorbells.borrow_mut();
        for dev in devices {
            dev.set_fabric(self.clone() as Rc<dyn RemoteFabric>);
            let (tx, rx) = unbounded();
            workers.push(tx);
            let host = self.clone();
            let id = dev.id;
            self.sim.spawn_daemon(format!("commtask-d{}", id.0), async move {
                host.worker_loop(id, rx).await;
            });
            // The host end of the device's MMIO conduit: services each
            // stamped doorbell/status TLP at its arrival time.
            let (tx, rx) = unbounded();
            doorbells.push(tx);
            let host = self.clone();
            self.sim.spawn_daemon(format!("mmio-d{}", id.0), async move {
                host.doorbell_loop(id, rx).await;
            });
        }
    }

    /// The pre-interned trace label of device `d`'s comm task.
    fn commtask_label(&self, d: u8) -> Rc<str> {
        self.commtask_labels[d as usize].clone()
    }

    fn device(&self, id: DeviceId) -> Rc<SccDevice> {
        self.devices.borrow()[id.0 as usize].upgrade().expect("device dropped while host running")
    }

    /// The configured DMA chunk size.
    pub fn dma_chunk(&self) -> usize {
        self.cfg.dma_chunk
    }

    fn is_payload(addr: MpbAddr) -> bool {
        addr.offset >= OFF_PAYLOAD
    }

    /// A registered buffer covers `addr` (classification table, §3.1).
    pub fn is_registered(&self, addr: MpbAddr, len: usize) -> bool {
        self.registered
            .borrow()
            .get(&addr.owner)
            .map(|&(off, rlen)| {
                addr.offset >= off && addr.offset as usize + len <= off as usize + rlen
            })
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Daemon workers
    // ------------------------------------------------------------------

    async fn worker_loop(self: Rc<Self>, device: DeviceId, rx: Receiver<HostCmd>) {
        let busy = self.commtask_busy[device.0 as usize].clone();
        let mut last_vdma: Option<HostCmd> = None;
        while let Some(cmd) = rx.recv().await {
            let cmd_start = self.sim.now();
            // Injected commtask stall: the daemon thread is descheduled for
            // the rest of the window before it touches the command.
            if let Some(plan) = &self.faults {
                if let Some(until) = plan.stall_until(self.sim.now()) {
                    self.sim.delay_until(until).await;
                }
            }
            if matches!(cmd, HostCmd::VdmaStart { .. }) {
                // Idempotent re-programming: a retried register write whose
                // original did land shows up as two identical consecutive
                // commands (seq/drain_seq make distinct transfers differ);
                // execute once.
                if self.recovery.enabled && last_vdma.as_ref() == Some(&cmd) {
                    self.rstats.vdma_dedup.inc();
                    continue;
                }
                last_vdma = Some(cmd.clone());
            }
            match cmd {
                HostCmd::CacheUpdate { owner, offset, len, flow } => {
                    self.do_cache_update(owner, offset, len, flow).await;
                }
                HostCmd::VdmaStart {
                    src,
                    src_off,
                    dst,
                    dst_off,
                    len,
                    seq,
                    src_rank,
                    drain_seq,
                    flow,
                } => {
                    self.do_vdma(src, src_off, dst, dst_off, len, seq, src_rank, drain_seq, flow)
                        .await;
                }
                // Handled synchronously at MMIO arrival; never queued.
                HostCmd::CacheInvalidate { .. } | HostCmd::RegisterBuffer { .. } => {}
            }
            busy.add(self.sim.now() - cmd_start);
        }
    }

    /// The host end of one device's MMIO conduit: each stamped control
    /// TLP becomes visible here at its arrival time, never earlier.
    /// Per-device FIFO servicing mirrors the egress link's FIFO wire, so
    /// doorbells from one device decode in issue order.
    async fn doorbell_loop(self: Rc<Self>, device: DeviceId, rx: Receiver<DoorbellMsg>) {
        while let Some(msg) = rx.recv().await {
            match msg {
                DoorbellMsg::Write(tlp) => {
                    if self.sim.now() < tlp.arrival {
                        self.sim.delay_until(tlp.arrival).await;
                    }
                    self.service_doorbell(tlp.payload).await;
                }
                DoorbellMsg::Read(tlp, reply) => {
                    if self.sim.now() < tlp.arrival {
                        self.sim.delay_until(tlp.arrival).await;
                    }
                    // Software answer: the daemon packs the status line,
                    // then stamps it back through the ingress link.
                    self.sim.delay(self.cfg.model.sw_answer_cycles).await;
                    let data = scc::remote::pack_vdma_line(
                        self.stats.vdma_ops.get(),
                        self.stats.cache_updates.get(),
                        self.stats.flag_forwards.get(),
                        self.stats.routed_lines.get(),
                    );
                    let port = self.fabric.port(device);
                    let (ans, _) = port.stamp_to_device(
                        &self.sim,
                        ConduitKind::StatusAnswer,
                        LINE_BYTES as u64,
                        data,
                    );
                    let _ = reply.try_send((ans.arrival, ans.payload));
                }
            }
        }
    }

    /// Decode and dispatch one doorbell line at its host-side arrival:
    /// the fault/retry machinery, the register decode, and the commtask
    /// dispatch — everything that used to run inline in the issuing
    /// core's task before the boundary was latency-stamped.
    async fn service_doorbell(&self, line: RegisterLine) {
        let sim = self.sim.clone();
        let mut line = line;
        let port = self.fabric.port(line.src.device);
        if let Some(plan) = &self.faults {
            let pristine = line.clone();
            let mut attempt = 0u32;
            loop {
                match plan.mmio_fault(sim.now()) {
                    None => break,
                    Some(MmioFault::Stuck) => {
                        if !self.recovery.enabled {
                            // The register never latched; the command is
                            // simply gone (the posted write vanished).
                            return;
                        }
                    }
                    Some(MmioFault::Garble) => {
                        plan.garble(&mut line.data);
                        // A pre-recovery host executes whatever the
                        // garbled line decodes to; the guard word only
                        // matters once the recovery layer checks it.
                        if !self.recovery.enabled || mmio::verify(&line) {
                            break;
                        }
                    }
                }
                attempt += 1;
                if attempt > self.recovery.max_retries {
                    self.rstats.giveups.inc();
                    return;
                }
                // Detected by status-register readback: charge the
                // readback round trip plus the line re-issue.
                self.rstats.mmio_retries.inc();
                self.trace.instant_f(
                    sim.now(),
                    Category::Fault,
                    "mmio_retry",
                    None,
                    || self.commtask_label(line.src.device.0),
                    || fields![line = line.line as u64, attempt = attempt as u64],
                );
                sim.delay(self.cfg.model.host_answered_round_trip()).await;
                port.egress.transfer(&sim, LINE_BYTES as u64).await;
                line = pristine.clone();
            }
        }
        let Some(cmd) = mmio::decode(&line) else {
            // Writes to undefined register lines are absorbed like
            // scratch MMIO space (and still cost the transaction).
            return;
        };
        let kind = match &cmd {
            HostCmd::VdmaStart { .. } => "mmio_vdma_start",
            HostCmd::CacheUpdate { .. } => "mmio_cache_update",
            HostCmd::CacheInvalidate { .. } => "mmio_cache_invalidate",
            HostCmd::RegisterBuffer { .. } => "mmio_register_buffer",
        };
        let flow = match &cmd {
            HostCmd::VdmaStart { flow, .. } | HostCmd::CacheUpdate { flow, .. } => *flow,
            _ => None,
        };
        self.trace.instant_f(
            sim.now(),
            Category::Vdma,
            kind,
            flow,
            || self.commtask_label(line.src.device.0),
            || fields![core = line.src.core.0 as u64],
        );
        match cmd {
            HostCmd::RegisterBuffer { owner, offset, len } => {
                self.registered.borrow_mut().insert(owner, (offset, len));
            }
            HostCmd::CacheInvalidate { owner, offset, len } => {
                self.cache.invalidate(owner, offset, len);
            }
            HostCmd::CacheUpdate { owner, .. } => {
                // Mark in flight *now* so reads ordered after this
                // doorbell's arrival wait for the prefetch.
                self.cache.begin_update(owner);
                self.workers.borrow()[line.src.device.0 as usize]
                    .try_send(cmd)
                    .expect("worker queue is unbounded");
            }
            HostCmd::VdmaStart { .. } => {
                self.workers.borrow()[line.src.device.0 as usize]
                    .try_send(cmd)
                    .expect("worker queue is unbounded");
            }
        }
    }

    fn monitor_of(&self, id: DeviceId) -> Option<Rc<dyn scc::device::MpbWriteMonitor>> {
        self.device(id).monitor()
    }

    /// Subject one tunnel transfer toward (`to_device`) or from `dev` to
    /// the installed fault plan, and — when the recovery layer is on —
    /// protect it with a checksum and bounded exponential-backoff
    /// retries on deterministic virtual timers.
    ///
    /// Returns the bytes as delivered: a shared view of the originals
    /// (the clean path never copies), a garbled CoW copy (an unprotected
    /// transfer delivers whatever the wire produced), or `None` when the
    /// transfer is lost for good — dropped without recovery, or retries
    /// exhausted. Without a plan this is a zero-cost pass-through.
    ///
    /// `pair` keys the adaptive retry timeout: once the health tracker
    /// has RT samples for the pair, its EWMA-derived budget (clamped to
    /// the model's floor/ceiling) replaces the static 4×RT default.
    async fn tunnel_transfer(
        &self,
        dev: DeviceId,
        pair: (u8, u8),
        to_device: bool,
        data: &Bytes,
        flow: Option<u64>,
        retries: &Counter,
    ) -> Option<Bytes> {
        des::audit::record_payload(self.sim.now(), data);
        let Some(plan) = &self.faults else {
            return Some(data.clone());
        };
        let sim = &self.sim;
        let port = self.fabric.port(dev);
        let want = checksum(data);
        let mut attempt = 0u32;
        loop {
            port.fault_gate(sim).await;
            match plan.tlp_fault(sim.now(), flow) {
                None => return Some(data.clone()),
                Some(TlpFault::Delay(extra)) => {
                    sim.delay(extra).await;
                    return Some(data.clone());
                }
                Some(TlpFault::Drop) => {
                    if !self.recovery.enabled {
                        // A vanished posted write: nobody notices here;
                        // the receiver hangs on its flag (or the payload
                        // check fails) downstream.
                        return None;
                    }
                    // Nothing arrives; the per-request timer expires
                    // (adaptive per-pair budget once samples exist).
                    sim.delay(self.health.timeout_for(
                        pair,
                        self.recovery.timeout_cycles,
                        self.cfg.model.adaptive_timeout_floor(),
                        self.cfg.model.adaptive_timeout_ceiling(),
                    ))
                    .await;
                }
                Some(TlpFault::Corrupt) => {
                    let mut wire = data.clone();
                    plan.garble(wire.make_mut());
                    if !self.recovery.enabled || checksum(&wire) == want {
                        // Unprotected transfers deliver the garbled bytes.
                        return Some(wire);
                    }
                    self.rstats.checksum_detected.inc();
                }
            }
            attempt += 1;
            if attempt > self.recovery.max_retries {
                self.rstats.giveups.inc();
                self.trace.instant_f(
                    sim.now(),
                    Category::Fault,
                    "retry_giveup",
                    flow,
                    || "host-recovery",
                    || fields![device = dev.0 as u64, bytes = data.len() as u64],
                );
                return None;
            }
            retries.inc();
            self.trace.instant_f(
                sim.now(),
                Category::Fault,
                "retry",
                flow,
                || "host-recovery",
                || fields![attempt = attempt as u64, bytes = data.len() as u64],
            );
            let backoff =
                (self.recovery.backoff_base << (attempt - 1)).min(self.recovery.backoff_max);
            sim.delay(backoff).await;
            // The re-sent bytes occupy the wire again.
            let arrival = if to_device {
                port.ingress.reserve(sim, data.len() as u64)
            } else {
                port.egress.reserve(sim, data.len() as u64)
            };
            sim.delay_until(arrival).await;
        }
    }

    /// Prefetch `owner`'s MPB range into the software cache (DMA
    /// device → host), streaming chunk by chunk so overlapping reads can
    /// be answered "in parallel after a warmup phase" (§3.2).
    async fn do_cache_update(&self, owner: GlobalCore, offset: u16, len: usize, flow: Option<u64>) {
        let sim = &self.sim;
        self.trace.begin_f(
            sim.now(),
            Category::Pcie,
            "prefetch",
            flow,
            || self.commtask_label(owner.device.0),
            || fields![core = owner.core.0 as u64, offset = offset as u64, bytes = len as u64],
        );
        let port = self.fabric.port(owner.device);
        let mut installed: Vec<Bytes> = Vec::with_capacity(len.div_ceil(self.cfg.dma_chunk.max(1)));
        for (lo, hi) in rcce::protocol::chunk_ranges(len, self.cfg.dma_chunk) {
            port.egress.transfer(sim, self.cfg.model.host_dma_bytes((hi - lo) as u64)).await;
            self.fabric.host_mem.reserve(sim, (hi - lo) as u64);
            let buf =
                self.device(owner.device).mpb(owner.core).read_bytes(offset as usize + lo, hi - lo);
            let delivered = match self
                .tunnel_transfer(
                    owner.device,
                    (owner.device.0, owner.device.0),
                    false,
                    &buf,
                    flow,
                    &self.rstats.prefetch_retries,
                )
                .await
            {
                Some(bytes) => bytes,
                None if self.recovery.enabled => {
                    // Retries exhausted: installing a hole would panic the
                    // reader on "range valid right after update" — convert
                    // the hang into a diagnosed abort instead.
                    self.sim.abort(format!(
                        "prefetch of {} bytes from d{}c{} lost (retries exhausted)",
                        hi - lo,
                        owner.device.0,
                        owner.core.0
                    ));
                    std::future::pending::<()>().await;
                    unreachable!()
                }
                // Honest loss: the DMA engine installs whatever its buffer
                // held — zeros — and the divergence surfaces downstream.
                None => pooled(hi - lo).freeze(),
            };
            self.cache.install(owner, offset + lo as u16, &delivered);
            installed.push(delivered);
        }
        // Consistency audit at the only point the cache promises it: right
        // as the update completes, the installed range must equal the
        // device's MPB (a divergence means the owner overwrote the buffer
        // mid-prefetch — torn data under relaxed consistency).
        if let Some(m) = self.monitor_of(owner.device) {
            let mut whole = pooled(len);
            let mut pos = 0;
            for chunk in &installed {
                whole[pos..pos + chunk.len()].copy_from_slice(chunk);
                pos += chunk.len();
            }
            let mut actual = pooled(len);
            self.device(owner.device).mpb(owner.core).read(offset as usize, &mut actual);
            m.cache_read_check(owner, offset, &whole, &actual, flow);
        }
        self.cache.finish_update(owner);
        self.stats.cache_updates.inc();
        self.trace.end_f(sim.now(), Category::Pcie, "prefetch", flow, || {
            self.commtask_label(owner.device.0)
        });
    }

    /// Execute one vDMA copy: `src` MPB → host → `dst` MPB, pipelined at
    /// the DMA chunk granularity; on completion write `seq` into
    /// `sent[src_rank]` at the destination (data-available signal).
    #[allow(clippy::too_many_arguments)]
    async fn do_vdma(
        &self,
        src: GlobalCore,
        src_off: u16,
        dst: GlobalCore,
        dst_off: u16,
        len: usize,
        seq: u8,
        src_rank: u8,
        drain_seq: u8,
        flow: Option<u64>,
    ) {
        assert_ne!(src.device, dst.device, "vDMA serves inter-device copies only");
        let sim = &self.sim;
        self.trace.begin_f(
            sim.now(),
            Category::Vdma,
            "vdma",
            flow,
            || self.commtask_label(src.device.0),
            || {
                fields![
                    src_dev = src.device.0 as u64,
                    dst_dev = dst.device.0 as u64,
                    bytes = len as u64,
                    seq = seq as u64
                ]
            },
        );
        // Descriptor setup in the daemon before any wire activity.
        sim.delay(self.cfg.model.dma_descriptor_cycles).await;
        let sport = self.fabric.port(src.device);
        let dport = self.fabric.port(dst.device);
        // The sender's slot is stable until the receiver re-grants it, so
        // the bytes can be captured up front; timing comes from the link
        // reservations. Drain (device→host) and delivery (host→device)
        // chunks interleave through the FIFO reservations — the
        // communication task's pipelining effect (§4.1).
        let data = self.device(src.device).mpb(src.core).read_bytes(src_off as usize, len);
        let wire_start = sim.now();
        let mut drain_arrival = sim.now();
        let mut last_arrival = sim.now();
        for (lo, hi) in rcce::protocol::chunk_ranges(len, self.cfg.dma_chunk) {
            let wire = self.cfg.model.host_dma_bytes((hi - lo) as u64);
            drain_arrival = sport.egress.reserve(sim, wire);
            self.fabric.host_mem.reserve(sim, (hi - lo) as u64);
            last_arrival = dport.ingress.reserve(sim, wire);
        }
        // Raise the sender's drain flag the moment the source slot has
        // been pulled to the host: the core busy-waits on it before
        // reusing the slot (§3.3).
        {
            let host = self.rc_self();
            let sim2 = sim.clone();
            sim.spawn_named("vdma-drain-flag", async move {
                sim2.delay_until(drain_arrival).await;
                let arr = host.fabric.port(src.device).ingress.reserve(&sim2, LINE_BYTES as u64);
                sim2.delay_until(arr).await;
                if let Some(m) = host.monitor_of(src.device) {
                    let a = MpbAddr::new(src, layout::OFF_VDMA_DONE);
                    m.host_write(src, a, &[drain_seq], flow);
                }
                host.device(src.device)
                    .mpb(src.core)
                    .write_byte(layout::OFF_VDMA_DONE as usize, drain_seq);
                host.trace.instant_f(
                    sim2.now(),
                    Category::Vdma,
                    "drain_flag",
                    flow,
                    || host.commtask_label(src.device.0),
                    || fields![seq = drain_seq as u64],
                );
            });
        }
        // The stretch between programming and the last chunk's arrival is
        // wire occupancy (queueing included): the critical-path profiler
        // attributes it to the PCIe wire, not the enclosing vDMA span.
        self.trace.begin_f(
            wire_start,
            Category::Pcie,
            "pcie_wire",
            flow,
            || self.commtask_label(src.device.0),
            || fields![bytes = len as u64],
        );
        sim.delay_until(last_arrival.max(drain_arrival)).await;
        self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, || {
            self.commtask_label(src.device.0)
        });
        if self.faults.is_some() {
            // Feed the pair's RT estimate with the measured wire window
            // (faulty runs only: the fault-free path stays untouched).
            self.health.note_rt_sample((src.device.0, dst.device.0), sim.now() - wire_start);
        }
        let delivered = self
            .tunnel_transfer(
                dst.device,
                (src.device.0, dst.device.0),
                true,
                &data,
                flow,
                &self.rstats.vdma_retries,
            )
            .await;
        if delivered.is_none() && self.recovery.enabled {
            // Retries exhausted: deliver nothing — neither payload nor
            // completion flag — so the receiver's poll watchdog turns the
            // loss into a diagnosed timeout instead of a torn message.
            self.trace.end_f(sim.now(), Category::Vdma, "vdma", flow, || {
                self.commtask_label(src.device.0)
            });
            return;
        }
        if let Some(data) = &delivered {
            if let Some(m) = self.monitor_of(dst.device) {
                m.host_write(src, MpbAddr::new(dst, dst_off), data, flow);
            }
            self.device(dst.device).mpb(dst.core).write(dst_off as usize, data);
        }
        // `delivered == None` without recovery: the payload vanished but
        // the posted completion flag below still lands — the silent
        // corruption the paper's prototype could not rule out.
        // Completion flag travels as one more line on the same port.
        let flag_arrival = dport.ingress.reserve(sim, LINE_BYTES as u64);
        sim.delay_until(flag_arrival).await;
        let flag_addr = layout::sent_flag(dst, src_rank as usize);
        if let Some(m) = self.monitor_of(dst.device) {
            m.host_write(src, flag_addr, &[seq], flow);
        }
        self.device(dst.device).mpb(dst.core).write_byte(flag_addr.offset as usize, seq);
        self.stats.vdma_ops.inc();
        self.trace
            .end_f(sim.now(), Category::Vdma, "vdma", flow, || self.commtask_label(src.device.0));
    }

    /// Forward a classified flag write to its device, preserving order
    /// behind any buffered WCB data for the same destination.
    /// Take a ticket on the destination device's delivery chain. The
    /// returned `prev` latch opens once every earlier posted delivery to
    /// `dev` has installed its bytes; `next` must be counted down after
    /// this delivery installs its own. Clean runs never block on `prev`:
    /// the ingress link is FIFO, so arrivals are strictly monotone in
    /// issue order and the predecessor has always finished (the latch's
    /// fast path returns without yielding — zero perturbation). Under
    /// fault recovery the chain keeps a retried, delayed payload from
    /// being overtaken by a later flag forward, which would hand the
    /// receiver a valid flag over stale payload bytes.
    fn delivery_ticket(&self, dev: DeviceId) -> (Rc<des::sync::Latch>, Rc<des::sync::Latch>) {
        let next = Rc::new(des::sync::Latch::new(1));
        let prev = self.delivery_chain[dev.0 as usize].replace(next.clone());
        (prev, next)
    }

    fn forward_flag(
        self: &Rc<Self>,
        src: GlobalCore,
        addr: MpbAddr,
        data: Bytes,
        flow: Option<u64>,
    ) {
        let sim = self.sim.clone();
        let host = self.clone();
        self.stats.flag_forwards.inc();
        self.trace.instant_f(
            sim.now(),
            Category::Pcie,
            "flag_forward",
            flow,
            || self.commtask_label(addr.owner.device.0),
            || fields![core = addr.owner.core.0 as u64, offset = addr.offset as u64],
        );
        // Ordering: drain WCB runs for this destination *before* reserving
        // the flag's slot on the ingress link.
        let runs = if self.scheme == CommScheme::RemotePutWcb {
            self.wcb.drain(addr.owner)
        } else {
            Vec::new()
        };
        let port = self.fabric.port(addr.owner.device);
        let mut run_arrivals = Vec::with_capacity(runs.len());
        for run in &runs {
            self.fabric.host_mem.reserve(&sim, run.data.len() as u64);
            run_arrivals.push(port.ingress.reserve(&sim, run.data.len() as u64));
        }
        let flag_arrival = port.ingress.reserve(&sim, data.len().max(1) as u64);
        let (prev, next) = self.delivery_ticket(addr.owner.device);
        self.sim.spawn_named("flag-forward", async move {
            prev.wait().await;
            let dev = host.device(addr.owner.device);
            let monitor = host.monitor_of(addr.owner.device);
            for (run, arr) in runs.into_iter().zip(run_arrivals) {
                sim.delay_until(arr).await;
                if let Some(m) = &monitor {
                    m.host_write(src, MpbAddr::new(addr.owner, run.offset), &run.data, flow);
                }
                dev.mpb(addr.owner.core).write(run.offset as usize, &run.data);
            }
            sim.delay_until(flag_arrival).await;
            if let Some(m) = &monitor {
                m.host_write(src, addr, &data, flow);
            }
            dev.mpb(addr.owner.core).write(addr.offset as usize, &data);
            next.count_down();
        });
    }

    /// Deliver a payload write (posted fast path): reserve the target
    /// ingress now, install the bytes at arrival.
    fn deliver_payload(
        self: &Rc<Self>,
        src: GlobalCore,
        addr: MpbAddr,
        data: Bytes,
        flow: Option<u64>,
    ) {
        let sim = self.sim.clone();
        let host = self.clone();
        let pair = (src.device.0, addr.owner.device.0);
        let issue = sim.now();
        self.fabric.host_mem.reserve(&sim, data.len() as u64);
        let arrival = self.fabric.port(addr.owner.device).ingress.reserve(&sim, data.len() as u64);
        if self.faults.is_some() {
            // Observed transfer window (queueing + wire) feeds the pair's
            // adaptive-timeout EWMA; fault-free runs never sample.
            self.health.note_rt_sample(pair, arrival - issue);
        }
        let (prev, next) = self.delivery_ticket(addr.owner.device);
        self.sim.spawn_named("payload-forward", async move {
            prev.wait().await;
            sim.delay_until(arrival).await;
            let Some(bytes) = host
                .tunnel_transfer(
                    addr.owner.device,
                    pair,
                    true,
                    &data,
                    flow,
                    &host.rstats.payload_retries,
                )
                .await
            else {
                // Lost for good. The chain latch is deliberately left
                // closed: a later flag forward must never land over the
                // missing payload (that would be silent corruption), so
                // the receiver sees nothing and its poll watchdog — or
                // the deadlock detector — diagnoses the loss.
                return;
            };
            if let Some(m) = host.monitor_of(addr.owner.device) {
                m.host_write(src, addr, &bytes, flow);
            }
            host.device(addr.owner.device).mpb(addr.owner.core).write(addr.offset as usize, &bytes);
            next.count_down();
        });
    }

    /// One fully transparent routed line round trip (the 2012 baseline).
    async fn routed_round_trip(&self, requester: DeviceId, target: DeviceId, flow: Option<u64>) {
        let sim = &self.sim;
        let m = &self.cfg.model;
        let rport = self.fabric.port(requester);
        let tport = self.fabric.port(target);
        // Request: requester SIF out -> daemon -> target SIF in.
        rport.egress.transfer(sim, LINE_BYTES as u64).await;
        sim.delay(m.sw_forward_cycles).await;
        tport.ingress.transfer(sim, LINE_BYTES as u64).await;
        // Response: target SIF out -> daemon -> requester SIF in.
        tport.egress.transfer(sim, LINE_BYTES as u64).await;
        sim.delay(m.sw_forward_cycles).await;
        rport.ingress.transfer(sim, LINE_BYTES as u64).await;
        self.stats.routed_lines.inc();
        self.trace.instant_f(
            sim.now(),
            Category::Pcie,
            "routed_line",
            flow,
            || self.commtask_label(requester.0),
            || fields![target_dev = target.0 as u64],
        );
    }
}

impl RemoteFabric for HostSide {
    fn read(&self, src: GlobalCore, addr: MpbAddr, len: usize) -> LocalBoxFuture<'_, Bytes> {
        self.read_f(src, addr, len, None)
    }

    fn read_f(
        &self,
        src: GlobalCore,
        addr: MpbAddr,
        len: usize,
        flow: Option<u64>,
    ) -> LocalBoxFuture<'_, Bytes> {
        Box::pin(async move {
            let sim = self.sim.clone();
            let actor = move || self.commtask_label(src.device.0);
            let cached_mode =
                self.scheme == CommScheme::LocalPutRemoteGet && Self::is_payload(addr);
            if cached_mode {
                // Chunked read answered from the software cache: one
                // request line out, then the payload streamed back in,
                // sub-chunk by sub-chunk, overlapping an in-flight
                // prefetch of the same range.
                let rport = self.fabric.port(src.device);
                rport.egress.transfer(&sim, LINE_BYTES as u64).await;
                self.trace.begin_f(sim.now(), Category::Pcie, "classify", flow, actor, || {
                    fields![bytes = len as u64]
                });
                sim.delay(self.cfg.model.sw_answer_cycles).await;
                self.trace.end_f(sim.now(), Category::Pcie, "classify", flow, actor);
                let mut out = pooled(len);
                let wire_start = sim.now();
                let mut last_arrival = sim.now();
                for (lo, hi) in rcce::protocol::chunk_ranges(len, self.cfg.dma_chunk) {
                    let off = addr.offset + lo as u16;
                    self.trace.begin_f(
                        sim.now(),
                        Category::Pcie,
                        "cache_wait",
                        flow,
                        actor,
                        || fields![offset = off as u64, bytes = (hi - lo) as u64],
                    );
                    self.cache.wait_range_or_settled(addr.owner, off, hi - lo).await;
                    self.trace.end_f(sim.now(), Category::Pcie, "cache_wait", flow, actor);
                    let data = match self.cache.read(addr.owner, off, hi - lo) {
                        Some(d) => d,
                        None => {
                            // Cold miss: fetch from the owning device.
                            self.cache.begin_update(addr.owner);
                            self.do_cache_update(addr.owner, off, hi - lo, flow).await;
                            self.cache
                                .read(addr.owner, off, hi - lo)
                                .expect("range valid right after update")
                        }
                    };
                    out[lo..hi].copy_from_slice(&data);
                    // Core-initiated read completions take the native
                    // packet path (no host-DMA penalty).
                    last_arrival = rport.ingress.reserve(&sim, (hi - lo) as u64);
                }
                self.trace.begin_f(wire_start, Category::Pcie, "pcie_wire", flow, actor, || {
                    fields![bytes = len as u64]
                });
                sim.delay_until(last_arrival).await;
                self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                out.freeze()
            } else {
                // Transparent routing: one blocking round trip per line.
                let n_lines = len.div_ceil(LINE_BYTES).max(1);
                self.trace.begin_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor, || {
                    fields![bytes = len as u64, lines = n_lines as u64]
                });
                for _ in 0..n_lines {
                    self.routed_round_trip(src.device, addr.owner.device, flow).await;
                }
                self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                self.device(addr.owner.device)
                    .mpb(addr.owner.core)
                    .read_bytes(addr.offset as usize, len)
            }
        })
    }

    fn write(&self, src: GlobalCore, addr: MpbAddr, data: Bytes) -> LocalBoxFuture<'_, ()> {
        self.write_f(src, addr, data, None)
    }

    fn write_f(
        &self,
        src: GlobalCore,
        addr: MpbAddr,
        data: Bytes,
        flow: Option<u64>,
    ) -> LocalBoxFuture<'_, ()> {
        // The borrow-checker friendly clone: `self` methods that spawn need
        // an Rc; fabricate one from the registry.
        Box::pin(async move {
            let this = self.rc_self();
            let sim = self.sim.clone();
            let actor = move || self.commtask_label(src.device.0);
            if !Self::is_payload(addr) {
                // Synchronization class: host acks immediately (§3.1),
                // then forwards.
                let sport = self.fabric.port(src.device);
                sport.egress.transfer(&sim, LINE_BYTES as u64).await;
                self.trace.begin_f(sim.now(), Category::Pcie, "classify", flow, actor, || {
                    fields![offset = addr.offset as u64]
                });
                sim.delay(self.cfg.model.sw_answer_cycles).await;
                self.trace.end_f(sim.now(), Category::Pcie, "classify", flow, actor);
                this.forward_flag(src, addr, data, flow);
                return;
            }
            match self.scheme {
                CommScheme::SimpleRouting => {
                    // Write-with-acknowledge per line: full round trips.
                    let n_lines = data.len().div_ceil(LINE_BYTES).max(1);
                    self.trace.begin_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor, || {
                        fields![bytes = data.len() as u64, lines = n_lines as u64]
                    });
                    for _ in 0..n_lines {
                        self.routed_round_trip(src.device, addr.owner.device, flow).await;
                    }
                    self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                    if let Some(m) = self.monitor_of(addr.owner.device) {
                        m.host_write(src, addr, &data, flow);
                    }
                    self.device(addr.owner.device)
                        .mpb(addr.owner.core)
                        .write(addr.offset as usize, &data);
                }
                CommScheme::RemotePutHwAck => {
                    let pair = (src.device.0, addr.owner.device.0);
                    if self.health.is_fallback(pair) {
                        // Demoted pair: the unstable posted stream is
                        // replaced by the safe host-acked forward (the
                        // local-put delivery path). Slower, but every
                        // byte is accounted for.
                        self.rstats.fallback_writes.inc();
                        let sport = self.fabric.port(src.device);
                        self.trace.begin_f(
                            sim.now(),
                            Category::Pcie,
                            "pcie_wire",
                            flow,
                            actor,
                            || fields![bytes = data.len() as u64, fallback = 1u64],
                        );
                        sport.egress.transfer(&sim, data.len() as u64).await;
                        self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                        sim.delay(self.cfg.model.sw_answer_cycles).await;
                        this.deliver_payload(src, addr, data, flow);
                        return;
                    }
                    // Posted line writes with FPGA auto-acks: the sender
                    // only pays wire occupancy, and the bridge cuts the
                    // stream through to the target device line by line.
                    let sport = self.fabric.port(src.device);
                    let mut lost = 0u32;
                    for _ in 0..data.len().div_ceil(LINE_BYTES).max(1) {
                        if self.fastack.on_posted_write(sim.now(), flow) {
                            lost += 1;
                        }
                    }
                    self.trace.begin_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor, || {
                        fields![bytes = data.len() as u64, lost_acks = lost as u64]
                    });
                    let r = sport.egress.reserve_timed(&sim, data.len() as u64);
                    this.deliver_payload(src, addr, data, flow);
                    // A lost ack stalls the SIF for a recovery round trip.
                    let penalty = lost as u64 * self.cfg.model.routed_line_round_trip();
                    sim.delay_until(r.wire_free + penalty).await;
                    if self.recovery.enabled && lost > 0 {
                        // Retransmit the lines whose acks were lost and
                        // hold the sender for one backoff interval.
                        self.rstats.fastack_retransmits.add(lost as u64);
                        self.trace.instant_f(
                            sim.now(),
                            Category::Fault,
                            "fastack_retransmit",
                            flow,
                            || "host-recovery",
                            || fields![lines = lost as u64],
                        );
                        let arr = sport.egress.reserve(&sim, lost as u64 * LINE_BYTES as u64);
                        let resume = arr.max(sim.now() + self.recovery.backoff_base);
                        sim.delay_until(resume).await;
                    }
                    self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                    if self.recovery.enabled {
                        this.note_ack_result(pair, lost > 0, flow);
                    }
                }
                CommScheme::RemotePutWcb => {
                    // Posted into the host write-combining buffer; the
                    // task flushes each complete granule as it fills, so
                    // granule delivery pipelines with the sender's stream.
                    let sport = self.fabric.port(src.device);
                    self.trace.begin_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor, || {
                        fields![bytes = data.len() as u64]
                    });
                    let mut wire_free = sim.now();
                    {
                        let mut ready = self.wcb_ready.borrow_mut();
                        for (lo, hi) in
                            rcce::protocol::chunk_ranges(data.len(), self.wcb.granularity())
                        {
                            let r = sport.egress.reserve_timed(&sim, (hi - lo) as u64);
                            wire_free = r.wire_free;
                            self.wcb.append_into(
                                addr.owner,
                                addr.offset + lo as u16,
                                &data[lo..hi],
                                &mut ready,
                            );
                            for run in ready.drain(..) {
                                let a = MpbAddr::new(addr.owner, run.offset);
                                this.deliver_payload(src, a, run.data, flow);
                            }
                        }
                    }
                    sim.delay_until(wire_free).await;
                    self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                }
                CommScheme::LocalPutRemoteGet | CommScheme::LocalPutLocalGet => {
                    // Only the small-message direct path writes payload
                    // remotely under these schemes: host-acked forward.
                    let sport = self.fabric.port(src.device);
                    self.trace.begin_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor, || {
                        fields![bytes = data.len() as u64]
                    });
                    sport.egress.transfer(&sim, data.len() as u64).await;
                    self.trace.end_f(sim.now(), Category::Pcie, "pcie_wire", flow, actor);
                    self.trace.begin_f(sim.now(), Category::Pcie, "classify", flow, actor, || {
                        fields![bytes = data.len() as u64]
                    });
                    sim.delay(self.cfg.model.sw_answer_cycles).await;
                    self.trace.end_f(sim.now(), Category::Pcie, "classify", flow, actor);
                    self.stats.direct_writes.inc();
                    self.trace.instant_f(
                        sim.now(),
                        Category::Pcie,
                        "direct_write",
                        flow,
                        || self.commtask_label(addr.owner.device.0),
                        || fields![bytes = data.len() as u64],
                    );
                    this.deliver_payload(src, addr, data, flow);
                }
            }
        })
    }

    fn mmio_write(&self, line: RegisterLine) -> LocalBoxFuture<'_, ()> {
        Box::pin(async move {
            let sim = self.sim.clone();
            let dev = line.src.device;
            // One fused 32 B posted TLP into the host register window,
            // stamped with the full SIF crossing (DESIGN.md §5i): the
            // doorbell becomes visible host-side only at its arrival,
            // and the issuing core continues at wire-free time —
            // posted-write semantics, exactly like a PCIe memory write.
            let port = self.fabric.port(dev);
            let (tlp, wire_free) =
                port.stamp_to_host(&sim, ConduitKind::Doorbell, LINE_BYTES as u64, line);
            self.doorbells.borrow()[dev.0 as usize]
                .try_send(DoorbellMsg::Write(tlp))
                .unwrap_or_else(|_| panic!("doorbell queue is unbounded"));
            sim.delay_until(wire_free).await;
        })
    }

    fn mmio_read(&self, src: GlobalCore, _line: u16) -> LocalBoxFuture<'_, [u8; LINE_BYTES]> {
        Box::pin(async move {
            let sim = self.sim.clone();
            let port = self.fabric.port(src.device);
            // Non-posted status read: the request TLP crosses at its
            // stamped arrival, the host daemon answers after its
            // software answer time, and the completion crosses back
            // with its own stamp. The reader blocks for the full round
            // trip — both crossings plus the answer cost, every cycle
            // of it on modeled links.
            let (tlp, _) =
                port.stamp_to_host(&sim, ConduitKind::StatusRead, LINE_BYTES as u64, src);
            let (reply_tx, reply_rx) = unbounded();
            self.doorbells.borrow()[src.device.0 as usize]
                .try_send(DoorbellMsg::Read(tlp, reply_tx))
                .unwrap_or_else(|_| panic!("doorbell queue is unbounded"));
            let (arrival, data) = reply_rx.recv().await.expect("host answers status reads");
            if sim.now() < arrival {
                sim.delay_until(arrival).await;
            }
            data
        })
    }
}

impl HostSide {
    /// Trait methods only see `&self`; the stored self-weak lets them
    /// spawn owning forwarder tasks.
    fn rc_self(&self) -> Rc<Self> {
        self.me.upgrade().expect("HostSide alive while its methods run")
    }

    /// Device pairs currently routed through the host-acked fallback path
    /// (Degraded, Probing, or Quarantined), as `(src_device, dst_device)`
    /// ids, sorted.
    pub fn demoted_pairs(&self) -> Vec<(u8, u8)> {
        self.health.fallback_pairs()
    }

    /// Snapshot of every tracked pair's health state, sorted by pair.
    pub fn health_states(&self) -> Vec<((u8, u8), PairHealth)> {
        self.health.states()
    }

    /// Track consecutive lossy posted-write bursts per device pair; at
    /// the configured threshold the pair is demoted to the host-acked
    /// fallback path, the transition recorded, and a canary prober
    /// spawned to earn the pair's way back (DESIGN.md §5h).
    fn note_ack_result(self: &Rc<Self>, pair: (u8, u8), lossy: bool, flow: Option<u64>) {
        if !self.health.note_ack_burst(pair, lossy, self.recovery.fallback_threshold) {
            return;
        }
        let tr = self
            .health
            .demote(
                self.sim.now(),
                pair,
                self.recovery.probe_interval,
                self.recovery.quarantine_after,
            )
            .expect("note_ack_burst fired on a Healthy pair");
        self.rstats.demotions.inc();
        // The legacy Fault-category instant stays for trace consumers
        // that predate the Health category.
        self.trace.instant_f(
            self.sim.now(),
            Category::Fault,
            "fallback_demote",
            flow,
            || "host-recovery",
            || fields![src_dev = pair.0 as u64, dst_dev = pair.1 as u64],
        );
        self.emit_health(&tr, flow);
        if self.health.state(pair) == PairHealth::Degraded {
            self.spawn_prober(pair);
        }
    }

    /// Record a health transition as a `Health`-category trace instant
    /// and an audit-stream fault decision (so audited reruns bisect
    /// divergent healing behaviour like any other scheduler decision).
    fn emit_health(&self, tr: &HealthTransition, flow: Option<u64>) {
        des::audit::record_fault(tr.time, tr.trigger, ((tr.pair.0 as u64) << 8) | tr.pair.1 as u64);
        let trigger = tr.trigger;
        let (from, to) = (tr.from, tr.to);
        let pair = tr.pair;
        self.trace.instant_f(
            tr.time,
            Category::Health,
            trigger,
            flow,
            || "host-health",
            || {
                fields![
                    src_dev = pair.0 as u64,
                    dst_dev = pair.1 as u64,
                    from = from.name(),
                    to = to.name()
                ]
            },
        );
    }

    /// Spawn the canary prober daemon for a freshly demoted pair. One
    /// prober per pair at a time (`try_start_prober` claims it); the
    /// daemon retires when the pair re-promotes or quarantines. Probes
    /// are one-line egress transfers on the source port judged by the
    /// fast-ack model's *probe* stream, so they never perturb the
    /// application-visible RNG sequences or ack counters.
    fn spawn_prober(self: &Rc<Self>, pair: (u8, u8)) {
        if !self.health.try_start_prober(pair) {
            return;
        }
        let this = self.rc_self();
        let sim = self.sim.clone();
        self.sim.spawn_daemon(format!("health-probe-d{}-d{}", pair.0, pair.1), async move {
            loop {
                sim.delay(this.health.probe_interval(pair)).await;
                let Some(tr) = this.health.begin_probe(sim.now(), pair) else {
                    // Promoted or quarantined since the last wake-up.
                    break;
                };
                this.emit_health(&tr, None);
                let sport = this.fabric.port(DeviceId(pair.0));
                sport.egress.transfer(&sim, LINE_BYTES as u64).await;
                sim.delay(this.cfg.model.sw_answer_cycles).await;
                if this.fastack.on_probe_write(sim.now()) {
                    let tr = this.health.note_probe_fail(
                        sim.now(),
                        pair,
                        this.recovery.probe_backoff_max,
                    );
                    this.emit_health(&tr, None);
                } else if let Some(tr) = this.health.note_probe_ok(
                    sim.now(),
                    pair,
                    this.recovery.promote_after,
                    this.recovery.probe_interval,
                ) {
                    this.emit_health(&tr, None);
                    break;
                }
            }
            this.health.prober_done(pair);
        });
    }
}
