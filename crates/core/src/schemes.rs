//! The inter-device communication schemes of the paper (Fig. 4), as
//! pluggable [`PointToPoint`] protocols.
//!
//! | scheme | data path | figure |
//! |---|---|---|
//! | [`CommScheme::SimpleRouting`] | transparent per-line forwarding (2012 prototype, baseline) | Fig. 6b lower bound |
//! | [`CommScheme::RemotePutHwAck`] | sender streams posted line writes, FPGA auto-acks (unstable ≥3 devices) | Fig. 6b upper bound |
//! | [`CommScheme::RemotePutWcb`] | sender streams into the host write-combining buffer, task flushes granules | Fig. 4c |
//! | [`CommScheme::LocalPutRemoteGet`] | sender puts locally + triggers prefetch; receiver reads the host software cache | Fig. 4b |
//! | [`CommScheme::LocalPutLocalGet`] | both sides touch only local MPB; the virtual DMA controller moves the data | Fig. 4a |
//!
//! Synchronization counters follow two styles matching Fig. 4d: the
//! *consumed* style (`a`: sender waits until the receiver copied) for
//! local-put schemes, and the *grant* style (`b1`/`b2`: receiver first
//! grants its buffer, sender then writes and signals) for schemes that
//! deliver into the receiver's MPB.

use des::fields;
use des::obs::{GaugeHandle, Registry};
use des::trace::Category;
use rcce::layout::{self, CHUNK_BYTES};
use rcce::protocol::{chunk_ranges, flag_wait_reached, LocalBoxFuture, PointToPoint};
use rcce::session::RankCtx;
use scc::geometry::MpbAddr;

use crate::mmio;

/// The five inter-device schemes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommScheme {
    /// Transparent packet routing through the host daemon (baseline).
    SimpleRouting,
    /// Remote put with FPGA fast write acknowledges (upper bound,
    /// unstable beyond two devices).
    RemotePutHwAck,
    /// Remote put through the host write-combining buffer.
    RemotePutWcb,
    /// Local put / remote get with the host software cache.
    LocalPutRemoteGet,
    /// Local put / local get via the virtual DMA controller.
    LocalPutLocalGet,
}

impl CommScheme {
    /// All schemes, in the order the figures list them.
    pub const ALL: [CommScheme; 5] = [
        CommScheme::SimpleRouting,
        CommScheme::RemotePutHwAck,
        CommScheme::RemotePutWcb,
        CommScheme::LocalPutRemoteGet,
        CommScheme::LocalPutLocalGet,
    ];

    /// Display name as used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            CommScheme::SimpleRouting => "simple routing",
            CommScheme::RemotePutHwAck => "remote put (hw write-ack)",
            CommScheme::RemotePutWcb => "remote put (host WCB)",
            CommScheme::LocalPutRemoteGet => "local put / remote get (sw cache)",
            CommScheme::LocalPutLocalGet => "local put / local get (vDMA)",
        }
    }

    /// The point-to-point protocol implementing this scheme.
    pub fn protocol(self) -> std::rc::Rc<dyn PointToPoint> {
        self.protocol_with_windows(WindowGauges::default())
    }

    /// Like [`CommScheme::protocol`], but with MPB payload-window
    /// occupancy gauges reporting into `registry` (`vscc.window.*`).
    pub fn protocol_with_obs(self, registry: &Registry) -> std::rc::Rc<dyn PointToPoint> {
        self.protocol_with_windows(WindowGauges::register(registry))
    }

    fn protocol_with_windows(self, windows: WindowGauges) -> std::rc::Rc<dyn PointToPoint> {
        match self {
            CommScheme::SimpleRouting => std::rc::Rc::new(rcce::BlockingProtocol::default()),
            CommScheme::RemotePutHwAck | CommScheme::RemotePutWcb => {
                std::rc::Rc::new(RemotePutProtocol { windows })
            }
            CommScheme::LocalPutRemoteGet => {
                std::rc::Rc::new(CachedGetProtocol { windows, ..Default::default() })
            }
            CommScheme::LocalPutLocalGet => {
                std::rc::Rc::new(VdmaProtocol { windows, ..Default::default() })
            }
        }
    }
}

/// Pre-resolved occupancy gauges for the payload-window layout (DESIGN.md
/// §4b), one per scheme window. Occupancy is "bytes put but not yet
/// consumed": the producer side adds at the end of its put, the consumer
/// side subtracts when it copies the bytes out (for the vDMA send slots,
/// when the controller's drain flag confirms the slots were captured).
/// Handles are resolved once at protocol construction, so the per-chunk
/// update on the data path is a plain `Cell` add — no lookup, no
/// allocation. Detached (default) handles make every update a no-op.
#[derive(Clone, Default)]
pub struct WindowGauges {
    /// Direct-transfer slot (`DIRECT_OFF..DIRECT_OFF+DIRECT_MAX`).
    pub direct: GaugeHandle,
    /// Remote-put receive window (`REMOTE_PUT_OFF..` one chunk).
    pub remote_put: GaugeHandle,
    /// Cached-get local put window (`0..LPRG_CHUNK`).
    pub lprg: GaugeHandle,
    /// vDMA send slots (`0..2*VDMA_SLOT`).
    pub vdma_send: GaugeHandle,
    /// vDMA receive slots (`2*VDMA_SLOT..4*VDMA_SLOT`).
    pub vdma_recv: GaugeHandle,
}

impl WindowGauges {
    /// Resolve the gauges in `registry` under `vscc.window.<name>.bytes`.
    pub fn register(registry: &Registry) -> Self {
        let scope = registry.scoped("vscc").scoped("window");
        WindowGauges {
            direct: scope.scoped("direct").register_gauge("bytes"),
            remote_put: scope.scoped("remote_put").register_gauge("bytes"),
            lprg: scope.scoped("lprg").register_gauge("bytes"),
            vdma_send: scope.scoped("vdma_send").register_gauge("bytes"),
            vdma_recv: scope.scoped("vdma_recv").register_gauge("bytes"),
        }
    }
}

/// Chunk size of the cached local-put/remote-get scheme: the payload area
/// minus the direct-transfer slot.
pub const LPRG_CHUNK: usize = 7424;
/// The send half of the payload area. On multi-device systems the on-chip
/// protocols are confined here, because the receive half belongs to
/// host-delivered inbound traffic (remote-put chunks, vDMA packets).
pub const SEND_AREA_BYTES: usize = 2 * VDMA_SLOT;
/// Payload-relative offset and size of the remote-put receive window.
pub const REMOTE_PUT_OFF: usize = 2 * VDMA_SLOT;
/// Chunk size of the remote-put schemes (bounded by the receive window).
pub const REMOTE_PUT_CHUNK: usize = 2 * VDMA_SLOT;
/// vDMA packet size: the payload area is split into 2 send + 2 receive
/// slots of this size.
pub const VDMA_SLOT: usize = 1920;
/// Payload-relative offset of the direct-transfer slot (small messages).
pub const DIRECT_OFF: usize = LPRG_CHUNK;
/// Capacity of the direct-transfer slot.
pub const DIRECT_MAX: usize = 256;

const _: () = assert!(DIRECT_OFF + DIRECT_MAX == CHUNK_BYTES);
const _: () = assert!(4 * VDMA_SLOT == CHUNK_BYTES);

/// Payload address of vDMA send slot `i` in `who`'s region.
fn send_slot(who: scc::GlobalCore, i: usize) -> MpbAddr {
    layout::payload(who, i * VDMA_SLOT)
}

/// Payload address of vDMA receive slot `i` in `who`'s region.
fn recv_slot(who: scc::GlobalCore, i: usize) -> MpbAddr {
    layout::payload(who, 2 * VDMA_SLOT + i * VDMA_SLOT)
}

/// Payload address of the direct-transfer slot in `who`'s region.
fn direct_slot(who: scc::GlobalCore) -> MpbAddr {
    layout::payload(who, DIRECT_OFF)
}

// ---------------------------------------------------------------------
// Direct small-message path (§3.3 threshold), shared by the explicit
// schemes: grant → host-acked remote write → flag → local get.
// ---------------------------------------------------------------------

async fn direct_send(ctx: &RankCtx, dest: usize, data: &[u8], flow: u64, windows: &WindowGauges) {
    let me = ctx.rank;
    let my = ctx.who();
    let peer = ctx.session.who(dest);
    let trace = ctx.session.trace().clone();
    let f = Some(flow);
    trace.instant_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "direct_send",
        f,
        || &ctx.label,
        || fields![bytes = data.len() as u64, dest = dest as u64],
    );
    let cnt = {
        let mut sc = ctx.sent_count.borrow_mut();
        sc[dest] = sc[dest].wrapping_add(1);
        sc[dest]
    };
    // b1: wait for the receiver's grant before touching its MPB.
    trace.begin_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "mpb_wait",
        f,
        || &ctx.label,
        || fields![flag = "grant", target = cnt],
    );
    flag_wait_reached(ctx, layout::ready_flag(my, dest), cnt).await;
    trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
    trace.begin_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "sender_put",
        f,
        || &ctx.label,
        || fields![bytes = data.len() as u64, target = "direct_slot"],
    );
    ctx.core.put_f(direct_slot(peer), data, f).await;
    windows.direct.add(data.len() as i64);
    trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || &ctx.label);
    // b2: data-available signal.
    ctx.core.flag_write_f(layout::sent_flag(peer, me), cnt, f).await;
}

async fn direct_recv(ctx: &RankCtx, src: usize, buf: &mut [u8], flow: u64, windows: &WindowGauges) {
    let me = ctx.rank;
    let my = ctx.who();
    let peer = ctx.session.who(src);
    let trace = ctx.session.trace().clone();
    let f = Some(flow);
    trace.instant_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "direct_recv",
        f,
        || &ctx.label,
        || fields![bytes = buf.len() as u64, src = src as u64],
    );
    ctx.inbound_lock.lock().await;
    let cnt = ctx.recv_count.borrow()[src].wrapping_add(1);
    // b1: grant the buffer.
    ctx.core.flag_write_f(layout::ready_flag(peer, me), cnt, f).await;
    trace.begin_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "recv_poll",
        f,
        || &ctx.label,
        || fields![flag = "sent", target = cnt],
    );
    flag_wait_reached(ctx, layout::sent_flag(my, src), cnt).await;
    trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
    trace.begin_f(
        ctx.core.sim().now(),
        Category::Protocol,
        "recv_get",
        f,
        || &ctx.label,
        || fields![bytes = buf.len() as u64],
    );
    ctx.core.cl1invmb().await;
    ctx.core.get_f(direct_slot(my), buf, f).await;
    windows.direct.sub(buf.len() as i64);
    trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
    ctx.recv_count.borrow_mut()[src] = cnt;
    ctx.inbound_lock.unlock();
}

// ---------------------------------------------------------------------
// Remote put (hardware write-ack or host WCB; Fig. 4c)
// ---------------------------------------------------------------------

/// Remote-put protocol: the sender writes chunks straight into the
/// receiver's payload area; which posted-write machinery carries them
/// (FPGA fast-ack or host WCB) is decided by the host fabric mode.
#[derive(Default)]
pub struct RemotePutProtocol {
    /// Payload-window occupancy gauges (detached unless built via
    /// [`CommScheme::protocol_with_obs`]).
    pub windows: WindowGauges,
}

impl PointToPoint for RemotePutProtocol {
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(dest);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "rput_send",
                f,
                || &ctx.label,
                || fields![bytes = data.len() as u64, dest = dest as u64],
            );
            for (lo, hi) in chunk_ranges(data.len(), REMOTE_PUT_CHUNK) {
                let cnt = {
                    let mut sc = ctx.sent_count.borrow_mut();
                    sc[dest] = sc[dest].wrapping_add(1);
                    sc[dest]
                };
                // b1: the receiver's buffer grant.
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "mpb_wait",
                    f,
                    || &ctx.label,
                    || fields![flag = "grant", target = cnt],
                );
                flag_wait_reached(ctx, layout::ready_flag(my, dest), cnt).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
                // Remote put: stream the chunk into the receiver's MPB
                // receive window.
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "sender_put",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, target = "remote_mpb"],
                );
                ctx.core.put_f(layout::payload(peer, REMOTE_PUT_OFF), &data[lo..hi], f).await;
                self.windows.remote_put.add((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || {
                    &ctx.label
                });
                // b2: data available.
                ctx.core.flag_write_f(layout::sent_flag(peer, me), cnt, f).await;
            }
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "rput_send", f, || &ctx.label);
        })
    }

    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(src);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "rput_recv",
                f,
                || &ctx.label,
                || fields![bytes = buf.len() as u64, src = src as u64],
            );
            ctx.inbound_lock.lock().await;
            for (lo, hi) in chunk_ranges(buf.len(), REMOTE_PUT_CHUNK) {
                let cnt = ctx.recv_count.borrow()[src].wrapping_add(1);
                // b1: grant my receive window to this sender.
                ctx.core.flag_write_f(layout::ready_flag(peer, me), cnt, f).await;
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_poll",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", target = cnt],
                );
                flag_wait_reached(ctx, layout::sent_flag(my, src), cnt).await;
                trace
                    .end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
                // Local get out of my own MPB.
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_get",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo],
                );
                ctx.core.cl1invmb().await;
                ctx.core.get_f(layout::payload(my, REMOTE_PUT_OFF), &mut buf[lo..hi], f).await;
                self.windows.remote_put.sub((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
                ctx.recv_count.borrow_mut()[src] = cnt;
            }
            ctx.inbound_lock.unlock();
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "rput_recv", f, || &ctx.label);
        })
    }

    fn name(&self) -> &'static str {
        "remote put / local get"
    }
}

// ---------------------------------------------------------------------
// Local put / remote get with the host software cache (Fig. 4b)
// ---------------------------------------------------------------------

/// Cached local-put/remote-get: the sender keeps RCCE's local put but
/// explicitly invalidates and updates the host copy; the receiver's
/// remote get is answered by the software cache.
pub struct CachedGetProtocol {
    /// Messages at or below this size take the direct path (§3.3).
    pub direct_threshold: usize,
    /// Trigger the host prefetch after every local put. Disabling it
    /// (ablation) leaves the receiver's reads to cold-miss in the host
    /// cache, which then fetches on demand — no overlap with the put.
    pub prefetch: bool,
    /// Payload-window occupancy gauges (detached unless built via
    /// [`CommScheme::protocol_with_obs`]).
    pub windows: WindowGauges,
}

impl Default for CachedGetProtocol {
    fn default() -> Self {
        CachedGetProtocol { direct_threshold: 96, prefetch: true, windows: WindowGauges::default() }
    }
}

impl PointToPoint for CachedGetProtocol {
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            if data.len() <= self.direct_threshold {
                return direct_send(ctx, dest, data, flow, &self.windows).await;
            }
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(dest);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "lprg_send",
                f,
                || &ctx.label,
                || fields![bytes = data.len() as u64, dest = dest as u64],
            );
            let mut last = 0u8;
            for (lo, hi) in chunk_ranges(data.len(), LPRG_CHUNK) {
                let cnt = {
                    let mut sc = ctx.sent_count.borrow_mut();
                    sc[dest] = sc[dest].wrapping_add(1);
                    sc[dest]
                };
                // Wait until the receiver consumed the previous chunk
                // before overwriting the local buffer (sync point a).
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "mpb_wait",
                    f,
                    || &ctx.label,
                    || fields![flag = "consumed", target = cnt.wrapping_sub(1)],
                );
                flag_wait_reached(ctx, layout::ready_flag(my, dest), cnt.wrapping_sub(1)).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
                // Invalidate the outdated part of the host copy (§3.1)...
                ctx.core
                    .mmio_write_fused(
                        mmio::REG_CACHE,
                        mmio::encode_cache(layout::OFF_PAYLOAD, hi - lo, false, f),
                    )
                    .await;
                // ... local put ...
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "sender_put",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, target = "local_mpb"],
                );
                ctx.core.put_f(layout::payload(my, 0), &data[lo..hi], f).await;
                self.windows.lprg.add((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || {
                    &ctx.label
                });
                // ... and trigger the prefetch into the host cache.
                if self.prefetch {
                    ctx.core
                        .mmio_write_fused(
                            mmio::REG_CACHE,
                            mmio::encode_cache(layout::OFF_PAYLOAD, hi - lo, true, f),
                        )
                        .await;
                }
                ctx.core.flag_write_f(layout::sent_flag(peer, me), cnt, f).await;
                last = cnt;
            }
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "mpb_wait",
                f,
                || &ctx.label,
                || fields![flag = "consumed", target = last],
            );
            flag_wait_reached(ctx, layout::ready_flag(my, dest), last).await;
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "lprg_send", f, || &ctx.label);
        })
    }

    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            if buf.len() <= self.direct_threshold {
                return direct_recv(ctx, src, buf, flow, &self.windows).await;
            }
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(src);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "lprg_recv",
                f,
                || &ctx.label,
                || fields![bytes = buf.len() as u64, src = src as u64],
            );
            for (lo, hi) in chunk_ranges(buf.len(), LPRG_CHUNK) {
                let cnt = ctx.recv_count.borrow()[src].wrapping_add(1);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_poll",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", target = cnt],
                );
                flag_wait_reached(ctx, layout::sent_flag(my, src), cnt).await;
                trace
                    .end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_get",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, via = "sw_cache"],
                );
                ctx.core.cl1invmb().await;
                // Remote get, served by the host software cache.
                ctx.core.get_f(layout::payload(peer, 0), &mut buf[lo..hi], f).await;
                self.windows.lprg.sub((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
                ctx.recv_count.borrow_mut()[src] = cnt;
                ctx.core.flag_write_f(layout::ready_flag(peer, me), cnt, f).await;
            }
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "lprg_recv", f, || &ctx.label);
        })
    }

    fn name(&self) -> &'static str {
        "local put / remote get (sw cache)"
    }
}

// ---------------------------------------------------------------------
// Local put / local get via the virtual DMA controller (Fig. 4a)
// ---------------------------------------------------------------------

/// vDMA protocol: sender and receiver both touch only local on-chip
/// memory; the communication task performs the copy (virtual DMA
/// controller). Packets alternate through two send and two receive
/// slots, so put, tunnel transfer, and get overlap — this removes the
/// 8 KiB throughput dip (§4.1).
pub struct VdmaProtocol {
    /// Messages at or below this size take the direct path (§3.3:
    /// "about 32 B to 128 B dependent on the communication scheme").
    pub direct_threshold: usize,
    /// Payload-window occupancy gauges (detached unless built via
    /// [`CommScheme::protocol_with_obs`]).
    pub windows: WindowGauges,
    /// Per-rank count of vDMA packets issued (the drain sequence): the
    /// sender spins on its `vdma_done` flag reaching `seq − 2` before
    /// reusing a send slot — the busy-wait of §3.3.
    drain_issued: std::cell::RefCell<std::collections::HashMap<usize, u8>>,
}

impl Default for VdmaProtocol {
    fn default() -> Self {
        VdmaProtocol {
            direct_threshold: 128,
            windows: WindowGauges::default(),
            drain_issued: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }
}

impl VdmaProtocol {
    /// With a custom direct-transfer threshold (ablation knob).
    pub fn with_threshold(direct_threshold: usize) -> Self {
        VdmaProtocol { direct_threshold, ..Default::default() }
    }
}

impl PointToPoint for VdmaProtocol {
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            if data.len() <= self.direct_threshold {
                return direct_send(ctx, dest, data, flow, &self.windows).await;
            }
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(dest);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "vdma_send",
                f,
                || &ctx.label,
                || fields![bytes = data.len() as u64, dest = dest as u64],
            );
            let base = ctx.sent_count.borrow()[dest];
            let packets = chunk_ranges(data.len(), VDMA_SLOT);
            let n = packets.len();
            let mut last_gseq = 0u8;
            for (p0, (lo, hi)) in packets.enumerate() {
                let seq = base.wrapping_add(p0 as u8 + 1);
                // Wait for the receiver's slot grant (double-buffered),
                // then until the controller drained the slot we are about
                // to overwrite (§3.3: "a core spins on a flag which is
                // located in its on-chip memory").
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "mpb_wait",
                    f,
                    || &ctx.label,
                    || fields![flag = "grant+drain", pkt = p0],
                );
                flag_wait_reached(ctx, layout::ready_flag(my, dest), seq).await;
                let gseq = {
                    let mut issued = self.drain_issued.borrow_mut();
                    let e = issued.entry(ctx.rank).or_insert(0);
                    *e = e.wrapping_add(1);
                    *e
                };
                // (The wrap-safe comparison makes the first two packets
                // pass immediately against the zero-initialized flag.)
                flag_wait_reached(ctx, layout::vdma_done_flag(my), gseq.wrapping_sub(2)).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
                // Local put into my send slot (slot parity follows the
                // global drain sequence, since the slots are shared by
                // all of this rank's outgoing messages)...
                let sslot = send_slot(my, (gseq % 2) as usize);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "sender_put",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, slot = (gseq % 2) as u64],
                );
                ctx.core.put_f(sslot, &data[lo..hi], f).await;
                self.windows.vdma_send.add((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || {
                    &ctx.label
                });
                // ... then program the vDMA controller: address, count,
                // control in one fused 32 B register write (Fig. 5). The
                // flow id rides the free half of the control word, so the
                // host tags the transfer with the same provenance.
                ctx.core
                    .mmio_write_fused(
                        mmio::REG_VDMA,
                        mmio::encode_vdma(
                            sslot.offset,
                            peer,
                            recv_slot(peer, p0 % 2).offset,
                            hi - lo,
                            seq,
                            me as u8,
                            gseq,
                            f,
                        ),
                    )
                    .await;
                last_gseq = gseq;
            }
            ctx.sent_count.borrow_mut()[dest] = base.wrapping_add(n as u8);
            // Spin until the controller drained every slot of this message
            // (§3.3: the core busy-waits on its on-chip flag until the
            // copy operation completed). Without this, a later send — even
            // an on-chip one — could overwrite a slot before the vDMA
            // captured it.
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "mpb_wait",
                f,
                || &ctx.label,
                || fields![flag = "drain+consumed", target = last_gseq],
            );
            flag_wait_reached(ctx, layout::vdma_done_flag(my), last_gseq).await;
            // Every slot of this message is confirmed drained.
            self.windows.vdma_send.sub(data.len() as i64);
            // And until the receiver's grants confirm the tail packets
            // were consumed (blocking RCCE semantics).
            flag_wait_reached(ctx, layout::ready_flag(my, dest), base.wrapping_add(n as u8)).await;
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "vdma_send", f, || &ctx.label);
        })
    }

    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            if buf.len() <= self.direct_threshold {
                return direct_recv(ctx, src, buf, flow, &self.windows).await;
            }
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(src);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "vdma_recv",
                f,
                || &ctx.label,
                || fields![bytes = buf.len() as u64, src = src as u64],
            );
            ctx.inbound_lock.lock().await;
            let base = ctx.recv_count.borrow()[src];
            let packets = chunk_ranges(buf.len(), VDMA_SLOT);
            let n = packets.len();
            // Grant two slots up front (pipeline depth 2).
            ctx.core
                .flag_write_f(layout::ready_flag(peer, me), base.wrapping_add(n.min(2) as u8), f)
                .await;
            for (p0, (lo, hi)) in packets.enumerate() {
                let seq = base.wrapping_add(p0 as u8 + 1);
                // The vDMA controller raises my sent flag on delivery.
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_poll",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", pkt = p0],
                );
                flag_wait_reached(ctx, layout::sent_flag(my, src), seq).await;
                self.windows.vdma_recv.add((hi - lo) as i64);
                trace
                    .end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
                // Local get out of my receive slot.
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_get",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, slot = (p0 % 2) as u64],
                );
                ctx.core.cl1invmb().await;
                ctx.core.get_f(recv_slot(my, p0 % 2), &mut buf[lo..hi], f).await;
                self.windows.vdma_recv.sub((hi - lo) as i64);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
                if p0 + 3 <= n {
                    // Re-grant the slot just freed.
                    ctx.core
                        .flag_write_f(
                            layout::ready_flag(peer, me),
                            base.wrapping_add(p0 as u8 + 3),
                            f,
                        )
                        .await;
                }
            }
            ctx.recv_count.borrow_mut()[src] = base.wrapping_add(n as u8);
            ctx.inbound_lock.unlock();
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "vdma_recv", f, || &ctx.label);
        })
    }

    fn name(&self) -> &'static str {
        "local put / local get (vDMA)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            CommScheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), CommScheme::ALL.len());
    }

    #[test]
    fn slot_layout_disjoint() {
        let g = scc::GlobalCore::new(0, 0);
        let s0 = send_slot(g, 0).offset as usize;
        let s1 = send_slot(g, 1).offset as usize;
        let r0 = recv_slot(g, 0).offset as usize;
        let r1 = recv_slot(g, 1).offset as usize;
        let d = direct_slot(g).offset as usize;
        assert_eq!(s1 - s0, VDMA_SLOT);
        assert_eq!(r0 - s0, 2 * VDMA_SLOT);
        assert_eq!(r1 - r0, VDMA_SLOT);
        // Send slots end before receive slots begin; direct slot sits in
        // the tail of the receive area (guarded by the inbound lock).
        assert!(s1 + VDMA_SLOT <= r0);
        assert!(d + DIRECT_MAX <= scc::MPB_BYTES);
        // The LPRG chunk never reaches the direct slot.
        assert!(layout::OFF_PAYLOAD as usize + LPRG_CHUNK <= d + layout::OFF_PAYLOAD as usize);
    }

    #[test]
    fn protocols_expose_paper_names() {
        assert!(CommScheme::LocalPutLocalGet.name().contains("vDMA"));
        assert!(CommScheme::SimpleRouting.protocol().name().contains("local put"));
    }
}
