//! Calibrated parameters of the PCIe tunnel.
//!
//! Calibration targets (DESIGN.md §5): a routed per-line round trip of
//! ~12 k core cycles (the paper's "factor 120" over ~100-cycle on-chip
//! access), a SIF stream ceiling of ~42 MB/s, and a host-answered MMIO read
//! of ~600 cycles. The experiment harnesses assert the resulting
//! throughput *bands*, not exact points.

use des::link::Bandwidth;
use des::Cycles;

use scc::LINE_BYTES;

/// Timing parameters of one host↔device PCIe path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcieModel {
    /// FPGA/SIF processing per 32 B packet crossing the device boundary
    /// (core cycles). Caps all inter-device streams.
    pub sif_packet_cycles: Cycles,
    /// One-way hardware latency of the PCIe path (TLP through switch and
    /// root complex), core cycles.
    pub hw_latency: Cycles,
    /// Host daemon software handling per forwarded request (core cycles):
    /// the price of the *transparent routing* path of the 2012 prototype.
    pub sw_forward_cycles: Cycles,
    /// Host processing for answering a request out of the communication
    /// task's buffers (classification + copy-out), per request.
    pub sw_answer_cycles: Cycles,
    /// Fixed processing charged per burst transfer on a device port
    /// (TLP/descriptor handling in the FPGA bridge).
    pub per_transfer_cycles: Cycles,
    /// Overhead of setting up one host DMA descriptor.
    pub dma_descriptor_cycles: Cycles,
    /// Host memory bandwidth shared by all device ports (bytes/cycle).
    pub host_mem_bytes_per_cycle: u64,
    /// Extra wire time (percent) charged on host-initiated DMA streams:
    /// the host reaches device MPBs through the FPGA's register interface,
    /// which is slower than native on-chip packet forwarding.
    pub host_dma_penalty_pct: u64,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel {
            sif_packet_cycles: 400,
            hw_latency: 600,
            sw_forward_cycles: 3000,
            sw_answer_cycles: 250,
            per_transfer_cycles: 150,
            dma_descriptor_cycles: 800,
            host_mem_bytes_per_cycle: 8,
            host_dma_penalty_pct: 25,
        }
    }
}

impl PcieModel {
    /// Wire bandwidth of a device port: the SIF packet cost spread over the
    /// 32 B packet, i.e. `sif_packet_cycles / 32` cycles per byte.
    pub fn sif_bandwidth(&self) -> Bandwidth {
        Bandwidth::cycles_per_byte(self.sif_packet_cycles, LINE_BYTES as u64)
    }

    /// Peak stream rate through one SIF in MB/s (the Fig. 6b ceiling).
    pub fn sif_peak_mbps(&self) -> f64 {
        self.sif_bandwidth().peak_mbps(des::time::CORE_FREQ)
    }

    /// Effective bytes charged on the wire for `bytes` of host-initiated
    /// DMA (see `host_dma_penalty_pct`).
    pub fn host_dma_bytes(&self, bytes: u64) -> u64 {
        bytes * (100 + self.host_dma_penalty_pct) / 100
    }

    /// Round-trip cycles of one *routed* (transparent) line request:
    /// requester SIF out, PCIe, daemon forward, PCIe, target SIF in, and
    /// the response retracing the path.
    pub fn routed_line_round_trip(&self) -> Cycles {
        2 * (self.sif_packet_cycles + self.hw_latency) // request out + into target
            + self.sw_forward_cycles
            + 2 * (self.sif_packet_cycles + self.hw_latency) // response back
            + self.sw_forward_cycles
    }

    /// Round-trip cycles of a line read answered from host memory (the
    /// software cache hit path): one SIF crossing each way plus the host
    /// answer cost, no second device and no daemon forwarding.
    pub fn host_answered_round_trip(&self) -> Cycles {
        2 * (self.sif_packet_cycles + self.hw_latency) + self.sw_answer_cycles
    }

    /// Conservative lookahead of the sharded engine (DESIGN.md §5i): the
    /// minimum virtual time any signal needs to cross a device boundary —
    /// one SIF packet crossing plus the one-way PCIe hardware hop. No
    /// cross-shard message sent at cycle `t` can become visible before
    /// `t + shard_lookahead()`, so lockstep epoch windows of this width
    /// cannot reorder deliveries relative to the serial engine.
    pub fn shard_lookahead(&self) -> Cycles {
        self.sif_packet_cycles + self.hw_latency
    }

    /// One-way cost of an MMIO doorbell or status TLP crossing the SIF
    /// boundary: one 32 B packet through the SIF pipeline plus the PCIe
    /// hardware hop — the same two terms as [`Self::shard_lookahead`],
    /// and deliberately *equal* to it. The vSCC MMIO plane stamps every
    /// host↔device control signal with this cost (a doorbell write is
    /// a posted TLP; a status read is a non-posted TLP plus an answer
    /// stamped with the same cost on the way back), which makes the
    /// host↔device coupling a legal PDES cut: no control signal can
    /// become visible across the boundary in under one lookahead, so
    /// each device may run as its own execution group (DESIGN.md §5i).
    pub fn mmio_crossing_cycles(&self) -> Cycles {
        self.sif_packet_cycles + self.hw_latency
    }

    /// Per-attempt timeout before the recovery layer retries a tunnel
    /// transfer: four routed round trips (~48 k cycles). Rationale: the
    /// slowest legitimate single-line exchange is one routed round trip;
    /// 4× leaves room for queueing behind a concurrent stream without
    /// declaring a live transfer lost, while still resolving a genuine
    /// loss well under any watchdog budget.
    pub fn retry_timeout_cycles(&self) -> Cycles {
        4 * self.routed_line_round_trip()
    }

    /// First-retry backoff of the recovery layer: one routed round trip.
    /// Doubling from here (bounded by the recovery config's cap) spaces
    /// retries on the same scale as the congestion that delays them.
    pub fn retry_backoff_base(&self) -> Cycles {
        self.routed_line_round_trip()
    }

    /// Floor of the *adaptive* per-pair retry timeout (one routed round
    /// trip): however fast a pair's measured RT gets, a timeout below one
    /// legitimate round trip would retry live transfers.
    pub fn adaptive_timeout_floor(&self) -> Cycles {
        self.routed_line_round_trip()
    }

    /// Ceiling of the adaptive per-pair retry timeout (eight routed round
    /// trips): congestion can stretch the EWMA arbitrarily, but a genuine
    /// loss must still resolve well inside any watchdog budget, so the
    /// budget never exceeds 2× the static default.
    pub fn adaptive_timeout_ceiling(&self) -> Cycles {
        8 * self.routed_line_round_trip()
    }

    /// Base interval between health-probe canaries on a demoted pair
    /// (sixteen routed round trips ≈ 160 k cycles): rare enough that
    /// probe traffic is negligible against any application stream, dense
    /// enough that a pair re-promotes within ~1 M cycles of a fault storm
    /// ending (K consecutive successes at this spacing).
    pub fn probe_interval_base(&self) -> Cycles {
        16 * self.routed_line_round_trip()
    }

    /// Cap of the exponential probe backoff (sixteen base intervals):
    /// a pair that keeps failing its canaries is re-tested ever more
    /// rarely, but never less than once per ~2.5 M cycles — hysteresis
    /// against flapping without permanent abandonment.
    pub fn probe_interval_max(&self) -> Cycles {
        16 * self.probe_interval_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_round_trip_matches_paper_factor() {
        let m = PcieModel::default();
        let rt = m.routed_line_round_trip();
        // Paper: ~10^4 core cycles, ~120x the ~100-cycle on-chip access.
        assert!((9_000..=16_000).contains(&rt), "routed RT {rt} outside 10^4 band");
        let onchip = scc::CostModel::default().onchip_reference_latency();
        let factor = rt as f64 / onchip as f64;
        assert!((80.0..=160.0).contains(&factor), "latency factor {factor} not ~120");
    }

    #[test]
    fn sif_ceiling_band() {
        let m = PcieModel::default();
        let peak = m.sif_peak_mbps();
        assert!((35.0..=50.0).contains(&peak), "SIF ceiling {peak} MB/s out of band");
    }

    #[test]
    fn host_answer_is_much_faster_than_routing() {
        let m = PcieModel::default();
        assert!(m.host_answered_round_trip() * 4 < m.routed_line_round_trip());
    }

    #[test]
    fn adaptive_timeout_band_brackets_static_default() {
        let m = PcieModel::default();
        assert!(m.adaptive_timeout_floor() <= m.retry_timeout_cycles());
        assert!(m.retry_timeout_cycles() <= m.adaptive_timeout_ceiling());
        assert!(m.adaptive_timeout_floor() >= m.routed_line_round_trip());
    }

    #[test]
    fn shard_lookahead_is_the_minimum_crossing_cost() {
        let m = PcieModel::default();
        // Default calibration: 400 (SIF packet) + 600 (hw hop) = 1000.
        assert_eq!(m.shard_lookahead(), 1_000);
        // It must lower-bound every modeled cross-device interaction.
        assert!(m.shard_lookahead() <= m.host_answered_round_trip());
        assert!(m.shard_lookahead() * 4 <= m.routed_line_round_trip());
        assert!(m.shard_lookahead() >= 1, "zero lookahead would stall epochs");
    }

    #[test]
    fn mmio_crossing_equals_the_lookahead() {
        // The multi-group partition (DESIGN.md §5i) rests on this
        // identity: every MMIO control signal costs exactly one
        // lookahead to cross the boundary, so the host↔device coupling
        // is a legal PDES cut at any parameterisation of the model.
        let m = PcieModel::default();
        assert_eq!(m.mmio_crossing_cycles(), m.shard_lookahead());
        let skewed = PcieModel { sif_packet_cycles: 123, hw_latency: 456, ..PcieModel::default() };
        assert_eq!(skewed.mmio_crossing_cycles(), skewed.shard_lookahead());
        assert_eq!(skewed.mmio_crossing_cycles(), 579);
    }

    #[test]
    fn probe_intervals_are_sparse_and_bounded() {
        let m = PcieModel::default();
        // Probes must be rare against the data path…
        assert!(m.probe_interval_base() >= 8 * m.routed_line_round_trip());
        // …but the backoff cap keeps re-testing alive.
        assert!(m.probe_interval_max() <= 64 * m.probe_interval_base());
        assert!(m.probe_interval_max() > m.probe_interval_base());
    }
}
