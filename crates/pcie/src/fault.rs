//! Fast write-acknowledge emulation and its instability.
//!
//! The 2012 prototype's *remote put* performance relied on the FPGA
//! generating automatic write acknowledges for requests targeting off-chip
//! memory. Per the paper (§2.3) this "has known stability issues, which
//! prevents a tight coupling of more than two SCC devices and works only
//! for applications with a moderate inter-device communication". We model
//! the mechanism as a per-posted-write ack-loss probability that is zero
//! for ≤2 coupled devices and grows with both device count and traffic —
//! enough to reproduce the qualitative result (the `tbl_stability` bench):
//! fine at 2 devices, unusable at 3+.

use std::cell::RefCell;
use std::fmt;

use des::rng::DetRng;
use des::stats::Counter;

/// Error produced when the fast-ack path lost acknowledges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityError {
    /// Lost acknowledges observed.
    pub failures: u64,
    /// Posted writes issued.
    pub writes: u64,
}

impl fmt::Display for StabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast write-ack instability: {} lost acks in {} posted writes",
            self.failures, self.writes
        )
    }
}

impl std::error::Error for StabilityError {}

/// State of the FPGA fast write-acknowledge emulation.
pub struct FastAck {
    enabled: bool,
    coupled_devices: usize,
    rng: RefCell<DetRng>,
    writes: Counter,
    failures: Counter,
}

/// Base ack-loss probability per posted write at 3 coupled devices.
const BASE_LOSS_P: f64 = 2e-5;

impl FastAck {
    /// Create the emulation for a system of `coupled_devices` devices.
    pub fn new(enabled: bool, coupled_devices: usize, seed: u64) -> Self {
        FastAck {
            enabled,
            coupled_devices,
            rng: RefCell::new(DetRng::seed_from(seed ^ 0xFA57_ACC5)),
            writes: Counter::new(),
            failures: Counter::new(),
        }
    }

    /// Whether fast acks are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Ack-loss probability per posted write in the current configuration.
    pub fn loss_probability(&self) -> f64 {
        if !self.enabled || self.coupled_devices <= 2 {
            0.0
        } else {
            // Doubles per device beyond three: contention on the shared
            // host-side ack path compounds.
            BASE_LOSS_P * (1u64 << (self.coupled_devices - 3)) as f64
        }
    }

    /// Account one posted write; returns `true` if its automatic ack was
    /// lost (the write must be retried / the session destabilizes).
    pub fn on_posted_write(&self) -> bool {
        self.writes.inc();
        let p = self.loss_probability();
        if p > 0.0 && self.rng.borrow_mut().chance(p) {
            self.failures.inc();
            true
        } else {
            false
        }
    }

    /// (posted writes, lost acks) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.writes.get(), self.failures.get())
    }

    /// Err if any ack was lost — the paper's prototype could not recover.
    pub fn check(&self) -> Result<(), StabilityError> {
        if self.failures.get() > 0 {
            Err(StabilityError { failures: self.failures.get(), writes: self.writes.get() })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_devices_are_stable() {
        let fa = FastAck::new(true, 2, 1);
        for _ in 0..200_000 {
            assert!(!fa.on_posted_write());
        }
        assert!(fa.check().is_ok());
    }

    #[test]
    fn disabled_never_fails() {
        let fa = FastAck::new(false, 5, 1);
        for _ in 0..100_000 {
            assert!(!fa.on_posted_write());
        }
        assert!(fa.check().is_ok());
    }

    #[test]
    fn three_devices_fail_under_heavy_traffic() {
        let fa = FastAck::new(true, 3, 7);
        // ~ 1 MB/run of line writes in a real session: ~3e5 posted writes.
        for _ in 0..300_000 {
            fa.on_posted_write();
        }
        let err = fa.check().expect_err("3-device coupling must destabilize");
        assert!(err.failures > 0);
        assert_eq!(err.writes, 300_000);
    }

    #[test]
    fn loss_probability_grows_with_device_count() {
        let p3 = FastAck::new(true, 3, 0).loss_probability();
        let p5 = FastAck::new(true, 5, 0).loss_probability();
        assert!(p5 > p3);
        assert_eq!(p5, p3 * 4.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let fa = FastAck::new(true, 4, seed);
            (0..50_000).filter(|_| fa.on_posted_write()).count()
        };
        assert_eq!(run(11), run(11));
    }
}
