//! Fast write-acknowledge emulation and its instability.
//!
//! The 2012 prototype's *remote put* performance relied on the FPGA
//! generating automatic write acknowledges for requests targeting off-chip
//! memory. Per the paper (§2.3) this "has known stability issues, which
//! prevents a tight coupling of more than two SCC devices and works only
//! for applications with a moderate inter-device communication". We model
//! the mechanism as a per-posted-write ack-loss probability that is zero
//! for ≤2 coupled devices and grows with both device count and traffic —
//! enough to reproduce the qualitative result (the `tbl_stability` bench):
//! fine at 2 devices, unusable at 3+.
//!
//! The emulation rides the deterministic fault plane
//! ([`des::faultplan::FaultPlan`]): an attached plan can inject *extra*
//! ack loss (`ackloss=` in the spec) from its own RNG stream — the legacy
//! draw sequence is untouched, so seeded runs without a plan reproduce
//! byte-identically — and every lost ack, base or injected, lands in the
//! plan's `pcie.fault.ack_lost` counter and `Fault`-category trace. Each
//! loss is also stamped with its virtual-clock time and flow id so a
//! [`StabilityError`] is attributable, not just counted.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use des::faultplan::FaultPlan;
use des::rng::DetRng;
use des::stats::Counter;
use des::Cycles;

/// One lost fast write-ack, stamped for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostAck {
    /// Virtual-clock time of the posted write whose ack was lost.
    pub time: Cycles,
    /// Flow id of the message the write belonged to, if known.
    pub flow: Option<u64>,
}

/// How many individual losses a [`StabilityError`] records (the counts
/// always cover all of them).
pub const LOST_ACK_LOG: usize = 32;

/// Error produced when the fast-ack path lost acknowledges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityError {
    /// Lost acknowledges observed.
    pub failures: u64,
    /// Posted writes issued.
    pub writes: u64,
    /// The first [`LOST_ACK_LOG`] losses, each with its virtual-clock
    /// time and flow id.
    pub lost: Vec<LostAck>,
}

impl fmt::Display for StabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast write-ack instability: {} lost acks in {} posted writes",
            self.failures, self.writes
        )?;
        if !self.lost.is_empty() {
            write!(f, "; first losses:")?;
            for l in self.lost.iter().take(4) {
                match l.flow {
                    Some(flow) => write!(f, " t={} (flow {})", l.time, flow)?,
                    None => write!(f, " t={}", l.time)?,
                }
            }
            if self.lost.len() > 4 {
                write!(f, " …")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for StabilityError {}

/// State of the FPGA fast write-acknowledge emulation.
pub struct FastAck {
    enabled: bool,
    coupled_devices: usize,
    rng: RefCell<DetRng>,
    /// Dedicated base-instability stream for health-probe canary writes.
    /// Probes draw from here (and from the plan's probe stream), never
    /// from `rng`, so probe traffic cannot shift the legacy sequence —
    /// and merely seeding this at construction draws nothing at all.
    probe_rng: RefCell<DetRng>,
    writes: Counter,
    failures: Counter,
    lost: RefCell<Vec<LostAck>>,
    plan: RefCell<Option<Rc<FaultPlan>>>,
}

/// Base ack-loss probability per posted write at 3 coupled devices.
const BASE_LOSS_P: f64 = 2e-5;

impl FastAck {
    /// Create the emulation for a system of `coupled_devices` devices.
    pub fn new(enabled: bool, coupled_devices: usize, seed: u64) -> Self {
        FastAck {
            enabled,
            coupled_devices,
            rng: RefCell::new(DetRng::seed_from(seed ^ 0xFA57_ACC5)),
            probe_rng: RefCell::new(DetRng::seed_from(seed ^ 0x0009_B0BE_CA9A_21E5)),
            writes: Counter::new(),
            failures: Counter::new(),
            lost: RefCell::new(Vec::new()),
            plan: RefCell::new(None),
        }
    }

    /// Attach a fault plan: injected `ackloss=` faults add to the base
    /// instability, and every loss is surfaced through the plan's
    /// counters and trace.
    pub fn attach_plan(&self, plan: Rc<FaultPlan>) {
        *self.plan.borrow_mut() = Some(plan);
    }

    /// Whether fast acks are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Ack-loss probability per posted write in the current configuration
    /// (base instability only; an attached plan adds its own).
    pub fn loss_probability(&self) -> f64 {
        if !self.enabled || self.coupled_devices <= 2 {
            0.0
        } else {
            // Doubles per device beyond three: contention on the shared
            // host-side ack path compounds.
            BASE_LOSS_P * (1u64 << (self.coupled_devices - 3)) as f64
        }
    }

    /// Account one posted write at virtual time `now` for message `flow`;
    /// returns `true` if its automatic ack was lost (the write must be
    /// retried / the session destabilizes).
    pub fn on_posted_write(&self, now: Cycles, flow: Option<u64>) -> bool {
        self.writes.inc();
        let p = self.loss_probability();
        // The legacy stream draws exactly as before any plan existed:
        // only when the base probability is non-zero.
        let base_lost = p > 0.0 && self.rng.borrow_mut().chance(p);
        let plan = self.plan.borrow();
        let injected_lost = plan.as_ref().is_some_and(|pl| pl.extra_ack_loss(now));
        if !(base_lost || injected_lost) {
            return false;
        }
        self.failures.inc();
        let mut lost = self.lost.borrow_mut();
        if lost.len() < LOST_ACK_LOG {
            lost.push(LostAck { time: now, flow });
        }
        if let Some(pl) = plan.as_ref() {
            pl.note_ack_lost(now, flow);
        }
        true
    }

    /// Account one health-probe canary write at `now`; returns `true` if
    /// its ack was lost. Probes see the same loss *rates* as application
    /// writes — base instability plus any injected `ackloss=` (with its
    /// phase bounds) — but draw from dedicated streams and touch neither
    /// the posted-write counters nor the lost-ack log, so a probing run's
    /// application-visible behaviour is unchanged and [`FastAck::check`]
    /// never blames probe traffic.
    pub fn on_probe_write(&self, now: Cycles) -> bool {
        let p = self.loss_probability();
        let base_lost = p > 0.0 && self.probe_rng.borrow_mut().chance(p);
        let injected_lost = self.plan.borrow().as_ref().is_some_and(|pl| pl.probe_ack_loss(now));
        base_lost || injected_lost
    }

    /// (posted writes, lost acks) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.writes.get(), self.failures.get())
    }

    /// Err if any ack was lost — the paper's prototype could not recover.
    pub fn check(&self) -> Result<(), StabilityError> {
        if self.failures.get() > 0 {
            Err(StabilityError {
                failures: self.failures.get(),
                writes: self.writes.get(),
                lost: self.lost.borrow().clone(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::faultplan::FaultSpec;
    use des::trace::{Category, Trace};

    #[test]
    fn two_devices_are_stable() {
        let fa = FastAck::new(true, 2, 1);
        for _ in 0..200_000 {
            assert!(!fa.on_posted_write(0, None));
        }
        assert!(fa.check().is_ok());
    }

    #[test]
    fn disabled_never_fails() {
        let fa = FastAck::new(false, 5, 1);
        for _ in 0..100_000 {
            assert!(!fa.on_posted_write(0, None));
        }
        assert!(fa.check().is_ok());
    }

    #[test]
    fn three_devices_fail_under_heavy_traffic() {
        let fa = FastAck::new(true, 3, 7);
        // ~ 1 MB/run of line writes in a real session: ~3e5 posted writes.
        for _ in 0..300_000 {
            fa.on_posted_write(0, None);
        }
        let err = fa.check().expect_err("3-device coupling must destabilize");
        assert!(err.failures > 0);
        assert_eq!(err.writes, 300_000);
    }

    #[test]
    fn loss_probability_grows_with_device_count() {
        let p3 = FastAck::new(true, 3, 0).loss_probability();
        let p5 = FastAck::new(true, 5, 0).loss_probability();
        assert!(p5 > p3);
        assert_eq!(p5, p3 * 4.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let fa = FastAck::new(true, 4, seed);
            (0..50_000).filter(|_| fa.on_posted_write(0, None)).count()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn lost_acks_are_stamped_for_attribution() {
        let fa = FastAck::new(true, 5, 3);
        let mut t = 0u64;
        for i in 0..100_000u64 {
            t = i * 10;
            fa.on_posted_write(t, Some(i + 1));
        }
        let err = fa.check().expect_err("5-device coupling must destabilize");
        assert!(!err.lost.is_empty());
        assert!(err.lost.len() <= LOST_ACK_LOG);
        assert_eq!(err.lost.len() as u64, err.failures.min(LOST_ACK_LOG as u64));
        for l in &err.lost {
            assert!(l.time <= t);
            assert!(l.flow.is_some());
        }
        let msg = err.to_string();
        assert!(msg.contains("first losses:"), "{msg}");
        assert!(msg.contains("flow"), "{msg}");
    }

    #[test]
    fn attached_plan_preserves_legacy_stream_and_counts_losses() {
        // Losses of a bare FastAck.
        let bare = {
            let fa = FastAck::new(true, 4, 11);
            (0..50_000u64).filter(|_| fa.on_posted_write(0, None)).count()
        };
        // Same seed with a zero-ackloss plan attached: identical stream.
        let trace = Trace::enabled();
        let plan =
            Rc::new(FaultPlan::new(FaultSpec { seed: 5, ..FaultSpec::none() }, trace.clone()));
        let fa = FastAck::new(true, 4, 11);
        fa.attach_plan(plan.clone());
        let with_plan = (0..50_000u64).filter(|i| fa.on_posted_write(*i, Some(1))).count();
        assert_eq!(bare, with_plan, "zero-rate plan must not shift the legacy draw stream");
        assert_eq!(plan.ack_lost.get(), with_plan as u64);
        assert_eq!(trace.events_in(Category::Fault).len(), with_plan);
    }

    #[test]
    fn probe_writes_do_not_perturb_application_stream_or_counters() {
        // Same seed, probes interleaved: the application-write loss
        // pattern and the (writes, failures) stats must be identical.
        let spec = FaultSpec::parse("seed=3,ackloss=0.2").unwrap();
        let run = |probe: bool| {
            let plan = Rc::new(FaultPlan::new(spec.clone(), Trace::disabled()));
            let fa = FastAck::new(true, 4, 11);
            fa.attach_plan(plan);
            let losses: Vec<bool> = (0..20_000u64)
                .map(|i| {
                    if probe {
                        let _ = fa.on_probe_write(i);
                    }
                    fa.on_posted_write(i, None)
                })
                .collect();
            (losses, fa.stats())
        };
        let (plain, plain_stats) = run(false);
        let (probed, probed_stats) = run(true);
        assert_eq!(plain, probed, "probe draws leaked into the application stream");
        assert_eq!(plain_stats, probed_stats, "probes moved the posted-write counters");
    }

    #[test]
    fn probe_writes_see_injected_loss() {
        let spec = FaultSpec::parse("seed=8,ackloss=0.5").unwrap();
        let plan = Rc::new(FaultPlan::new(spec, Trace::disabled()));
        let fa = FastAck::new(true, 2, 1); // base p = 0 at 2 devices
        fa.attach_plan(plan);
        let losses = (0..1000u64).filter(|&i| fa.on_probe_write(i)).count();
        assert!(losses > 300, "injected loss must hit probes too (got {losses})");
        assert_eq!(fa.stats(), (0, 0), "probes must not count as posted writes");
    }

    #[test]
    fn injected_ack_loss_adds_to_base() {
        // 2 devices: base probability is zero, so every loss is injected.
        let spec = FaultSpec::parse("seed=2,ackloss=0.01").unwrap();
        let plan = Rc::new(FaultPlan::new(spec, Trace::disabled()));
        let fa = FastAck::new(true, 2, 1);
        fa.attach_plan(plan.clone());
        let losses = (0..100_000u64).filter(|i| fa.on_posted_write(*i, None)).count();
        assert!(losses > 0, "injected ack loss must fire");
        assert_eq!(plan.ack_lost.get(), losses as u64);
        assert_eq!(fa.stats().1, losses as u64);
    }
}
