//! Device ports and the shared host fabric.
//!
//! Each device owns a full-duplex PCIe path to the host, modelled as two
//! FIFO [`Link`]s whose bandwidth is the SIF's 32 B-packet processing rate
//! (the structural bottleneck of the system, see crate docs). All ports
//! additionally contend for host memory through one shared link.

use std::cell::RefCell;
use std::rc::Rc;

use des::faultplan::FaultPlan;
use des::link::{Bandwidth, Link};
use des::obs::Registry;
use des::stats::Counter;
use des::{Cycles, Sim};
use scc::geometry::DeviceId;

use crate::model::PcieModel;

/// Kind discriminator of a host↔device control TLP on the MMIO conduit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConduitKind {
    /// Posted doorbell write into a host register window (core → host).
    /// The sender continues at wire-free time; the write lands at the
    /// stamped arrival.
    Doorbell,
    /// Non-posted status read request (core → host); the reader blocks
    /// until the matching [`ConduitKind::StatusAnswer`] returns.
    StatusRead,
    /// Completion carrying the status payload back (host → core).
    StatusAnswer,
}

/// A latency-stamped control TLP crossing the host↔device boundary:
/// the payload plus the virtual time at which it becomes visible on
/// the far side. Stamped only by [`DevicePort::stamp_to_host`] /
/// [`DevicePort::stamp_to_device`], so every instance carries at least
/// [`PcieModel::mmio_crossing_cycles`] of modeled delay — the property
/// that makes the host↔device coupling a legal PDES cut (the conduit
/// TLP is the `des::shard` boundary-message discipline applied to the
/// MMIO plane).
#[derive(Debug, Clone)]
pub struct ConduitTlp<T> {
    /// What kind of control signal this is.
    pub kind: ConduitKind,
    /// The device whose port stamped it.
    pub device: DeviceId,
    /// Virtual time at which the TLP is visible at the far end.
    pub arrival: Cycles,
    /// The control payload (register line, packed status, ...).
    pub payload: T,
}

/// One device's PCIe attachment (SIF + FPGA + cable).
pub struct DevicePort {
    /// Device → host direction.
    pub egress: Link,
    /// Host → device direction.
    pub ingress: Link,
    /// The device this port belongs to.
    pub device: DeviceId,
    /// Installed fault plan, if any; gates transfers during link-down
    /// windows. `None` (the default) is the zero-perturbation path.
    faults: RefCell<Option<Rc<FaultPlan>>>,
    /// The model's minimum boundary-crossing cost; the stamp helpers
    /// assert every stamped arrival respects it.
    min_crossing: Cycles,
    /// Control TLPs stamped through this port (both directions).
    conduit_tlps: Counter,
}

impl DevicePort {
    /// Build a port from the model parameters.
    pub fn new(model: &PcieModel, device: DeviceId) -> Self {
        let bw = model.sif_bandwidth();
        DevicePort {
            egress: Link::new(bw, model.hw_latency, model.per_transfer_cycles),
            ingress: Link::new(bw, model.hw_latency, model.per_transfer_cycles),
            device,
            faults: RefCell::new(None),
            min_crossing: model.mmio_crossing_cycles(),
            conduit_tlps: Counter::new(),
        }
    }

    /// Stamp a control TLP device → host: reserve `bytes` of egress
    /// wire time and return the stamped TLP plus the posted-completion
    /// point (`wire_free`) at which the sender may continue. The
    /// arrival stamp is checked against the model's minimum crossing
    /// cost — the boundary discipline the multi-group partition relies
    /// on (DESIGN.md §5i).
    pub fn stamp_to_host<T>(
        &self,
        sim: &Sim,
        kind: ConduitKind,
        bytes: u64,
        payload: T,
    ) -> (ConduitTlp<T>, Cycles) {
        let res = self.egress.reserve_timed(sim, bytes);
        self.check_stamp(sim, res.arrival);
        (ConduitTlp { kind, device: self.device, arrival: res.arrival, payload }, res.wire_free)
    }

    /// Stamp a control TLP host → device (status answers): reserve
    /// `bytes` of ingress wire time and return the stamped TLP plus the
    /// wire-free point.
    pub fn stamp_to_device<T>(
        &self,
        sim: &Sim,
        kind: ConduitKind,
        bytes: u64,
        payload: T,
    ) -> (ConduitTlp<T>, Cycles) {
        let res = self.ingress.reserve_timed(sim, bytes);
        self.check_stamp(sim, res.arrival);
        (ConduitTlp { kind, device: self.device, arrival: res.arrival, payload }, res.wire_free)
    }

    fn check_stamp(&self, sim: &Sim, arrival: Cycles) {
        self.conduit_tlps.add(1);
        debug_assert!(
            arrival.saturating_sub(sim.now()) >= self.min_crossing,
            "conduit TLP stamped {} cycles ahead, below the {}-cycle boundary minimum",
            arrival.saturating_sub(sim.now()),
            self.min_crossing
        );
    }

    /// Install a fault plan on this port.
    pub fn set_faults(&self, plan: Rc<FaultPlan>) {
        *self.faults.borrow_mut() = Some(plan);
    }

    /// Hold the caller while the link is in an injected link-down window
    /// (the switch retains the TLP until the link retrains). A no-op
    /// without an installed plan or outside a window.
    pub async fn fault_gate(&self, sim: &Sim) {
        let until = self.faults.borrow().as_ref().and_then(|plan| plan.link_down_until(sim.now()));
        if let Some(until) = until {
            sim.delay_until(until).await;
        }
    }

    /// Move `bytes` device → host; resolves at arrival in host memory.
    pub async fn to_host(&self, sim: &Sim, bytes: u64) {
        self.fault_gate(sim).await;
        self.egress.transfer(sim, bytes).await;
    }

    /// Move `bytes` host → device; resolves at arrival in the device.
    pub async fn to_device(&self, sim: &Sim, bytes: u64) {
        self.fault_gate(sim).await;
        self.ingress.transfer(sim, bytes).await;
    }

    /// Reserve egress wire time without waiting (pipelined senders).
    pub fn reserve_to_host(&self, sim: &Sim, bytes: u64) -> Cycles {
        self.egress.reserve(sim, bytes)
    }

    /// Reserve ingress wire time without waiting (pipelined delivery).
    pub fn reserve_to_device(&self, sim: &Sim, bytes: u64) -> Cycles {
        self.ingress.reserve(sim, bytes)
    }

    /// Total payload bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.egress.total_bytes() + self.ingress.total_bytes()
    }

    /// Surface both directions' link instruments in `registry` under
    /// `pcie.linkN.{egress,ingress}.*` where `N` is the device id.
    pub fn register_metrics(&self, registry: &Registry) {
        let link = registry.scoped("pcie").scoped(&format!("link{}", self.device.0));
        self.egress.register_metrics(&link.scoped("egress"));
        self.ingress.register_metrics(&link.scoped("ingress"));
        link.scoped("conduit").adopt_counter("tlps", &self.conduit_tlps);
    }
}

/// The host side of the fabric: one port per device plus the shared
/// host-memory path.
pub struct HostFabric {
    /// Per-device ports, indexed by device id.
    pub ports: Vec<DevicePort>,
    /// Shared host memory bandwidth (both the daemon's buffers and DMA
    /// descriptors live here).
    pub host_mem: Link,
    /// The timing model.
    pub model: PcieModel,
}

impl HostFabric {
    /// Build the fabric for `devices` devices.
    pub fn new(model: PcieModel, devices: u8) -> Self {
        let host_mem = Link::new(Bandwidth::bytes_per_cycle(model.host_mem_bytes_per_cycle), 0, 20);
        HostFabric {
            ports: (0..devices).map(|d| DevicePort::new(&model, DeviceId(d))).collect(),
            host_mem,
            model,
        }
    }

    /// The port of `device`.
    pub fn port(&self, device: DeviceId) -> &DevicePort {
        &self.ports[device.0 as usize]
    }

    /// Install a fault plan on every port.
    pub fn set_faults(&self, plan: &Rc<FaultPlan>) {
        for port in &self.ports {
            port.set_faults(plan.clone());
        }
    }

    /// Charge a pass through host memory for `bytes` (copy into or out of
    /// a daemon buffer).
    pub async fn host_copy(&self, sim: &Sim, bytes: u64) {
        self.host_mem.transfer(sim, bytes).await;
    }

    /// Surface every port and the shared host-memory link in `registry`
    /// (`pcie.linkN.*`, `pcie.host_mem.*`).
    pub fn register_metrics(&self, registry: &Registry) {
        for port in &self.ports {
            port.register_metrics(registry);
        }
        self.host_mem.register_metrics(&registry.scoped("pcie").scoped("host_mem"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_stream_rate_matches_sif_ceiling() {
        let sim = Sim::new();
        let model = PcieModel::default();
        let fabric = HostFabric::new(model.clone(), 2);
        let bytes: u64 = 1 << 20;
        let s = sim.clone();
        let t = sim
            .block_on(async move {
                fabric.port(DeviceId(0)).to_host(&s, bytes).await;
                s.now()
            })
            .unwrap();
        let mbps = des::time::CORE_FREQ.mbytes_per_sec(bytes, t);
        let peak = model.sif_peak_mbps();
        assert!(
            (mbps - peak).abs() / peak < 0.05,
            "1 MiB stream at {mbps} MB/s should be within 5% of the {peak} MB/s ceiling"
        );
    }

    #[test]
    fn directions_are_independent() {
        let sim = Sim::new();
        let fabric = std::rc::Rc::new(HostFabric::new(PcieModel::default(), 1));
        // Saturate egress; an ingress transfer must not queue behind it.
        let (s, f) = (sim.clone(), fabric.clone());
        sim.spawn(async move {
            f.port(DeviceId(0)).to_host(&s, 1 << 20).await;
        });
        let (s, f) = (sim.clone(), fabric.clone());
        let h = sim.spawn(async move {
            f.port(DeviceId(0)).to_device(&s, 32).await;
            s.now()
        });
        sim.run().unwrap();
        let t = h.try_take().unwrap();
        assert!(t < 2_000, "ingress line took {t} cycles; must not contend with egress");
    }

    #[test]
    fn ports_of_different_devices_run_in_parallel() {
        let sim = Sim::new();
        let fabric = std::rc::Rc::new(HostFabric::new(PcieModel::default(), 2));
        let mut handles = Vec::new();
        for d in 0..2u8 {
            let (s, f) = (sim.clone(), fabric.clone());
            handles.push(sim.spawn(async move {
                f.port(DeviceId(d)).to_host(&s, 1 << 18).await;
                s.now()
            }));
        }
        sim.run().unwrap();
        let t0 = handles[0].try_take().unwrap();
        let t1 = handles[1].try_take().unwrap();
        // Same finish time: no cross-device serialization on the wire.
        assert_eq!(t0, t1);
    }

    #[test]
    fn fabric_metrics_cover_every_link() {
        let sim = Sim::new();
        let fabric = HostFabric::new(PcieModel::default(), 2);
        let reg = Registry::new();
        fabric.register_metrics(&reg);
        let s = sim.clone();
        let t = sim
            .block_on(async move {
                fabric.port(DeviceId(1)).to_host(&s, 4096).await;
                fabric.host_copy(&s, 4096).await;
                (fabric.port(DeviceId(1)).total_bytes(), ())
            })
            .unwrap();
        assert_eq!(reg.counter("pcie.link1.egress.bytes").get(), 4096);
        assert_eq!(reg.counter("pcie.link0.egress.bytes").get(), 0);
        assert_eq!(reg.counter("pcie.host_mem.bytes").get(), 4096);
        assert_eq!(t.0, 4096);
        let names = reg.names();
        assert!(names.contains(&"pcie.link0.ingress.queue_depth".to_string()));
        assert!(names.contains(&"pcie.host_mem.latency_cycles".to_string()));
    }

    #[test]
    fn link_down_window_stalls_transfers() {
        use des::faultplan::{FaultPlan, FaultSpec};
        use des::trace::Trace;
        let spec = FaultSpec::parse("linkdown=5000@1000000").unwrap();
        let sim = Sim::new();
        let fabric = std::rc::Rc::new(HostFabric::new(PcieModel::default(), 1));
        fabric.set_faults(&Rc::new(FaultPlan::new(spec, Trace::disabled())));
        let (s, f) = (sim.clone(), fabric.clone());
        let t = sim
            .block_on(async move {
                // t=0 is inside the first down window: the line waits for
                // the link to retrain at t=5000 before crossing.
                f.port(DeviceId(0)).to_device(&s, 32).await;
                s.now()
            })
            .unwrap();
        assert!(t >= 5_000, "transfer finished at {t}, before the window ended");
        // Without the plan the same line crosses in well under 5000 cycles.
        let sim = Sim::new();
        let fabric = std::rc::Rc::new(HostFabric::new(PcieModel::default(), 1));
        let (s, f) = (sim.clone(), fabric.clone());
        let t0 = sim
            .block_on(async move {
                f.port(DeviceId(0)).to_device(&s, 32).await;
                s.now()
            })
            .unwrap();
        assert!(t0 < 5_000);
    }

    #[test]
    fn conduit_stamps_respect_the_boundary_minimum() {
        let sim = Sim::new();
        let model = PcieModel::default();
        let fabric = HostFabric::new(model.clone(), 1);
        let reg = Registry::new();
        fabric.register_metrics(&reg);
        let port = fabric.port(DeviceId(0));
        // A posted doorbell: the sender's continuation point precedes
        // the arrival, and the arrival carries at least one full
        // MMIO crossing of modeled delay.
        let (tlp, wire_free) = port.stamp_to_host(&sim, ConduitKind::Doorbell, 32, 0xD00Du32);
        assert_eq!(tlp.kind, ConduitKind::Doorbell);
        assert_eq!(tlp.payload, 0xD00D);
        assert!(wire_free < tlp.arrival, "posted writer continues before the TLP lands");
        assert!(
            tlp.arrival - sim.now() >= model.mmio_crossing_cycles(),
            "doorbell stamped {} cycles ahead, below the crossing cost",
            tlp.arrival - sim.now()
        );
        // The answer direction observes the same discipline.
        let (ans, _) = port.stamp_to_device(&sim, ConduitKind::StatusAnswer, 32, [0u8; 4]);
        assert!(ans.arrival - sim.now() >= model.mmio_crossing_cycles());
        assert_eq!(reg.counter("pcie.link0.conduit.tlps").get(), 2);
        // Back-to-back stamps queue on the wire FIFO like any transfer.
        let (second, _) = port.stamp_to_host(&sim, ConduitKind::StatusRead, 32, 0u32);
        assert!(second.arrival > tlp.arrival);
    }

    #[test]
    fn host_mem_is_shared_contention_point() {
        let sim = Sim::new();
        let fabric = std::rc::Rc::new(HostFabric::new(PcieModel::default(), 2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (s, f) = (sim.clone(), fabric.clone());
            handles.push(sim.spawn(async move {
                f.host_copy(&s, 1 << 16).await;
                s.now()
            }));
        }
        sim.run().unwrap();
        let t0 = handles[0].try_take().unwrap();
        let t1 = handles[1].try_take().unwrap();
        assert!(t1 > t0, "second host copy must queue behind the first");
    }
}
