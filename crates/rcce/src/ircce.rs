//! iRCCE non-blocking extensions: `isend`/`irecv` requests and wait lists.
//!
//! Requests are simulated-concurrent tasks; per-pair FIFO locks preserve
//! iRCCE's in-order message matching between any two ranks even when many
//! requests are outstanding.

use des::JoinHandle;

use crate::api::Rcce;

/// Handle of an outstanding non-blocking send (`iRCCE_isend`).
pub struct SendRequest {
    handle: JoinHandle<()>,
}

impl SendRequest {
    /// Block (in simulated time) until the send completed
    /// (`iRCCE_isend_wait`).
    pub async fn wait(self) {
        self.handle.await;
    }

    /// Non-blocking completion test (`iRCCE_isend_test`).
    pub fn test(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Handle of an outstanding non-blocking receive (`iRCCE_irecv`).
pub struct RecvRequest {
    handle: JoinHandle<Vec<u8>>,
}

impl RecvRequest {
    /// Block until the message arrived; yields the payload
    /// (`iRCCE_irecv_wait`).
    pub async fn wait(self) -> Vec<u8> {
        self.handle.await
    }

    /// Non-blocking completion test (`iRCCE_irecv_test`).
    pub fn test(&self) -> bool {
        self.handle.is_finished()
    }
}

impl Rcce {
    /// Start a non-blocking send of `data` to `dest`.
    pub fn isend(&self, data: Vec<u8>, dest: usize) -> SendRequest {
        assert!(dest < self.num_ues() && dest != self.id());
        let ctx = self.ctx.clone();
        let me = self.id();
        ctx.session.record_traffic(me, dest, data.len() as u64);
        let sim = self.sim().clone();
        let handle = sim.spawn_named(format!("isend {me}->{dest}"), async move {
            let start = ctx.session.sim().now();
            let lock = ctx.send_lock(dest).clone();
            lock.lock().await;
            // nth lock holder gets the nth flow id, matching the
            // receiver's per-pair FIFO allocation.
            let flow = ctx.session.next_send_flow(me, dest);
            let metrics = ctx.session.rcce_metrics();
            metrics.send_lock_wait.add(ctx.session.sim().now() - start);
            let acquired = ctx.session.sim().now();
            ctx.enter_send(flow);
            let proto = ctx.session.proto(me, dest);
            proto.send(&ctx, dest, &data, flow).await;
            ctx.exit_send();
            metrics.send_lock_hold.record(ctx.session.sim().now() - acquired);
            lock.unlock();
            metrics.send_lat[crate::session::size_class(data.len())]
                .record(ctx.session.sim().now() - start);
        });
        SendRequest { handle }
    }

    /// Start a non-blocking receive of `len` bytes from `src`.
    pub fn irecv(&self, len: usize, src: usize) -> RecvRequest {
        assert!(src < self.num_ues() && src != self.id());
        let ctx = self.ctx.clone();
        let me = self.id();
        let sim = self.sim().clone();
        let handle = sim.spawn_named(format!("irecv {src}->{me}"), async move {
            let start = ctx.session.sim().now();
            let mut buf = vec![0u8; len];
            let lock = ctx.recv_lock(src).clone();
            lock.lock().await;
            let flow = ctx.session.next_recv_flow(src, me);
            let proto = ctx.session.proto(src, me);
            proto.recv(&ctx, src, &mut buf, flow).await;
            lock.unlock();
            ctx.session.rcce_metrics().recv_lat[crate::session::size_class(len)]
                .record(ctx.session.sim().now() - start);
            buf
        });
        RecvRequest { handle }
    }
}

/// A wait list over mixed outstanding requests (`iRCCE_wait_all`).
#[derive(Default)]
pub struct WaitList {
    sends: Vec<SendRequest>,
    recvs: Vec<RecvRequest>,
}

impl WaitList {
    /// Empty wait list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track a send request.
    pub fn push_send(&mut self, r: SendRequest) {
        self.sends.push(r);
    }

    /// Track a receive request.
    pub fn push_recv(&mut self, r: RecvRequest) {
        self.recvs.push(r);
    }

    /// Number of tracked requests.
    pub fn len(&self) -> usize {
        self.sends.len() + self.recvs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wait for every request; returns the received payloads in push
    /// order.
    pub async fn wait_all(self) -> Vec<Vec<u8>> {
        for s in self.sends {
            s.wait().await;
        }
        let mut out = Vec::with_capacity(self.recvs.len());
        for r in self.recvs {
            out.push(r.wait().await);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::session::SessionBuilder;
    use des::Sim;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn session(sim: &Sim, n: usize) -> crate::Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(n).build()
    }

    #[test]
    fn isend_irecv_roundtrip() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 0 {
                let req = r.isend(vec![9u8; 300], 1);
                req.wait().await;
            } else {
                let req = r.irecv(300, 0);
                let got = req.wait().await;
                assert_eq!(got, vec![9u8; 300]);
            }
        })
        .unwrap();
    }

    #[test]
    fn outstanding_sends_same_pair_keep_order() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 0 {
                let a = r.isend(vec![1u8; 100], 1);
                let b = r.isend(vec![2u8; 100], 1);
                a.wait().await;
                b.wait().await;
            } else {
                let first = r.recv_vec(100, 0).await;
                let second = r.recv_vec(100, 0).await;
                assert_eq!(first, vec![1u8; 100]);
                assert_eq!(second, vec![2u8; 100]);
            }
        })
        .unwrap();
    }

    #[test]
    fn irecv_posted_before_send_arrives() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 1 {
                let req = r.irecv(64, 0);
                assert!(!req.test());
                let got = req.wait().await;
                assert_eq!(got, vec![5u8; 64]);
            } else {
                r.compute(10_000).await;
                r.send(&[5u8; 64], 1).await;
            }
        })
        .unwrap();
    }

    #[test]
    fn overlap_computation_with_communication() {
        // Non-blocking allows compute to proceed while the message moves.
        let run = |overlap: bool| {
            let sim = Sim::new();
            let s = session(&sim, 2);
            s.run_app(move |r| async move {
                let big = vec![3u8; 30_000];
                if r.id() == 0 {
                    if overlap {
                        let req = r.isend(big, 1);
                        r.compute(200_000).await;
                        req.wait().await;
                    } else {
                        r.send(&big, 1).await;
                        r.compute(200_000).await;
                    }
                } else {
                    let mut buf = vec![0u8; 30_000];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        };
        // In this model, isend runs the same protocol concurrently with
        // the compute block, so overlap must not be slower.
        assert!(run(true) <= run(false));
    }

    #[test]
    fn waitlist_gathers_everything() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        s.run_app(|r| async move {
            let me = r.id();
            let n = r.num_ues();
            let mut wl = crate::ircce::WaitList::new();
            for other in 0..n {
                if other == me {
                    continue;
                }
                wl.push_send(r.isend(vec![me as u8; 50], other));
                wl.push_recv(r.irecv(50, other));
            }
            assert_eq!(wl.len(), 6);
            let msgs = wl.wait_all().await;
            // Received one message from each peer, in peer order.
            let mut peers: Vec<usize> = (0..n).filter(|&o| o != me).collect();
            peers.sort_unstable();
            for (msg, peer) in msgs.iter().zip(peers) {
                assert_eq!(msg, &vec![peer as u8; 50]);
            }
        })
        .unwrap();
    }
}
