//! The per-rank RCCE handle: the API application code programs against.
//!
//! Mirrors the RCCE surface: two-sided `send`/`recv` (*non-gory*), the
//! one-sided *gory* layer (`put`/`get`/flag operations), collectives, and
//! the iRCCE non-blocking extensions (see [`crate::ircce`]).

use std::rc::Rc;

use scc::geometry::MpbAddr;
use scc::CoreHandle;

use crate::layout;
use crate::session::{size_class, RankCtx};

/// Handle of one RCCE unit of execution (UE).
///
/// Cheap to clone; clones share the rank's protocol state.
#[derive(Clone)]
pub struct Rcce {
    pub(crate) ctx: Rc<RankCtx>,
}

impl Rcce {
    pub(crate) fn new(ctx: Rc<RankCtx>) -> Self {
        Rcce { ctx }
    }

    /// This UE's rank (`RCCE_ue()`).
    pub fn id(&self) -> usize {
        self.ctx.rank
    }

    /// Number of UEs in the session (`RCCE_num_ues()`).
    pub fn num_ues(&self) -> usize {
        self.ctx.num_ranks()
    }

    /// The physical core this UE runs on.
    pub fn who(&self) -> scc::geometry::GlobalCore {
        self.ctx.who()
    }

    /// The simulation clock.
    pub fn sim(&self) -> &des::Sim {
        self.ctx.core.sim()
    }

    /// Current simulated time in core cycles.
    pub fn now(&self) -> des::Cycles {
        self.ctx.core.sim().now()
    }

    /// Direct access to the core (escape hatch for gory programs).
    pub fn core(&self) -> &CoreHandle {
        &self.ctx.core
    }

    /// The rank context (used by the vSCC scheme implementations).
    pub fn ctx(&self) -> &Rc<RankCtx> {
        &self.ctx
    }

    /// Charge `flops` of local computation time.
    pub async fn compute(&self, flops: u64) {
        self.ctx.core.compute(flops).await;
    }

    // ------------------------------------------------------------------
    // Non-gory two-sided interface
    // ------------------------------------------------------------------

    /// Blocking send (`RCCE_send`): returns when `dest` has received.
    pub async fn send(&self, data: &[u8], dest: usize) {
        assert!(dest < self.num_ues(), "send to invalid rank {dest}");
        assert_ne!(dest, self.id(), "RCCE forbids self-sends");
        self.ctx.session.record_traffic(self.id(), dest, data.len() as u64);
        let metrics = self.ctx.session.rcce_metrics();
        let me = self.id();
        let start = self.now();
        let trace = self.ctx.session.trace().clone();
        let lock = self.ctx.send_lock(dest).clone();
        // Flow allocation order matches lock-holder order because the
        // send lock is a FIFO semaphore (determinism invariant #1).
        let flow = self.ctx.session.next_send_flow(me, dest);
        trace.begin_f(
            self.now(),
            des::trace::Category::Protocol,
            "send_lock",
            Some(flow),
            || self.ctx.label.clone(),
            || des::fields![dest = dest, bytes = data.len()],
        );
        lock.lock().await;
        trace.end_f(self.now(), des::trace::Category::Protocol, "send_lock", Some(flow), || {
            self.ctx.label.clone()
        });
        metrics.send_lock_wait.add(self.now() - start);
        let acquired = self.now();
        self.ctx.enter_send(flow);
        let proto = self.ctx.session.proto(me, dest);
        proto.send(&self.ctx, dest, data, flow).await;
        self.ctx.exit_send();
        metrics.send_lock_hold.record(self.now() - acquired);
        lock.unlock();
        metrics.send_lat[size_class(data.len())].record(self.now() - start);
    }

    /// Blocking receive (`RCCE_recv`): fills `buf` from `src`.
    pub async fn recv(&self, buf: &mut [u8], src: usize) {
        assert!(src < self.num_ues(), "recv from invalid rank {src}");
        assert_ne!(src, self.id(), "RCCE forbids self-receives");
        let start = self.now();
        let lock = self.ctx.recv_lock(src).clone();
        lock.lock().await;
        let flow = self.ctx.session.next_recv_flow(src, self.id());
        let proto = self.ctx.session.proto(src, self.id());
        proto.recv(&self.ctx, src, buf, flow).await;
        lock.unlock();
        self.ctx.session.rcce_metrics().recv_lat[size_class(buf.len())].record(self.now() - start);
    }

    /// Convenience: receive a message of known length into a new buffer.
    pub async fn recv_vec(&self, len: usize, src: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.recv(&mut buf, src).await;
        buf
    }

    // ------------------------------------------------------------------
    // Gory one-sided interface
    // ------------------------------------------------------------------

    /// `RCCE_put`: copy private data into `target` rank's payload area at
    /// byte `offset`.
    pub async fn put(&self, target: usize, offset: usize, data: &[u8]) {
        let who = self.ctx.session.who(target);
        self.ctx.core.put(layout::payload(who, offset), data).await;
    }

    /// `RCCE_get`: copy from `target` rank's payload area into `buf`.
    pub async fn get(&self, target: usize, offset: usize, buf: &mut [u8]) {
        let who = self.ctx.session.who(target);
        self.ctx.core.get(layout::payload(who, offset), buf).await;
    }

    /// `RCCE_flag_write` on an arbitrary MPB address.
    pub async fn flag_write(&self, addr: MpbAddr, value: u8) {
        self.ctx.core.flag_write(addr, value).await;
    }

    /// `RCCE_flag_read` (invalidate + read).
    pub async fn flag_read(&self, addr: MpbAddr) -> u8 {
        self.ctx.core.flag_read(addr).await
    }

    /// `RCCE_wait_until`: spin until the local flag equals `value`.
    pub async fn flag_wait(&self, addr: MpbAddr, value: u8) {
        self.ctx.core.flag_wait(addr, value).await;
    }

    /// Invalidate all MPBT-tagged L1 lines (`RCCE_DCMflush` / `CL1INVMB`).
    pub async fn cl1invmb(&self) {
        self.ctx.core.cl1invmb().await;
    }

    /// Acquire the test-and-set lock of `rank`'s core
    /// (`RCCE_acquire_lock`). Only valid within one device.
    pub async fn acquire_lock(&self, rank: usize) {
        let who = self.ctx.session.who(rank);
        assert_eq!(who.device, self.who().device, "T&S registers are per-device");
        self.ctx.core.lock(who.core).await;
    }

    /// Release a test-and-set lock (`RCCE_release_lock`).
    pub async fn release_lock(&self, rank: usize) {
        let who = self.ctx.session.who(rank);
        assert_eq!(who.device, self.who().device, "T&S registers are per-device");
        self.ctx.core.unlock(who.core).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::session::SessionBuilder;
    use des::Sim;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn session(sim: &Sim, n: usize) -> crate::Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(n).build()
    }

    #[test]
    fn send_recv_roundtrip_small() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        let out = s
            .run_app(|r| async move {
                if r.id() == 0 {
                    r.send(b"hello scc", 1).await;
                    0u8
                } else {
                    let got = r.recv_vec(9, 0).await;
                    assert_eq!(&got, b"hello scc");
                    1u8
                }
            })
            .unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn send_recv_multi_chunk() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        let msg: Vec<u8> = (0..40_000u32).map(|x| (x % 251) as u8).collect();
        let expect = msg.clone();
        s.run_app(move |r| {
            let msg = msg.clone();
            let expect = expect.clone();
            async move {
                if r.id() == 0 {
                    r.send(&msg, 1).await;
                } else {
                    let got = r.recv_vec(expect.len(), 0).await;
                    assert_eq!(got, expect);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn zero_length_message_synchronizes() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.compute(5_000).await;
                r.send(&[], 1).await;
            } else {
                r.recv(&mut [], 0).await;
                // Receiver cannot pass the empty message before the
                // sender reached its send.
                assert!(r.now() >= 5_000);
            }
        })
        .unwrap();
    }

    #[test]
    fn consecutive_messages_same_pair() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            for i in 0..5u8 {
                if r.id() == 0 {
                    r.send(&[i; 100], 1).await;
                } else {
                    let got = r.recv_vec(100, 0).await;
                    assert_eq!(got, vec![i; 100]);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn bidirectional_exchange() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[1; 64], 1).await;
                let got = r.recv_vec(64, 1).await;
                assert_eq!(got, vec![2; 64]);
            } else {
                let got = r.recv_vec(64, 0).await;
                assert_eq!(got, vec![1; 64]);
                r.send(&[2; 64], 0).await;
            }
        })
        .unwrap();
    }

    #[test]
    fn many_ranks_ring() {
        let sim = Sim::new();
        let s = session(&sim, 8);
        s.run_app(|r| async move {
            let n = r.num_ues();
            let next = (r.id() + 1) % n;
            let prev = (r.id() + n - 1) % n;
            // Ring shift: everyone sends its rank to the successor.
            let payload = vec![r.id() as u8; 256];
            if r.id() % 2 == 0 {
                r.send(&payload, next).await;
                let got = r.recv_vec(256, prev).await;
                assert_eq!(got, vec![prev as u8; 256]);
            } else {
                let got = r.recv_vec(256, prev).await;
                assert_eq!(got, vec![prev as u8; 256]);
                r.send(&payload, next).await;
            }
        })
        .unwrap();
    }

    #[test]
    fn traffic_is_recorded() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[0; 1000], 1).await;
            } else {
                r.recv(&mut [0; 1000], 0).await;
            }
        })
        .unwrap();
        assert_eq!(s.traffic_matrix()[0][1], 1000);
        assert_eq!(s.message_matrix()[0][1], 1);
    }

    #[test]
    fn gory_put_get_with_flags() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            let flag = crate::layout::vdma_done_flag(r.ctx().session.who(1));
            if r.id() == 0 {
                // One-sided: write into rank 1's payload, then raise a flag.
                r.put(1, 100, &[42; 32]).await;
                r.flag_write(flag, 1).await;
            } else {
                r.flag_wait(flag, 1).await;
                r.cl1invmb().await;
                let mut buf = [0u8; 32];
                r.get(1, 100, &mut buf).await;
                assert_eq!(buf, [42; 32]);
            }
        })
        .unwrap();
    }

    #[test]
    fn tas_lock_via_api() {
        let sim = Sim::new();
        let s = session(&sim, 2);
        s.run_app(|r| async move {
            r.acquire_lock(0).await;
            r.compute(100).await;
            r.release_lock(0).await;
        })
        .unwrap();
    }

    #[test]
    fn pipelined_protocol_session() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        let s = SessionBuilder::new(&sim, vec![dev])
            .max_ranks(2)
            .onchip_protocol(std::rc::Rc::new(crate::PipelinedProtocol::default()))
            .build();
        let msg: Vec<u8> = (0..20_000u32).map(|x| (x * 7 % 256) as u8).collect();
        let expect = msg.clone();
        s.run_app(move |r| {
            let msg = msg.clone();
            let expect = expect.clone();
            async move {
                if r.id() == 0 {
                    r.send(&msg, 1).await;
                } else {
                    let got = r.recv_vec(expect.len(), 0).await;
                    assert_eq!(got, expect);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn pipelined_faster_than_blocking_for_large_messages() {
        let run = |pipelined: bool| -> u64 {
            let sim = Sim::new();
            let dev = SccDevice::new(&sim, DeviceId(0));
            let mut b = SessionBuilder::new(&sim, vec![dev]).max_ranks(2);
            if pipelined {
                b = b.onchip_protocol(std::rc::Rc::new(crate::PipelinedProtocol::default()));
            }
            let s = b.build();
            s.run_app(|r| async move {
                let msg = vec![7u8; 64 * 1024];
                if r.id() == 0 {
                    r.send(&msg, 1).await;
                } else {
                    let mut buf = vec![0u8; 64 * 1024];
                    r.recv(&mut buf, 0).await;
                }
            })
            .unwrap();
            sim.now()
        };
        let t_block = run(false);
        let t_pipe = run(true);
        assert!(
            t_pipe * 10 < t_block * 9,
            "pipelined ({t_pipe}) should beat blocking ({t_block}) by >10%"
        );
    }
}
