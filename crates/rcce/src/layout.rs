//! The RCCE memory layout of each core's 8 KiB MPB region.
//!
//! ```text
//! offset   0 .. 240   sent[j]    per-source chunk counters (written remotely)
//! offset 256 .. 496   ready[j]   per-destination ack counters (written remotely)
//! offset 496 .. 504   barrier[r] dissemination-barrier round flags
//! offset 504 .. 512   misc       vDMA completion flag etc.
//! offset 512 .. 8192  payload    7680 B = 2 pipeline slots x 3840 B
//! ```
//!
//! Flags are one-byte wrapping *counters*, not booleans: the sender
//! increments `sent`, the receiver increments `ready`, and both poll their
//! local copies for a target value (wrap-around-safe comparison). This is
//! the counter-flag scheme iRCCE uses for its pipelined protocol and it
//! subsumes RCCE's toggle flags.
//!
//! A message larger than [`CHUNK_BYTES`] is split; the paper's Fig. 6
//! throughput dip "from 8 kB" is exactly this split (the 8 KiB region must
//! also hold the flags, so an 8 KiB payload no longer fits — footnote 5).

use scc::geometry::{GlobalCore, MpbAddr};

/// Most ranks a session can hold (5 devices × 48 cores).
pub const MAX_RANKS: usize = 240;

/// Byte offset of the `sent[j]` counter array.
pub const OFF_SENT: u16 = 0;
/// Byte offset of the `ready[j]` counter array.
pub const OFF_READY: u16 = 256;
/// Byte offset of the barrier round flags.
pub const OFF_BARRIER: u16 = 496;
/// Number of dissemination-barrier rounds supported (2^8 = 256 ≥ 240).
pub const BARRIER_ROUNDS: u16 = 8;
/// Byte offset of the vDMA completion flag (paper §3.3: the core spins on
/// a flag in its own on-chip memory after programming the controller).
pub const OFF_VDMA_DONE: u16 = 504;
/// Byte offset of the payload buffer.
pub const OFF_PAYLOAD: u16 = 512;
/// Usable payload bytes per chunk (one full MPB round).
pub const CHUNK_BYTES: usize = 7680;
/// Pipeline slots subdivide the payload buffer.
pub const PIPELINE_SLOTS: usize = 2;
/// Bytes per pipeline slot.
pub const SLOT_BYTES: usize = CHUNK_BYTES / PIPELINE_SLOTS;

const _: () = assert!(OFF_PAYLOAD as usize + CHUNK_BYTES == scc::MPB_BYTES);
const _: () = assert!(OFF_BARRIER + BARRIER_ROUNDS <= OFF_VDMA_DONE);

/// Address of the `sent[src]` counter in `owner`'s region.
pub fn sent_flag(owner: GlobalCore, src: usize) -> MpbAddr {
    debug_assert!(src < MAX_RANKS);
    MpbAddr::new(owner, OFF_SENT + src as u16)
}

/// Address of the `ready[dest]` counter in `owner`'s region.
pub fn ready_flag(owner: GlobalCore, dest: usize) -> MpbAddr {
    debug_assert!(dest < MAX_RANKS);
    MpbAddr::new(owner, OFF_READY + dest as u16)
}

/// Address of barrier round flag `round` in `owner`'s region.
pub fn barrier_flag(owner: GlobalCore, round: u16) -> MpbAddr {
    debug_assert!(round < BARRIER_ROUNDS);
    MpbAddr::new(owner, OFF_BARRIER + round)
}

/// Address of the vDMA completion flag in `owner`'s region.
pub fn vdma_done_flag(owner: GlobalCore) -> MpbAddr {
    MpbAddr::new(owner, OFF_VDMA_DONE)
}

/// Address of payload byte `offset` in `owner`'s region.
pub fn payload(owner: GlobalCore, offset: usize) -> MpbAddr {
    debug_assert!(offset < CHUNK_BYTES);
    MpbAddr::new(owner, OFF_PAYLOAD + offset as u16)
}

/// Address of pipeline slot `slot` in `owner`'s region.
pub fn slot(owner: GlobalCore, slot: usize) -> MpbAddr {
    debug_assert!(slot < PIPELINE_SLOTS);
    payload(owner, slot * SLOT_BYTES)
}

/// Wrap-around-safe counter comparison: has the one-byte counter `value`
/// reached `target` (within a half-window of 128)?
pub fn counter_reached(value: u8, target: u8) -> bool {
    value.wrapping_sub(target) < 128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout is all consts; that is the point
    fn regions_do_not_overlap() {
        assert!(OFF_SENT + MAX_RANKS as u16 <= OFF_READY);
        assert!(OFF_READY + MAX_RANKS as u16 <= OFF_BARRIER);
        assert!(OFF_VDMA_DONE < OFF_PAYLOAD);
        assert_eq!(OFF_PAYLOAD as usize + CHUNK_BYTES, scc::MPB_BYTES);
    }

    #[test]
    fn slots_tile_the_payload() {
        assert_eq!(SLOT_BYTES * PIPELINE_SLOTS, CHUNK_BYTES);
        let g = GlobalCore::new(0, 0);
        assert_eq!(slot(g, 0).offset, OFF_PAYLOAD);
        assert_eq!(slot(g, 1).offset, OFF_PAYLOAD + SLOT_BYTES as u16);
    }

    #[test]
    fn counter_comparison_handles_wraparound() {
        assert!(counter_reached(1, 1));
        assert!(counter_reached(5, 3)); // already past
        assert!(!counter_reached(3, 5)); // not yet
        assert!(counter_reached(2, 250)); // wrapped past 255
        assert!(!counter_reached(250, 2));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout is all consts; that is the point
    fn chunk_smaller_than_8k() {
        // An 8 KiB message must split into two chunks (the Fig. 6 dip).
        assert!(CHUNK_BYTES < 8192);
        assert_eq!(8192usize.div_ceil(CHUNK_BYTES), 2);
    }

    #[test]
    fn flag_addresses_distinct_per_rank() {
        let g = GlobalCore::new(0, 0);
        let a: Vec<u16> = (0..MAX_RANKS).map(|j| sent_flag(g, j).offset).collect();
        let mut b = a.clone();
        b.dedup();
        assert_eq!(a.len(), b.len());
    }
}
