//! Port of RCCE and iRCCE, the SCC's low-level communication libraries.
//!
//! RCCE (Intel Labs) is a light-weight message-passing environment for the
//! SCC: a one-sided *gory* layer (`put`/`get`/flag operations on the on-chip
//! MPB) and a two-sided *non-gory* layer (`send`/`recv`) implementing the
//! blocking local-put/remote-get protocol of the paper's Fig. 2a. iRCCE
//! (RWTH Aachen) adds non-blocking requests and the *pipelined* protocol of
//! Fig. 2b, which interleaves put and get at a finer packet granularity.
//!
//! The port keeps the protocol state machines of the originals:
//! flag-based synchronization with busy-waiting, messages split at the MPB
//! payload capacity, explicit `CL1INVMB` before every fresh read, and read
//! operations only ever on *local* flags.
//!
//! Point-to-point transports are pluggable per pair class
//! ([`protocol::PointToPoint`]): the default on-chip protocol serves
//! same-device pairs, and the vSCC layer substitutes host-assisted schemes
//! for inter-device pairs — exactly the structure of the paper (§3).

pub mod api;
pub mod collectives;
pub mod ircce;
pub mod layout;
pub mod protocol;
pub mod session;

pub use api::Rcce;
pub use protocol::{BlockingProtocol, PipelinedProtocol, PointToPoint};
pub use session::{RankCtx, Session, SessionBuilder};
