//! Point-to-point protocols: RCCE blocking and iRCCE pipelined.
//!
//! Both implement [`PointToPoint`], the substitution seam the paper
//! exploits: same-device pairs keep the on-chip protocol while
//! inter-device pairs get a host-assisted scheme (vSCC crate).
//!
//! Synchronization uses one-byte wrapping counters (see
//! [`crate::layout`]): the sender counts chunks/packets made available in
//! `sent[src]` at the receiver, the receiver counts consumed ones in
//! `ready[dest]` at the sender, and each side busy-waits on its *local*
//! flag for the counter to reach a target.

use std::future::Future;
use std::pin::Pin;

use des::fields;
use des::trace::Category;

use crate::layout::{self, counter_reached, CHUNK_BYTES, PIPELINE_SLOTS, SLOT_BYTES};
use crate::session::RankCtx;

/// Boxed non-`Send` future (single-threaded simulator).
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// A point-to-point transport between two ranks.
///
/// `flow` is the message's provenance id (allocated by the session, see
/// [`crate::session::SessionInner::next_send_flow`]); implementations
/// stamp it on every traced hop so the whole path of one message can be
/// reconstructed.
pub trait PointToPoint {
    /// Blocking send of `data` from `ctx`'s rank to `dest`. Returns when
    /// the receiver has consumed the message (RCCE semantics, Fig. 2a).
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()>;

    /// Blocking receive of `buf.len()` bytes from `src`.
    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()>;

    /// Human-readable protocol name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// Wait on a local counter flag until it reaches `target`
/// (wrap-around-safe), polling with the same invalidate-read sequence RCCE
/// uses.
///
/// When the session configures a poll watchdog, a wait whose total budget
/// expires aborts the run with a diagnosed timeout (rank, flag address,
/// target vs. last-seen counter, cycles waited) and a bounded trace tail
/// on stderr — an infinite hang caused by a lost flag write becomes a
/// [`des::SimError::Aborted`] instead.
pub async fn flag_wait_reached(ctx: &RankCtx, addr: scc::geometry::MpbAddr, target: u8) {
    let budget = ctx.session.poll_watchdog();
    let start = ctx.session.sim().now();
    loop {
        ctx.session.rcce_metrics().poll_scans.inc();
        let v = ctx.core.flag_read(addr).await;
        if counter_reached(v, target) {
            return;
        }
        // Sleep until the flag line is touched again.
        let region = ctx.session.device_of_core(addr.owner).mpb(addr.owner.core).clone();
        let off = addr.offset as usize;
        let wait = region.wait_until(|| counter_reached(region.read_byte(off), target));
        match budget {
            None => wait.await,
            Some(budget) => {
                let deadline = start + budget;
                let timeout = ctx.session.sim().delay_until(deadline);
                if let des::sync::Either::Right(()) = des::sync::race(wait, timeout).await {
                    poll_watchdog_trip(ctx, addr, target, start);
                    // The abort surfaces from `Sim::run`; park this task.
                    std::future::pending::<()>().await;
                }
            }
        }
    }
}

/// Diagnose a tripped poll watchdog: count it, trace it, dump a bounded
/// trace tail, and abort the simulation with the full diagnosis.
fn poll_watchdog_trip(ctx: &RankCtx, addr: scc::geometry::MpbAddr, target: u8, start: des::Cycles) {
    let session = &ctx.session;
    let sim = session.sim();
    let now = sim.now();
    let current =
        session.device_of_core(addr.owner).mpb(addr.owner.core).read_byte(addr.offset as usize);
    let me = ctx.rank;
    let msg = format!(
        "poll watchdog: rank {me} waited {} cycles on flag {addr} \
         (target {target}, last seen {current})",
        now - start
    );
    session.note_poll_timeout();
    session.trace().instant_f(
        now,
        Category::Fault,
        "poll_watchdog",
        None,
        || &ctx.label,
        || {
            fields![
                rank = me,
                offset = addr.offset,
                target = target,
                seen = current,
                waited = now - start
            ]
        },
    );
    eprintln!("{msg}");
    let tail = session.trace().events();
    if !tail.is_empty() {
        eprintln!("recent trace events:");
        for ev in tail.iter().rev().take(25).rev() {
            eprintln!("  {ev}");
        }
    }
    sim.abort(msg);
}

/// Split `len` bytes into chunk ranges of at most `chunk` bytes; a
/// zero-length message still produces one empty range (pure
/// synchronization round).
pub fn chunk_ranges(
    len: usize,
    chunk: usize,
) -> impl ExactSizeIterator<Item = (usize, usize)> + Clone {
    assert!(chunk > 0);
    // A zero-length transfer still makes one (empty) protocol round.
    let n = len.div_ceil(chunk).max(1);
    (0..n).map(move |i| (i * chunk, ((i + 1) * chunk).min(len)))
}

/// RCCE's default blocking protocol: *local put / remote get* (Fig. 2a).
///
/// Per chunk: the sender copies private → local MPB, bumps the `sent`
/// counter at the receiver, and spins until the receiver's `ready` counter
/// confirms consumption; the receiver spins on `sent`, invalidates L1,
/// copies remote MPB → private, and bumps `ready` at the sender.
///
/// The protocol stages chunks in a *window* of the payload area. By
/// default that is the whole area (largest chunks, the paper's 8 KiB
/// split); in a multi-device vSCC session the on-chip protocols are
/// confined to the send half so that inbound host-delivered traffic
/// (remote-put / vDMA receive slots) never collides with a concurrent
/// on-chip send.
pub struct BlockingProtocol {
    window_off: usize,
    chunk: usize,
}

impl Default for BlockingProtocol {
    fn default() -> Self {
        BlockingProtocol { window_off: 0, chunk: CHUNK_BYTES }
    }
}

impl BlockingProtocol {
    /// Stage chunks only within `[window_off, window_off + chunk)` of the
    /// payload area.
    pub fn confined(window_off: usize, chunk: usize) -> Self {
        assert!(window_off + chunk <= CHUNK_BYTES);
        assert!(chunk > 0);
        BlockingProtocol { window_off, chunk }
    }

    /// The chunk size in use.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl PointToPoint for BlockingProtocol {
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(dest);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            for (lo, hi) in chunk_ranges(data.len(), self.chunk) {
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "chunk",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, dest = dest],
                );
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "sender_put",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, target = "local_mpb"],
                );
                ctx.core.put_f(layout::payload(my, self.window_off), &data[lo..hi], f).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || {
                    &ctx.label
                });
                let cnt = {
                    let mut sc = ctx.sent_count.borrow_mut();
                    sc[dest] = sc[dest].wrapping_add(1);
                    sc[dest]
                };
                trace.instant_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "flag_set",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", src = me, value = cnt, at_rank = dest],
                );
                ctx.core.flag_write_f(layout::sent_flag(peer, me), cnt, f).await;
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "mpb_wait",
                    f,
                    || &ctx.label,
                    || fields![flag = "ready", target = cnt],
                );
                flag_wait_reached(ctx, layout::ready_flag(my, dest), cnt).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "chunk", f, || &ctx.label);
            }
        })
    }

    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(src);
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            for (lo, hi) in chunk_ranges(buf.len(), self.chunk) {
                let cnt = ctx.recv_count.borrow()[src].wrapping_add(1);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_poll",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", target = cnt],
                );
                flag_wait_reached(ctx, layout::sent_flag(my, src), cnt).await;
                trace
                    .end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_get",
                    f,
                    || &ctx.label,
                    || fields![bytes = hi - lo, src = src, sent_count = cnt],
                );
                // The payload lines may be cached from the previous chunk.
                ctx.core.cl1invmb().await;
                ctx.core.get_f(layout::payload(peer, self.window_off), &mut buf[lo..hi], f).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
                ctx.recv_count.borrow_mut()[src] = cnt;
                ctx.core.flag_write_f(layout::ready_flag(peer, me), cnt, f).await;
                trace.instant_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "flag_set",
                    f,
                    || &ctx.label,
                    || fields![flag = "ready", src = me, value = cnt, at_rank = src],
                );
            }
        })
    }

    fn name(&self) -> &'static str {
        "RCCE blocking (local put / remote get)"
    }
}

/// iRCCE's pipelined protocol (Fig. 2b): the message is cut into packets
/// bounced through the two payload slots, so the sender's put of packet
/// *p+1* overlaps the receiver's get of packet *p*.
pub struct PipelinedProtocol {
    packet: usize,
    window_off: usize,
    slot_bytes: usize,
}

impl Default for PipelinedProtocol {
    fn default() -> Self {
        // iRCCE ships a static 4 KiB threshold (paper §4.1); our slots are
        // 3840 B, the nearest value that tiles the payload area.
        PipelinedProtocol { packet: SLOT_BYTES, window_off: 0, slot_bytes: SLOT_BYTES }
    }
}

impl PipelinedProtocol {
    /// Use a custom packet size (clamped to the slot size).
    pub fn with_packet(packet: usize) -> Self {
        assert!(packet > 0);
        PipelinedProtocol { packet: packet.min(SLOT_BYTES), window_off: 0, slot_bytes: SLOT_BYTES }
    }

    /// Confine both slots to `[window_off, window_off + window_len)` of
    /// the payload area (vSCC multi-device sessions).
    pub fn confined(window_off: usize, window_len: usize) -> Self {
        assert!(window_off + window_len <= CHUNK_BYTES);
        let slot_bytes = window_len / PIPELINE_SLOTS;
        assert!(slot_bytes > 0);
        PipelinedProtocol { packet: slot_bytes, window_off, slot_bytes }
    }

    /// The packet size in bytes.
    pub fn packet(&self) -> usize {
        self.packet
    }

    fn slot_addr(&self, who: scc::geometry::GlobalCore, i: usize) -> scc::geometry::MpbAddr {
        layout::payload(who, self.window_off + i * self.slot_bytes)
    }
}

impl PointToPoint for PipelinedProtocol {
    fn send<'a>(
        &'a self,
        ctx: &'a RankCtx,
        dest: usize,
        data: &'a [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(dest);
            let base = ctx.sent_count.borrow()[dest];
            let ranges = chunk_ranges(data.len(), self.packet);
            let n_packets = ranges.len();
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            for (p, (lo, hi)) in ranges.enumerate() {
                // Flow control: slot p%2 is free once packet p-2 was
                // consumed, i.e. ready has reached base + p - 1.
                if p >= PIPELINE_SLOTS {
                    trace.begin_f(
                        ctx.core.sim().now(),
                        Category::Protocol,
                        "mpb_wait",
                        f,
                        || &ctx.label,
                        || fields![flag = "ready", pkt = p],
                    );
                    flag_wait_reached(
                        ctx,
                        layout::ready_flag(my, dest),
                        base.wrapping_add((p - 1) as u8),
                    )
                    .await;
                    trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || {
                        &ctx.label
                    });
                }
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "sender_put",
                    f,
                    || &ctx.label,
                    || fields![pkt = p, bytes = hi - lo, slot = p % 2],
                );
                ctx.core.put_f(self.slot_addr(my, p % PIPELINE_SLOTS), &data[lo..hi], f).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "sender_put", f, || {
                    &ctx.label
                });
                let cnt = base.wrapping_add(p as u8 + 1);
                ctx.core.flag_write_f(layout::sent_flag(peer, me), cnt, f).await;
            }
            let total = base.wrapping_add(n_packets as u8);
            ctx.sent_count.borrow_mut()[dest] = total;
            trace.begin_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "mpb_wait",
                f,
                || &ctx.label,
                || fields![flag = "ready", target = total],
            );
            flag_wait_reached(ctx, layout::ready_flag(my, dest), total).await;
            trace.end_f(ctx.core.sim().now(), Category::Protocol, "mpb_wait", f, || &ctx.label);
            trace.instant_f(
                ctx.core.sim().now(),
                Category::Protocol,
                "pipe_send_done",
                f,
                || &ctx.label,
                || fields![packets = n_packets],
            );
        })
    }

    fn recv<'a>(
        &'a self,
        ctx: &'a RankCtx,
        src: usize,
        buf: &'a mut [u8],
        flow: u64,
    ) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let me = ctx.rank;
            let my = ctx.who();
            let peer = ctx.session.who(src);
            let base = ctx.recv_count.borrow()[src];
            let ranges = chunk_ranges(buf.len(), self.packet);
            let n_packets = ranges.len();
            let trace = ctx.session.trace().clone();
            let f = Some(flow);
            for (p, (lo, hi)) in ranges.enumerate() {
                let cnt = base.wrapping_add(p as u8 + 1);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_poll",
                    f,
                    || &ctx.label,
                    || fields![flag = "sent", pkt = p],
                );
                flag_wait_reached(ctx, layout::sent_flag(my, src), cnt).await;
                trace
                    .end_f(ctx.core.sim().now(), Category::Protocol, "recv_poll", f, || &ctx.label);
                trace.begin_f(
                    ctx.core.sim().now(),
                    Category::Protocol,
                    "recv_get",
                    f,
                    || &ctx.label,
                    || fields![pkt = p, bytes = hi - lo, slot = p % 2],
                );
                ctx.core.cl1invmb().await;
                ctx.core.get_f(self.slot_addr(peer, p % PIPELINE_SLOTS), &mut buf[lo..hi], f).await;
                trace.end_f(ctx.core.sim().now(), Category::Protocol, "recv_get", f, || &ctx.label);
                ctx.core.flag_write_f(layout::ready_flag(peer, me), cnt, f).await;
            }
            ctx.recv_count.borrow_mut()[src] = base.wrapping_add(n_packets as u8);
        })
    }

    fn name(&self) -> &'static str {
        "iRCCE pipelined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 10).collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(chunk_ranges(5, 10).collect::<Vec<_>>(), vec![(0, 5)]);
        assert_eq!(chunk_ranges(10, 10).collect::<Vec<_>>(), vec![(0, 10)]);
        assert_eq!(chunk_ranges(25, 10).collect::<Vec<_>>(), vec![(0, 10), (10, 20), (20, 25)]);
    }

    #[test]
    fn eight_kib_splits_into_two_chunks() {
        let r: Vec<_> = chunk_ranges(8192, CHUNK_BYTES).collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1].1 - r[1].0, 8192 - CHUNK_BYTES);
    }
}
