//! RCCE collectives: dissemination barrier and binomial-tree
//! broadcast/reduce, built on the point-to-point layer so that the vSCC
//! inter-device schemes accelerate them transparently.

use crate::api::Rcce;
use crate::layout;
use crate::protocol::flag_wait_reached;

/// Reduction operators for the f64 collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl Op {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Op::Sum => a + b,
            Op::Max => a.max(b),
            Op::Min => a.min(b),
        }
    }
}

impl Rcce {
    /// `RCCE_barrier`: dissemination barrier over the flag region —
    /// ⌈log₂ n⌉ rounds of one remote flag write + one local spin each.
    pub async fn barrier(&self) {
        let n = self.num_ues();
        if n == 1 {
            return;
        }
        let me = self.id();
        let my = self.who();
        let gen = self.ctx.barrier_gen.get().wrapping_add(1);
        self.ctx.barrier_gen.set(gen);
        let mut round: u16 = 0;
        let mut dist = 1usize;
        while dist < n {
            let to = (me + dist) % n;
            let to_who = self.ctx.session.who(to);
            self.ctx.core.flag_write(layout::barrier_flag(to_who, round), gen).await;
            flag_wait_reached(&self.ctx, layout::barrier_flag(my, round), gen).await;
            round += 1;
            dist <<= 1;
        }
    }

    /// `RCCE_bcast`: binomial-tree broadcast of `buf` from `root`.
    pub async fn bcast(&self, buf: &mut [u8], root: usize) {
        let n = self.num_ues();
        if n == 1 {
            return;
        }
        let me = self.id();
        let vr = (me + n - root) % n; // virtual rank, root at 0
                                      // Receive from the parent (vr with its highest bit cleared).
        let mut high = 0usize;
        if vr != 0 {
            high = 1 << (usize::BITS - 1 - vr.leading_zeros());
            let parent = ((vr - high) + root) % n;
            self.recv(buf, parent).await;
        }
        // Forward to children vr + mask for mask above our highest bit.
        let mut mask = if vr == 0 { 1 } else { high << 1 };
        while vr + mask < n {
            let child = (vr + mask + root) % n;
            self.send(buf, child).await;
            mask <<= 1;
        }
    }

    /// `RCCE_reduce` for one f64: the result is valid at `root` only.
    pub async fn reduce_f64(&self, value: f64, op: Op, root: usize) -> f64 {
        let n = self.num_ues();
        let me = self.id();
        let vr = (me + n - root) % n;
        let mut acc = value;
        // Gather up the binomial tree (children first, mirrored bcast).
        let mut mask = 1usize;
        while mask < n {
            if vr & mask == 0 {
                let child_vr = vr + mask;
                if child_vr < n {
                    let child = (child_vr + root) % n;
                    let got = self.recv_vec(8, child).await;
                    let v = f64::from_le_bytes(got.try_into().expect("8 bytes"));
                    acc = op.apply(acc, v);
                }
            } else {
                let parent = ((vr - mask) + root) % n;
                self.send(&acc.to_le_bytes(), parent).await;
                break;
            }
            mask <<= 1;
        }
        acc
    }

    /// `RCCE_allreduce` for one f64: reduce to rank 0 plus broadcast.
    pub async fn allreduce_f64(&self, value: f64, op: Op) -> f64 {
        let r = self.reduce_f64(value, op, 0).await;
        let mut buf = r.to_le_bytes();
        self.bcast(&mut buf, 0).await;
        f64::from_le_bytes(buf)
    }

    /// Element-wise vector reduction to `root` (binomial tree).
    pub async fn reduce_vec_f64(&self, values: &mut [f64], op: Op, root: usize) {
        let n = self.num_ues();
        let me = self.id();
        let vr = (me + n - root) % n;
        let bytes = values.len() * 8;
        let mut mask = 1usize;
        while mask < n {
            if vr & mask == 0 {
                let child_vr = vr + mask;
                if child_vr < n {
                    let child = (child_vr + root) % n;
                    let got = self.recv_vec(bytes, child).await;
                    for (v, chunk) in values.iter_mut().zip(got.chunks_exact(8)) {
                        let x = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                        *v = op.apply(*v, x);
                    }
                }
            } else {
                let parent = ((vr - mask) + root) % n;
                let packed: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.send(&packed, parent).await;
                break;
            }
            mask <<= 1;
        }
    }

    /// Element-wise vector allreduce: reduce to rank 0 plus broadcast.
    pub async fn allreduce_vec_f64(&self, values: &mut [f64], op: Op) {
        self.reduce_vec_f64(values, op, 0).await;
        let mut packed: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.bcast(&mut packed, 0).await;
        for (v, chunk) in values.iter_mut().zip(packed.chunks_exact(8)) {
            *v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
    }

    /// Gather equal-sized blocks to `root`: returns `Some(concatenated)`
    /// at the root (rank order), `None` elsewhere.
    pub async fn gather(&self, block: &[u8], root: usize) -> Option<Vec<u8>> {
        let n = self.num_ues();
        let me = self.id();
        if me == root {
            let mut out = vec![0u8; block.len() * n];
            out[me * block.len()..(me + 1) * block.len()].copy_from_slice(block);
            for src in 0..n {
                if src == me {
                    continue;
                }
                let got = self.recv_vec(block.len(), src).await;
                out[src * block.len()..(src + 1) * block.len()].copy_from_slice(&got);
            }
            Some(out)
        } else {
            self.send(block, root).await;
            None
        }
    }

    /// Scatter equal-sized blocks from `root` (`blocks.len() == n *
    /// block_len` at the root; ignored elsewhere): returns this rank's
    /// block.
    pub async fn scatter(&self, blocks: Option<&[u8]>, block_len: usize, root: usize) -> Vec<u8> {
        let n = self.num_ues();
        let me = self.id();
        if me == root {
            let all = blocks.expect("root provides the blocks");
            assert_eq!(all.len(), n * block_len);
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                self.send(&all[dst * block_len..(dst + 1) * block_len], dst).await;
            }
            all[me * block_len..(me + 1) * block_len].to_vec()
        } else {
            self.recv_vec(block_len, root).await
        }
    }

    /// Personalized all-to-all exchange of equal-sized blocks:
    /// `blocks[i]` goes to rank `i`; returns the blocks received, indexed
    /// by source. Uses a phase-rotated pairwise schedule so all pairs
    /// progress concurrently.
    pub async fn alltoall(&self, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let n = self.num_ues();
        let me = self.id();
        assert_eq!(blocks.len(), n, "one block per destination");
        let len = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == len), "alltoall needs equal block sizes");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = blocks[me].clone();
        for phase in 1..n {
            let to = (me + phase) % n;
            let from = (me + n - phase) % n;
            let req = self.isend(blocks[to].clone(), to);
            out[from] = self.recv_vec(len, from).await;
            req.wait().await;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::session::SessionBuilder;
    use des::Sim;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn session(sim: &Sim, n: usize) -> crate::Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(n).build()
    }

    #[test]
    fn barrier_aligns_ranks() {
        let sim = Sim::new();
        let s = session(&sim, 7);
        let times = s
            .run_app(|r| async move {
                // Stagger arrival heavily.
                r.compute(r.id() as u64 * 10_000).await;
                r.barrier().await;
                r.now()
            })
            .unwrap();
        let slowest_arrival = 6 * 10_000;
        for t in times {
            assert!(t >= slowest_arrival, "rank left barrier at {t}, before the last arrival");
        }
    }

    #[test]
    fn repeated_barriers() {
        let sim = Sim::new();
        let s = session(&sim, 5);
        s.run_app(|r| async move {
            for _ in 0..10 {
                r.barrier().await;
            }
        })
        .unwrap();
    }

    #[test]
    fn barrier_single_rank_is_noop() {
        let sim = Sim::new();
        let s = session(&sim, 1);
        s.run_app(|r| async move { r.barrier().await }).unwrap();
        assert_eq!(sim.now(), 0);
    }

    #[test]
    fn bcast_from_each_root() {
        for root in [0usize, 3, 5] {
            let sim = Sim::new();
            let s = session(&sim, 6);
            s.run_app(move |r| async move {
                let mut buf = if r.id() == root { vec![0xAB; 500] } else { vec![0; 500] };
                r.bcast(&mut buf, root).await;
                assert_eq!(buf, vec![0xAB; 500]);
            })
            .unwrap();
        }
    }

    #[test]
    fn reduce_sum_correct() {
        let sim = Sim::new();
        let s = session(&sim, 9);
        let out = s
            .run_app(|r| async move {
                let v = (r.id() + 1) as f64;
                r.reduce_f64(v, crate::collectives::Op::Sum, 0).await
            })
            .unwrap();
        assert_eq!(out[0], 45.0); // 1+..+9
    }

    #[test]
    fn allreduce_max_everywhere() {
        let sim = Sim::new();
        let s = session(&sim, 5);
        let out = s
            .run_app(|r| async move {
                r.allreduce_f64(r.id() as f64 * 1.5, crate::collectives::Op::Max).await
            })
            .unwrap();
        assert!(out.iter().all(|&v| v == 6.0));
    }

    #[test]
    fn reduce_vec_elementwise() {
        let sim = Sim::new();
        let s = session(&sim, 6);
        let out = s
            .run_app(|r| async move {
                let mut v = vec![r.id() as f64, 1.0, -(r.id() as f64)];
                r.reduce_vec_f64(&mut v, crate::collectives::Op::Sum, 2).await;
                (r.id(), v)
            })
            .unwrap();
        let (_, at_root) = out.iter().find(|(id, _)| *id == 2).unwrap().clone();
        assert_eq!(at_root, vec![15.0, 6.0, -15.0]);
    }

    #[test]
    fn allreduce_vec_everywhere() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        let out = s
            .run_app(|r| async move {
                let mut v = vec![1.0, r.id() as f64];
                r.allreduce_vec_f64(&mut v, crate::collectives::Op::Max).await;
                v
            })
            .unwrap();
        assert!(out.iter().all(|v| v == &vec![1.0, 3.0]));
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let sim = Sim::new();
        let s = session(&sim, 5);
        let out = s
            .run_app(|r| async move {
                let block = vec![r.id() as u8; 3];
                r.gather(&block, 1).await
            })
            .unwrap();
        for (i, g) in out.iter().enumerate() {
            if i == 1 {
                let expect: Vec<u8> = (0..5u8).flat_map(|x| std::iter::repeat_n(x, 3)).collect();
                assert_eq!(g.as_deref(), Some(expect.as_slice()));
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        let out = s
            .run_app(|r| async move {
                let all: Vec<u8> = (0..16u8).collect();
                let blocks = if r.id() == 0 { Some(all) } else { None };
                r.scatter(blocks.as_deref(), 4, 0).await
            })
            .unwrap();
        for (i, b) in out.iter().enumerate() {
            let expect: Vec<u8> = (i as u8 * 4..i as u8 * 4 + 4).collect();
            assert_eq!(b, &expect);
        }
    }

    #[test]
    fn alltoall_personalized_exchange() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        let out = s
            .run_app(|r| async move {
                let me = r.id() as u8;
                // Block for rank j encodes (me, j).
                let blocks: Vec<Vec<u8>> =
                    (0..r.num_ues() as u8).map(|j| vec![me * 16 + j; 8]).collect();
                r.alltoall(&blocks).await
            })
            .unwrap();
        for (j, received) in out.iter().enumerate() {
            for (src, block) in received.iter().enumerate() {
                assert_eq!(block, &vec![src as u8 * 16 + j as u8; 8]);
            }
        }
    }

    #[test]
    fn allreduce_min() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        let out = s
            .run_app(|r| async move {
                r.allreduce_f64(10.0 - r.id() as f64, crate::collectives::Op::Min).await
            })
            .unwrap();
        assert!(out.iter().all(|&v| v == 7.0));
    }
}
