//! RCCE sessions: rank numbering, per-rank state, traffic accounting.
//!
//! A session pins one RCCE process (a *unit of execution*, UE) to each
//! participating core. Ranks are assigned linearly over the participating
//! cores — first all cores of device 0, then device 1 starting at 48, and
//! so on (paper §3) — and, as in the paper's startup-script extension
//! (§4), cores that failed to boot are simply skipped, compacting the rank
//! space.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use des::obs::{CounterHandle, HistogramHandle, Registry};
use des::sync::SimMutex;
use des::trace::{Category, Trace};
use des::{Cycles, JoinHandle, Sim};
use scc::device::SccDevice;
use scc::geometry::{DeviceId, GlobalCore};
use scc::CoreHandle;

use crate::api::Rcce;
use crate::protocol::{BlockingProtocol, PointToPoint};

/// Shared per-session state.
pub struct SessionInner {
    sim: Sim,
    devices: Vec<Rc<SccDevice>>,
    ranks: Vec<GlobalCore>,
    onchip: Rc<dyn PointToPoint>,
    inter: Rc<dyn PointToPoint>,
    traffic: RefCell<Vec<u64>>,
    messages: RefCell<Vec<u64>>,
    /// Per-(src,dest) count of flows allocated on the send side.
    send_flow_seq: RefCell<Vec<u64>>,
    /// Per-(src,dest) count of flows matched on the receive side.
    recv_flow_seq: RefCell<Vec<u64>>,
    trace: Trace,
    metrics: Registry,
    rcce_metrics: RcceMetrics,
    /// Flag-poll watchdog budget: a single protocol wait exceeding this
    /// many cycles aborts the run with a diagnosis instead of hanging.
    /// `None` (the default) polls forever, as real RCCE does.
    poll_watchdog: Option<Cycles>,
}

/// Message-size classes for the per-call latency histograms
/// (`rcce.send.lat_cycles.le64` …). Bounds follow the paper's sweep:
/// small (≤64 B), up to the pipelined threshold (≤1 KiB), up to the MPB
/// payload area (≤8 KiB), and beyond.
pub const SIZE_CLASSES: [(&str, usize); 4] =
    [("le64", 64), ("le1k", 1024), ("le8k", 8192), ("gt8k", usize::MAX)];

/// Pre-resolved registry handles for the hot send/recv paths: one string
/// hash each at session construction, `Cell` updates per call after.
pub(crate) struct RcceMetrics {
    pub send_lat: Vec<HistogramHandle>,
    pub recv_lat: Vec<HistogramHandle>,
    pub send_lock_wait: CounterHandle,
    /// Cycles each send held its UE's single outgoing-send lock (the MPB
    /// send buffer is one resource; the hold-time distribution is the
    /// send-side serialization the paper's schemes compete on).
    pub send_lock_hold: HistogramHandle,
    /// Flag-poll loop iterations (`flag_wait_reached` wakeups that
    /// re-read the flag); the time-series sampler turns the delta into a
    /// poll scan rate.
    pub poll_scans: CounterHandle,
    pub poll_timeouts: CounterHandle,
}

impl RcceMetrics {
    fn new(registry: &Registry) -> Self {
        let rcce = registry.scoped("rcce");
        RcceMetrics {
            send_lat: SIZE_CLASSES
                .iter()
                .map(|(label, _)| rcce.register_histogram(&format!("send.lat_cycles.{label}")))
                .collect(),
            recv_lat: SIZE_CLASSES
                .iter()
                .map(|(label, _)| rcce.register_histogram(&format!("recv.lat_cycles.{label}")))
                .collect(),
            send_lock_wait: rcce.register_counter("send.lock_wait_cycles"),
            send_lock_hold: rcce.register_histogram("send.lock_hold_cycles"),
            poll_scans: rcce.register_counter("poll.scans"),
            poll_timeouts: rcce.register_counter("poll_timeouts"),
        }
    }
}

/// Index into [`SIZE_CLASSES`] for a message of `len` bytes.
pub fn size_class(len: usize) -> usize {
    SIZE_CLASSES.iter().position(|(_, cap)| len <= *cap).unwrap()
}

impl SessionInner {
    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The core a rank runs on.
    pub fn who(&self, rank: usize) -> GlobalCore {
        self.ranks[rank]
    }

    /// The device object hosting `rank`.
    pub fn device_of(&self, rank: usize) -> &Rc<SccDevice> {
        &self.devices[self.ranks[rank].device.0 as usize]
    }

    /// The device object hosting a physical core.
    pub fn device_of_core(&self, who: GlobalCore) -> &Rc<SccDevice> {
        &self.devices[who.device.0 as usize]
    }

    /// All devices of the session, in id order.
    pub fn devices(&self) -> &[Rc<SccDevice>] {
        &self.devices
    }

    /// The simulation clock.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The protocol serving the pair `(a, b)`: the on-chip protocol for
    /// same-device pairs, the inter-device protocol otherwise.
    pub fn proto(&self, a: usize, b: usize) -> Rc<dyn PointToPoint> {
        if self.ranks[a].device == self.ranks[b].device {
            self.onchip.clone()
        } else {
            self.inter.clone()
        }
    }

    /// Whether ranks `a` and `b` live on different devices.
    pub fn is_inter_device(&self, a: usize, b: usize) -> bool {
        self.ranks[a].device != self.ranks[b].device
    }

    /// Account `bytes` of payload moved from `src` to `dest` (Fig. 8's
    /// traffic matrix).
    pub fn record_traffic(&self, src: usize, dest: usize, bytes: u64) {
        let n = self.num_ranks();
        self.traffic.borrow_mut()[src * n + dest] += bytes;
        self.messages.borrow_mut()[src * n + dest] += 1;
    }

    /// Encode the `seq`-th message of the pair `(src, dest)` as a flow id.
    /// Ids are unique across pairs, monotonic per pair, and never zero.
    fn flow_id(seq: u64, src: usize, dest: usize) -> u64 {
        let pairs = (crate::layout::MAX_RANKS * crate::layout::MAX_RANKS) as u64;
        seq * pairs + (src * crate::layout::MAX_RANKS + dest) as u64 + 1
    }

    /// Allocate the next send-side flow id for `src -> dest`. Because the
    /// send lock serializes a rank's sends and the per-source receive
    /// lock serializes the matching receives, the n-th send of a pair
    /// always matches the n-th receive — both sides derive the same id
    /// without any bytes on the wire.
    pub fn next_send_flow(&self, src: usize, dest: usize) -> u64 {
        let n = self.num_ranks();
        let mut seqs = self.send_flow_seq.borrow_mut();
        let seq = seqs[src * n + dest];
        seqs[src * n + dest] += 1;
        Self::flow_id(seq, src, dest)
    }

    /// Allocate the next receive-side flow id for `src -> dest` (the
    /// mirror of [`SessionInner::next_send_flow`]).
    pub fn next_recv_flow(&self, src: usize, dest: usize) -> u64 {
        let n = self.num_ranks();
        let mut seqs = self.recv_flow_seq.borrow_mut();
        let seq = seqs[src * n + dest];
        seqs[src * n + dest] += 1;
        Self::flow_id(seq, src, dest)
    }

    /// The protocol trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics registry this session reports into.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    pub(crate) fn rcce_metrics(&self) -> &RcceMetrics {
        &self.rcce_metrics
    }

    /// The flag-poll watchdog budget, if one is configured.
    pub fn poll_watchdog(&self) -> Option<Cycles> {
        self.poll_watchdog
    }

    /// Record one poll-watchdog trip (used by the protocol layer).
    pub fn note_poll_timeout(&self) {
        self.rcce_metrics.poll_timeouts.inc();
    }

    /// Dense traffic matrix snapshot: `matrix[src][dest]` payload bytes.
    pub fn traffic_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.num_ranks();
        let flat = self.traffic.borrow();
        (0..n).map(|s| flat[s * n..(s + 1) * n].to_vec()).collect()
    }

    /// Message-count matrix snapshot.
    pub fn message_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.num_ranks();
        let flat = self.messages.borrow();
        (0..n).map(|s| flat[s * n..(s + 1) * n].to_vec()).collect()
    }
}

/// Per-rank protocol state: the UE's core handle, flag counters, and
/// per-pair ordering locks.
pub struct RankCtx {
    /// This UE's rank.
    pub rank: usize,
    /// The core it runs on.
    pub core: CoreHandle,
    /// The owning session.
    pub session: Rc<SessionInner>,
    /// Chunks sent towards each destination (wrapping counters).
    pub sent_count: RefCell<Vec<u8>>,
    /// Chunks received from each source (wrapping counters).
    pub recv_count: RefCell<Vec<u8>>,
    /// Barrier generation.
    pub barrier_gen: Cell<u8>,
    /// Pre-interned trace label (`"rank<N>"`): hot-path trace closures
    /// clone this `Rc` instead of formatting a fresh `String` per event.
    pub label: Rc<str>,
    /// Serializes inbound streams that deliver into this rank's MPB
    /// (remote-put and vDMA schemes share the receive area).
    pub inbound_lock: SimMutex,
    send_lock: SimMutex,
    recv_locks: Vec<SimMutex>,
    /// Send-lock exclusivity monitor: true while a send is in flight.
    in_send: Cell<bool>,
}

impl RankCtx {
    fn new(session: &Rc<SessionInner>, rank: usize) -> Rc<Self> {
        let n = session.num_ranks();
        let device = session.device_of(rank);
        Rc::new(RankCtx {
            rank,
            core: CoreHandle::new(device, session.who(rank).core),
            session: session.clone(),
            sent_count: RefCell::new(vec![0; n]),
            recv_count: RefCell::new(vec![0; n]),
            barrier_gen: Cell::new(0),
            label: session.trace().intern(&format!("rank{rank}")),
            inbound_lock: SimMutex::new(),
            send_lock: SimMutex::new(),
            recv_locks: (0..n).map(|_| SimMutex::new()).collect(),
            in_send: Cell::new(false),
        })
    }

    /// Number of ranks in the session.
    pub fn num_ranks(&self) -> usize {
        self.session.num_ranks()
    }

    /// This rank's core identity.
    pub fn who(&self) -> GlobalCore {
        self.session.who(self.rank)
    }

    /// Serializes this rank's outgoing sends. The lock is global per UE,
    /// not per destination: every send stages its chunks through the one
    /// local MPB send buffer, exactly like iRCCE's single outgoing
    /// request queue — two concurrent isends would otherwise clobber the
    /// buffer.
    pub fn send_lock(&self, _dest: usize) -> &SimMutex {
        &self.send_lock
    }

    /// Serializes concurrent receives from the same source.
    pub fn recv_lock(&self, src: usize) -> &SimMutex {
        &self.recv_locks[src]
    }

    /// Send-lock exclusivity monitor: mark a send in flight. Two
    /// overlapping sends of one UE would interleave chunks through the
    /// single MPB send buffer; that is a protocol bug, so it traces an
    /// `App` violation event (with the offending flow) and fails fast.
    pub fn enter_send(&self, flow: u64) {
        if self.in_send.replace(true) {
            let me = self.rank;
            self.session.trace().instant_f(
                self.session.sim().now(),
                Category::App,
                "monitor_violation",
                Some(flow),
                || self.label.clone(),
                || des::fields![check = "send_lock_exclusivity", rank = me],
            );
            panic!(
                "send-lock exclusivity violated: rank {me} started a send \
                 (flow {flow}) while another send was in flight"
            );
        }
    }

    /// Mark the in-flight send finished.
    pub fn exit_send(&self) {
        self.in_send.set(false);
    }
}

/// Builder for [`Session`].
pub struct SessionBuilder {
    sim: Sim,
    devices: Vec<Rc<SccDevice>>,
    participants: Option<Vec<GlobalCore>>,
    onchip: Rc<dyn PointToPoint>,
    inter: Option<Rc<dyn PointToPoint>>,
    trace: Trace,
    metrics: Option<Registry>,
    poll_watchdog: Option<Cycles>,
}

impl SessionBuilder {
    /// Start building a session over `devices`.
    pub fn new(sim: &Sim, devices: Vec<Rc<SccDevice>>) -> Self {
        assert!(!devices.is_empty(), "a session needs at least one device");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.id, DeviceId(i as u8), "devices must be passed in id order");
        }
        SessionBuilder {
            sim: sim.clone(),
            devices,
            participants: None,
            onchip: Rc::new(BlockingProtocol::default()),
            inter: None,
            trace: Trace::disabled(),
            metrics: None,
            poll_watchdog: None,
        }
    }

    /// Abort any single protocol flag wait that exceeds `limit` cycles
    /// with a diagnosed timeout (instead of polling forever). The
    /// watchdog races a virtual timer against each wait; the losing
    /// timer is withdrawn on drop, so a clean run's final `sim.now()`
    /// and timer population are unaffected (see `tests/engine.rs`).
    pub fn poll_watchdog(mut self, limit: Cycles) -> Self {
        self.poll_watchdog = Some(limit);
        self
    }

    /// Restrict the session to an explicit core list (rank order).
    pub fn participants(mut self, cores: Vec<GlobalCore>) -> Self {
        self.participants = Some(cores);
        self
    }

    /// Use only the first `k` alive cores of each device.
    pub fn cores_per_device(mut self, k: usize) -> Self {
        let mut cores = Vec::new();
        for dev in &self.devices {
            cores.extend(dev.alive_cores().into_iter().take(k).map(|c| dev.global(c)));
        }
        self.participants = Some(cores);
        self
    }

    /// Cap the total number of ranks (e.g. BT's square process counts).
    pub fn max_ranks(mut self, n: usize) -> Self {
        let all = self.participants.take().unwrap_or_else(|| self.default_participants());
        self.participants = Some(all.into_iter().take(n).collect());
        self
    }

    /// Replace the on-chip (same-device) point-to-point protocol.
    pub fn onchip_protocol(mut self, p: Rc<dyn PointToPoint>) -> Self {
        self.onchip = p;
        self
    }

    /// Replace the inter-device point-to-point protocol (the vSCC schemes).
    pub fn interdevice_protocol(mut self, p: Rc<dyn PointToPoint>) -> Self {
        self.inter = Some(p);
        self
    }

    /// Enable protocol tracing (Fig. 2 regeneration), all categories.
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Enable tracing for selected categories only.
    pub fn with_trace_categories(mut self, cats: &[Category]) -> Self {
        self.trace = Trace::with_categories(cats);
        self
    }

    /// Use an externally-shared trace (e.g. the vSCC system trace, so
    /// protocol and host events interleave on one timeline).
    pub fn with_shared_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Report metrics into an externally-shared registry instead of a
    /// private one.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    fn default_participants(&self) -> Vec<GlobalCore> {
        // Linear extension of RCCE ranks over alive cores, device by
        // device (paper §2.1/§4).
        self.devices.iter().flat_map(|d| d.alive_cores().into_iter().map(|c| d.global(c))).collect()
    }

    /// Finish the builder.
    pub fn build(self) -> Session {
        let ranks = match self.participants {
            Some(p) => p,
            None => self.default_participants(),
        };
        assert!(!ranks.is_empty(), "session has no participants");
        assert!(ranks.len() <= crate::layout::MAX_RANKS);
        for g in &ranks {
            let dev = &self.devices[g.device.0 as usize];
            assert!(dev.is_alive(g.core), "participant {g} did not boot");
        }
        let n = ranks.len();
        let inter = self.inter.unwrap_or_else(|| self.onchip.clone());
        let metrics = self.metrics.unwrap_or_default();
        let rcce_metrics = RcceMetrics::new(&metrics);
        Session {
            inner: Rc::new(SessionInner {
                sim: self.sim,
                devices: self.devices,
                ranks,
                onchip: self.onchip,
                inter,
                traffic: RefCell::new(vec![0; n * n]),
                messages: RefCell::new(vec![0; n * n]),
                send_flow_seq: RefCell::new(vec![0; n * n]),
                recv_flow_seq: RefCell::new(vec![0; n * n]),
                trace: self.trace,
                metrics,
                rcce_metrics,
                poll_watchdog: self.poll_watchdog,
            }),
        }
    }
}

/// A built RCCE session.
#[derive(Clone)]
pub struct Session {
    /// Shared state (exposed for the vSCC system layer).
    pub inner: Rc<SessionInner>,
}

impl Session {
    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    /// Build the per-rank handle for `rank`.
    pub fn rcce(&self, rank: usize) -> Rcce {
        assert!(rank < self.num_ranks());
        Rcce::new(RankCtx::new(&self.inner, rank))
    }

    /// Spawn one task per rank running `f(rcce)`; returns the handles in
    /// rank order.
    pub fn spawn_ranks<T, Fut>(&self, f: impl Fn(Rcce) -> Fut) -> Vec<JoinHandle<T>>
    where
        T: 'static,
        Fut: Future<Output = T> + 'static,
    {
        (0..self.num_ranks())
            .map(|r| self.inner.sim().spawn_named(format!("rank{r}"), f(self.rcce(r))))
            .collect()
    }

    /// Spawn all ranks, run the simulation to completion, and return the
    /// per-rank results.
    pub fn run_app<T, Fut>(&self, f: impl Fn(Rcce) -> Fut) -> Result<Vec<T>, des::SimError>
    where
        T: 'static,
        Fut: Future<Output = T> + 'static,
    {
        let handles = self.spawn_ranks(f);
        self.inner.sim().run()?;
        Ok(handles
            .into_iter()
            .map(|h| h.try_take().expect("rank task finished under run()"))
            .collect())
    }

    /// Traffic matrix (payload bytes), `matrix[src][dest]`.
    pub fn traffic_matrix(&self) -> Vec<Vec<u64>> {
        self.inner.traffic_matrix()
    }

    /// Message-count matrix.
    pub fn message_matrix(&self) -> Vec<Vec<u64>> {
        self.inner.message_matrix()
    }

    /// The protocol trace (empty unless built `with_trace`).
    pub fn trace(&self) -> Trace {
        self.inner.trace().clone()
    }

    /// The metrics registry this session reports into.
    pub fn metrics(&self) -> Registry {
        self.inner.metrics().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc::device::BootConfig;

    fn one_device(sim: &Sim) -> Vec<Rc<SccDevice>> {
        vec![SccDevice::new(sim, DeviceId(0))]
    }

    #[test]
    fn default_mapping_is_linear() {
        let sim = Sim::new();
        let s = SessionBuilder::new(&sim, one_device(&sim)).build();
        assert_eq!(s.num_ranks(), 48);
        assert_eq!(s.inner.who(0), GlobalCore::new(0, 0));
        assert_eq!(s.inner.who(47), GlobalCore::new(0, 47));
    }

    #[test]
    fn failed_cores_are_skipped_and_ranks_compact() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        let up = dev.boot(&BootConfig { core_failure_prob: 0.2, seed: 3 });
        let s = SessionBuilder::new(&sim, vec![dev]).build();
        assert_eq!(s.num_ranks(), up.len());
        // Ranks are dense over the surviving cores in id order.
        for (r, c) in up.iter().enumerate() {
            assert_eq!(s.inner.who(r).core, *c);
        }
    }

    #[test]
    fn cores_per_device_limits_ranks() {
        let sim = Sim::new();
        let s = SessionBuilder::new(&sim, one_device(&sim)).cores_per_device(4).build();
        assert_eq!(s.num_ranks(), 4);
    }

    #[test]
    fn max_ranks_truncates() {
        let sim = Sim::new();
        let s = SessionBuilder::new(&sim, one_device(&sim)).max_ranks(9).build();
        assert_eq!(s.num_ranks(), 9);
    }

    #[test]
    fn flow_ids_match_across_sides_and_stay_unique() {
        let sim = Sim::new();
        let s = SessionBuilder::new(&sim, one_device(&sim)).max_ranks(3).build();
        // Both sides derive the same id for the nth message of a pair.
        let f1 = s.inner.next_send_flow(0, 1);
        let f2 = s.inner.next_send_flow(0, 1);
        assert_eq!(s.inner.next_recv_flow(0, 1), f1);
        assert_eq!(s.inner.next_recv_flow(0, 1), f2);
        assert_ne!(f1, f2);
        // Distinct pairs never collide, and ids are never zero.
        let g1 = s.inner.next_send_flow(1, 0);
        let g2 = s.inner.next_send_flow(1, 2);
        assert!(f1 != g1 && f1 != g2 && g1 != g2);
        assert!(f1 > 0 && g1 > 0);
    }

    #[test]
    fn traffic_matrix_accumulates() {
        let sim = Sim::new();
        let s = SessionBuilder::new(&sim, one_device(&sim)).max_ranks(3).build();
        s.inner.record_traffic(0, 1, 100);
        s.inner.record_traffic(0, 1, 50);
        s.inner.record_traffic(2, 0, 7);
        let m = s.traffic_matrix();
        assert_eq!(m[0][1], 150);
        assert_eq!(m[2][0], 7);
        assert_eq!(m[1][2], 0);
        assert_eq!(s.message_matrix()[0][1], 2);
    }

    #[test]
    #[should_panic(expected = "did not boot")]
    fn dead_participant_rejected() {
        let sim = Sim::new();
        let dev = SccDevice::new(&sim, DeviceId(0));
        dev.boot(&BootConfig { core_failure_prob: 0.99, seed: 5 });
        let dead = (0..48)
            .map(scc::geometry::CoreId)
            .find(|c| !dev.is_alive(*c))
            .expect("some core failed");
        let g = dev.global(dead);
        SessionBuilder::new(&sim, vec![dev]).participants(vec![g]).build();
    }
}
