//! Communication-traffic analysis and rendering (Fig. 8).
//!
//! The session layer records payload bytes per (sender, receiver) pair;
//! this module turns the matrix into the paper's visualization: a square
//! heat map (dark = heavy traffic) with device boundaries marked, plus
//! summary statistics (maximum pairwise traffic, on-chip vs inter-device
//! volume).

use rcce::Session;

/// A dense traffic matrix with rank→device mapping.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    /// `bytes[src][dest]` payload bytes.
    pub bytes: Vec<Vec<u64>>,
    /// Device id of each rank.
    pub device_of: Vec<u8>,
}

impl TrafficMatrix {
    /// Capture the matrix of a finished session.
    pub fn capture(session: &Session) -> Self {
        let n = session.num_ranks();
        TrafficMatrix {
            bytes: session.traffic_matrix(),
            device_of: (0..n).map(|r| session.inner.who(r).device.0).collect(),
        }
    }

    /// Build directly from parts (tests, scaled projections).
    pub fn from_parts(bytes: Vec<Vec<u64>>, device_of: Vec<u8>) -> Self {
        assert_eq!(bytes.len(), device_of.len());
        TrafficMatrix { bytes, device_of }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.bytes.len()
    }

    /// Scale every entry (e.g. project a 3-iteration run to the full 200
    /// iterations of NPB BT).
    pub fn scaled(&self, num: u64, den: u64) -> Self {
        TrafficMatrix {
            bytes: self
                .bytes
                .iter()
                .map(|row| row.iter().map(|&b| b * num / den).collect())
                .collect(),
            device_of: self.device_of.clone(),
        }
    }

    /// The heaviest pair: (src, dest, bytes).
    pub fn max_pair(&self) -> (usize, usize, u64) {
        let mut best = (0, 0, 0);
        for (s, row) in self.bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if b > best.2 {
                    best = (s, d, b);
                }
            }
        }
        best
    }

    /// Total payload bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Bytes crossing a device boundary.
    pub fn inter_device_bytes(&self) -> u64 {
        let mut sum = 0;
        for (s, row) in self.bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if self.device_of[s] != self.device_of[d] {
                    sum += b;
                }
            }
        }
        sum
    }

    /// Fraction of traffic that is inter-device.
    pub fn inter_device_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.inter_device_bytes() as f64 / t as f64
        }
    }

    /// Render the Fig. 8 heat map as text: x = sender, y = receiver, dark
    /// glyph = heavy traffic, `+` grid lines at device boundaries.
    pub fn render(&self) -> String {
        const SHADES: &[u8] = b" .:-=*%@#";
        let n = self.n();
        let max = self.max_pair().2.max(1);
        let mut out = String::with_capacity((n + 8) * (2 * n + 8));
        out.push_str(&format!(
            "traffic matrix: {n} ranks, max pair {:.1} MB, {:.1}% inter-device\n",
            self.max_pair().2 as f64 / 1e6,
            self.inter_device_fraction() * 100.0
        ));
        for recv in 0..n {
            if recv > 0 && self.device_of[recv] != self.device_of[recv - 1] {
                out.push_str(&"-".repeat(2 * n));
                out.push('\n');
            }
            for send in 0..n {
                if send > 0 && self.device_of[send] != self.device_of[send - 1] {
                    out.push('|');
                } else if send > 0 {
                    out.push(' ');
                }
                let b = self.bytes[send][recv];
                let shade = if b == 0 {
                    b' '
                } else {
                    // Log scale: small flows stay visible, like the grey
                    // levels of the paper's figure.
                    let level = ((b as f64).ln() / (max as f64).ln() * (SHADES.len() - 1) as f64)
                        .round()
                        .clamp(1.0, (SHADES.len() - 1) as f64)
                        as usize;
                    SHADES[level]
                };
                out.push(shade as char);
            }
            out.push('\n');
        }
        out
    }

    /// JSON dump of the full matrix (machine-readable Fig. 8 artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bytes\":[");
        for (s, row) in self.bytes.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push('[');
            for (d, &b) in row.iter().enumerate() {
                if d > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push(']');
        }
        out.push_str("],\"device_of\":[");
        for (i, &dev) in self.device_of.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&dev.to_string());
        }
        out.push_str("]}");
        out
    }

    /// CSV dump (`src,dest,bytes` for every non-zero pair).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("src,dest,bytes\n");
        for (s, row) in self.bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if b > 0 {
                    out.push_str(&format!("{s},{d},{b}\n"));
                }
            }
        }
        out
    }

    /// Whether the pattern is neighbour-dominated: the fraction of bytes
    /// within `radius` of the diagonal (with wrap-around), Fig. 8's
    /// qualitative claim.
    pub fn neighbour_fraction(&self, radius: usize) -> f64 {
        let n = self.n();
        let mut near = 0u64;
        for (s, row) in self.bytes.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                let dist = s.abs_diff(d).min(n - s.abs_diff(d));
                if dist <= radius {
                    near += b;
                }
            }
        }
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            near as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrafficMatrix {
        // 4 ranks, 2 devices, ring pattern.
        let mut bytes = vec![vec![0u64; 4]; 4];
        for s in 0..4usize {
            bytes[s][(s + 1) % 4] = 1000 * (s as u64 + 1);
        }
        TrafficMatrix::from_parts(bytes, vec![0, 0, 1, 1])
    }

    #[test]
    fn max_pair_found() {
        let m = sample();
        assert_eq!(m.max_pair(), (3, 0, 4000));
    }

    #[test]
    fn totals_and_inter_device() {
        let m = sample();
        assert_eq!(m.total(), 1000 + 2000 + 3000 + 4000);
        // 1->2 (2000) and 3->0 (4000) cross the boundary.
        assert_eq!(m.inter_device_bytes(), 6000);
        assert!((m.inter_device_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn scaling_projects_iterations() {
        let m = sample().scaled(200, 4);
        assert_eq!(m.max_pair().2, 4000 * 50);
    }

    #[test]
    fn ring_is_neighbour_dominated() {
        let m = sample();
        assert_eq!(m.neighbour_fraction(1), 1.0);
        assert_eq!(m.neighbour_fraction(0), 0.0);
    }

    #[test]
    fn render_contains_grid_and_header() {
        let m = sample();
        let r = m.render();
        assert!(r.contains("4 ranks"));
        assert!(r.contains('|'), "device boundary column marker expected");
        assert!(r.lines().count() >= 5);
    }

    #[test]
    fn json_round_shape() {
        let m = sample();
        let j = m.to_json();
        assert!(j.starts_with("{\"bytes\":[["));
        assert!(j.ends_with("\"device_of\":[0,0,1,1]}"));
    }

    #[test]
    fn csv_lists_nonzero_pairs() {
        let m = sample();
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 pairs
        assert!(csv.contains("3,0,4000"));
    }
}
