//! NAS Parallel Benchmarks on RCCE/vSCC.
//!
//! The paper's application study (§4.2) uses the BT benchmark in the
//! RCCE port of Mattson et al. This module reimplements BT's
//! *multi-partition* parallel structure — the communication pattern,
//! message sizes, and compute/communication ratio — on the simulated
//! stack. The per-cell numerics are replaced by calibrated FLOP charges
//! (1 FLOP/cycle at 533 MHz, the paper's peak) and messages carry
//! deterministic verification payloads instead of solver state; see
//! DESIGN.md §2 for why this substitution preserves Fig. 7/8.

pub mod bt;
pub mod cg;

pub use bt::{run_bt, BtClass, BtConfig, BtResult};
pub use cg::{run_cg, CgClass, CgConfig, CgResult};
