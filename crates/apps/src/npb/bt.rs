//! The BT (block-tridiagonal) benchmark: multi-partition decomposition.
//!
//! BT solves three sets of block-tridiagonal systems per iteration (ADI
//! sweeps in x, y, z) on an N³ grid. The MPI/RCCE version uses the
//! *multi-partition* scheme: P = q² processors, each owning q cells laid
//! out along diagonals, so every processor is active in every stage of
//! every sweep. The resulting messages go to a fixed set of neighbours in
//! the q×q processor grid:
//!
//! * x sweep: forward to (pi+1, pj), backward to (pi−1, pj);
//! * y sweep: forward to (pi, pj+1), backward to (pi, pj−1);
//! * z sweep: forward to (pi−1, pj−1), backward to (pi+1, pj+1);
//! * `copy_faces` at the top of each iteration exchanges ghost faces with
//!   all six of those neighbours.
//!
//! With ranks laid out linearly over the devices (the vSCC mapping),
//! these neighbours produce exactly the near-diagonal traffic matrix of
//! the paper's Fig. 8.

use std::cell::Cell;
use std::rc::Rc;

use des::{Cycles, SimError};
use rcce::{Rcce, Session};

/// NPB problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BtClass {
    /// 12³, sample size.
    S,
    /// 24³, workstation size.
    W,
    /// 64³.
    A,
    /// 102³.
    B,
    /// 162³ — the class the paper evaluates (Fig. 7).
    C,
}

impl BtClass {
    /// Grid points per dimension.
    pub fn n(self) -> usize {
        match self {
            BtClass::S => 12,
            BtClass::W => 24,
            BtClass::A => 64,
            BtClass::B => 102,
            BtClass::C => 162,
        }
    }

    /// Full NPB iteration count (what Fig. 7/8 correspond to).
    pub fn full_iterations(self) -> usize {
        match self {
            BtClass::S => 60,
            _ => 200,
        }
    }

    /// Class name as NPB prints it.
    pub fn name(self) -> &'static str {
        match self {
            BtClass::S => "S",
            BtClass::W => "W",
            BtClass::A => "A",
            BtClass::B => "B",
            BtClass::C => "C",
        }
    }
}

/// FLOPs per grid point per iteration, calibrated from the published NPB
/// BT operation count (class A: 168.3 Gop over 64³ points × 200
/// iterations ⇒ ≈ 3211 flop/point/iteration).
pub const FLOPS_PER_POINT: u64 = 3211;

/// BT run configuration.
#[derive(Debug, Clone)]
pub struct BtConfig {
    /// Problem class.
    pub class: BtClass,
    /// Number of ranks; must be a square (1, 4, 9, 16, …).
    pub ranks: usize,
    /// Untimed warm-up iterations.
    pub warmup: usize,
    /// Timed iterations (throughput is steady-state, so a few suffice;
    /// Fig. 8 scales traffic to the full count).
    pub measured: usize,
}

impl BtConfig {
    /// Standard configuration: 1 warm-up + 3 timed iterations.
    pub fn new(class: BtClass, ranks: usize) -> Self {
        BtConfig { class, ranks, warmup: 1, measured: 3 }
    }

    /// q = √ranks.
    pub fn q(&self) -> usize {
        let q = (self.ranks as f64).sqrt().round() as usize;
        assert_eq!(q * q, self.ranks, "BT needs a square number of processes");
        q
    }

    /// Grid points per cell edge (ceil split, like NPB).
    pub fn cell_edge(&self) -> usize {
        self.class.n().div_ceil(self.q())
    }

    /// Bytes of one forward solve-info message: 22 doubles per face point
    /// (NPB `x_send_solve_info`).
    pub fn solve_msg_bytes(&self) -> usize {
        22 * 8 * self.cell_edge() * self.cell_edge()
    }

    /// Bytes of one back-substitution message: 10 doubles per face point.
    pub fn backsub_msg_bytes(&self) -> usize {
        10 * 8 * self.cell_edge() * self.cell_edge()
    }

    /// Bytes of one `copy_faces` exchange per direction: q cells × 2
    /// ghost layers × 5 components per face point.
    pub fn face_msg_bytes(&self) -> usize {
        self.q() * 2 * 5 * 8 * self.cell_edge() * self.cell_edge()
    }

    /// Total FLOPs of one iteration over all ranks.
    pub fn iter_flops(&self) -> u64 {
        let n = self.class.n() as u64;
        FLOPS_PER_POINT * n * n * n
    }

    /// Total FLOPs of the timed window.
    pub fn measured_flops(&self) -> u64 {
        self.iter_flops() * self.measured as u64
    }
}

/// Result of a BT run.
#[derive(Debug, Clone)]
pub struct BtResult {
    /// Simulated cycles of the timed window.
    pub cycles: Cycles,
    /// GFLOP/s over the timed window (Fig. 7's metric).
    pub gflops: f64,
    /// Whether every message carried the expected verification payload.
    pub verified: bool,
    /// Messages exchanged in total (timed + warm-up).
    pub messages: u64,
}

/// Per-rank BT process.
struct BtRank {
    r: Rcce,
    cfg: BtConfig,
    q: usize,
    pi: usize,
    pj: usize,
    ok: bool,
    messages: u64,
}

impl BtRank {
    fn rank_of(&self, pi: usize, pj: usize) -> usize {
        (pj % self.q) * self.q + (pi % self.q)
    }

    fn neighbour(&self, di: isize, dj: isize) -> usize {
        let q = self.q as isize;
        let pi = ((self.pi as isize + di) % q + q) % q;
        let pj = ((self.pj as isize + dj) % q + q) % q;
        self.rank_of(pi as usize, pj as usize)
    }

    fn payload(&self, len: usize, iter: usize, phase: u8, stage: usize, src: usize) -> Vec<u8> {
        let mut v = vec![(iter as u8) ^ (stage as u8).wrapping_mul(37) ^ phase; len];
        let header =
            ((iter as u64) << 32) | ((phase as u64) << 24) | ((stage as u64) << 12) | src as u64;
        let h = header.to_le_bytes();
        let k = len.min(8);
        v[..k].copy_from_slice(&h[..k]);
        v
    }

    async fn exchange(
        &mut self,
        to: usize,
        from: usize,
        len: usize,
        iter: usize,
        phase: u8,
        stage: usize,
    ) {
        let me = self.r.id();
        // Deadlock-free pairwise exchange on a torus: lower rank sends
        // first. (NPB posts receives early; this is the blocking-RCCE
        // equivalent.)
        let out = self.payload(len, iter, phase, stage, me);
        let expect = self.payload(len, iter, phase, stage, from);
        let mut inbuf = vec![0u8; len];
        if me < to.min(from) || (to == from && me < to) {
            self.r.send(&out, to).await;
            self.r.recv(&mut inbuf, from).await;
        } else {
            self.r.recv(&mut inbuf, from).await;
            self.r.send(&out, to).await;
        }
        self.ok &= inbuf == expect;
        self.messages += 2;
    }

    /// Non-blocking stage send (the RCCE BT port posts its solve-info
    /// sends with iRCCE so the sweep can progress to its own receive).
    fn isend_stage(
        &mut self,
        to: usize,
        len: usize,
        iter: usize,
        phase: u8,
        stage: usize,
    ) -> rcce::ircce::SendRequest {
        let out = self.payload(len, iter, phase, stage, self.r.id());
        self.messages += 1;
        self.r.isend(out, to)
    }

    async fn recv_stage(&mut self, from: usize, len: usize, iter: usize, phase: u8, stage: usize) {
        let mut buf = vec![0u8; len];
        self.r.recv(&mut buf, from).await;
        let expect = self.payload(len, iter, phase, stage, from);
        if buf != expect {
            let first_bad = buf.iter().zip(&expect).position(|(a, b)| a != b).unwrap();
            // Structured record for the trace export, stderr for humans.
            let me = self.r.id();
            self.r.ctx().session.trace().instant(
                self.r.sim().now(),
                des::trace::Category::App,
                "bt_payload_mismatch",
                || self.r.ctx().label.clone(),
                || {
                    des::fields![
                        src = from as u64,
                        iter = iter as u64,
                        phase = phase as u64,
                        stage = stage as u64,
                        len = len as u64,
                        first_bad = first_bad as u64
                    ]
                },
            );
            if std::env::var("BT_DEBUG").is_ok() {
                eprintln!(
                    "MISMATCH rank{me} <- rank{from} iter{iter} phase{phase} stage{stage} len{len} first_bad@{first_bad} got {:?} want {:?} (got hdr {:?})",
                    &buf[first_bad..(first_bad + 8).min(len)],
                    &expect[first_bad..(first_bad + 8).min(len)],
                    &buf[..8.min(len)]
                );
            }
        }
        self.ok &= buf == expect;
        self.messages += 1;
    }

    /// One ADI sweep in the direction whose forward neighbour is
    /// `(di, dj)`: q forward elimination stages, then q back-substitution
    /// stages, with the per-stage cell compute charged in between.
    async fn sweep(&mut self, di: isize, dj: isize, iter: usize, phase: u8) {
        let q = self.q;
        let fwd = self.neighbour(di, dj);
        let bwd = self.neighbour(-di, -dj);
        let solve = self.cfg.solve_msg_bytes();
        let back = self.cfg.backsub_msg_bytes();
        // 22% of the iteration's per-rank flops per sweep, half in the
        // forward elimination, half in the back substitution.
        let per_rank = self.cfg.iter_flops() / self.cfg.ranks as u64;
        let stage_flops = per_rank * 22 / 100 / (2 * q as u64);
        let mut outstanding = Vec::with_capacity(2 * q);
        for stage in 0..q {
            if stage > 0 {
                self.recv_stage(bwd, solve, iter, phase, stage).await;
            }
            self.r.compute(stage_flops).await;
            if stage < q - 1 {
                outstanding.push(self.isend_stage(fwd, solve, iter, phase, stage + 1));
            }
        }
        for stage in (0..q).rev() {
            if stage < q - 1 {
                self.recv_stage(fwd, back, iter, phase + 1, stage).await;
            }
            self.r.compute(stage_flops).await;
            if stage > 0 {
                outstanding.push(self.isend_stage(bwd, back, iter, phase + 1, stage - 1));
            }
        }
        for req in outstanding {
            req.wait().await;
        }
    }

    async fn copy_faces(&mut self, iter: usize) {
        if self.q == 1 {
            return; // single processor: no ghost faces to exchange
        }
        let len = self.cfg.face_msg_bytes();
        // Six directions: ±x, ±y, ±z (z neighbours are the diagonals).
        let dirs: [(isize, isize); 3] = [(1, 0), (0, 1), (-1, -1)];
        for (d, (di, dj)) in dirs.into_iter().enumerate() {
            let plus = self.neighbour(di, dj);
            let minus = self.neighbour(-di, -dj);
            self.exchange(plus, minus, len, iter, 10 + d as u8 * 2, 0).await;
            self.exchange(minus, plus, len, iter, 11 + d as u8 * 2, 0).await;
        }
    }

    async fn iteration(&mut self, iter: usize) {
        let per_rank = self.cfg.iter_flops() / self.cfg.ranks as u64;
        self.copy_faces(iter).await;
        // compute_rhs: 25% of the iteration.
        self.r.compute(per_rank / 4).await;
        self.sweep(1, 0, iter, 0).await; // x
        self.sweep(0, 1, iter, 2).await; // y
        self.sweep(-1, -1, iter, 4).await; // z
                                           // add: the remaining ~9%.
        self.r.compute(per_rank * 9 / 100).await;
    }
}

/// Run BT on an existing session (the session must have exactly
/// `cfg.ranks` ranks). Returns the Fig. 7 metrics.
pub fn run_bt(session: &Session, cfg: &BtConfig) -> Result<BtResult, SimError> {
    assert_eq!(session.num_ranks(), cfg.ranks, "session size must match BT process count");
    assert!(cfg.q() <= cfg.class.n(), "more partitions than grid points per dimension");
    let t0 = Rc::new(Cell::new(0u64));
    let t1 = Rc::new(Cell::new(0u64));
    let cfg2 = cfg.clone();
    let results = session.run_app(move |r| {
        let cfg = cfg2.clone();
        let (t0, t1) = (t0.clone(), t1.clone());
        async move {
            let q = cfg.q();
            let me = r.id();
            let mut bt =
                BtRank { r: r.clone(), q, pi: me % q, pj: me / q, cfg, ok: true, messages: 0 };
            for iter in 0..bt.cfg.warmup {
                bt.iteration(iter).await;
            }
            r.barrier().await;
            if me == 0 {
                t0.set(r.now());
            }
            for iter in 0..bt.cfg.measured {
                bt.iteration(bt.cfg.warmup + iter).await;
            }
            r.barrier().await;
            if me == 0 {
                t1.set(r.now());
            }
            (bt.ok, bt.messages, t0.get(), t1.get())
        }
    })?;
    let verified = results.iter().all(|(ok, _, _, _)| *ok);
    let messages = results.iter().map(|(_, m, _, _)| m).sum();
    let (_, _, start, end) = results[0];
    let cycles = end - start;
    let secs = cycles as f64 / (des::time::CORE_FREQ.as_mhz() as f64 * 1e6);
    let gflops = cfg.measured_flops() as f64 / secs / 1e9;
    Ok(BtResult { cycles, gflops, verified, messages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Sim;
    use rcce::SessionBuilder;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn onchip_session(sim: &Sim, ranks: usize) -> Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(ranks).build()
    }

    #[test]
    fn class_parameters() {
        assert_eq!(BtClass::C.n(), 162);
        assert_eq!(BtClass::C.full_iterations(), 200);
        assert_eq!(BtClass::S.full_iterations(), 60);
    }

    #[test]
    fn config_geometry() {
        let cfg = BtConfig::new(BtClass::C, 225);
        assert_eq!(cfg.q(), 15);
        assert_eq!(cfg.cell_edge(), 11);
        assert_eq!(cfg.solve_msg_bytes(), 22 * 8 * 121);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_ranks_rejected() {
        BtConfig::new(BtClass::S, 6).q();
    }

    #[test]
    fn bt_class_s_single_rank() {
        let sim = Sim::new();
        let s = onchip_session(&sim, 1);
        let cfg = BtConfig::new(BtClass::S, 1);
        let res = run_bt(&s, &cfg).unwrap();
        assert!(res.verified);
        // One rank: pure compute, so GFLOP/s ~ peak 0.533.
        assert!((0.4..0.54).contains(&res.gflops), "1-rank BT at {} GF/s", res.gflops);
    }

    #[test]
    fn bt_class_s_four_ranks_verified() {
        let sim = Sim::new();
        let s = onchip_session(&sim, 4);
        let cfg = BtConfig::new(BtClass::S, 4);
        let res = run_bt(&s, &cfg).unwrap();
        assert!(res.verified, "payload verification failed");
        assert!(res.messages > 0);
        assert!(res.gflops > 0.5, "4 ranks should beat 1 rank: {}", res.gflops);
    }

    #[test]
    fn bt_scales_on_chip() {
        let gf = |ranks| {
            let sim = Sim::new();
            let s = onchip_session(&sim, ranks);
            run_bt(&s, &BtConfig::new(BtClass::W, ranks)).unwrap().gflops
        };
        let g1 = gf(1);
        let g4 = gf(4);
        let g16 = gf(16);
        assert!(g4 > 2.0 * g1, "4 ranks {g4} should be >2x 1 rank {g1}");
        assert!(g16 > 2.0 * g4, "16 ranks {g16} should be >2x 4 ranks {g4}");
    }

    #[test]
    fn bt_traffic_is_neighbour_dominated() {
        let sim = Sim::new();
        let s = onchip_session(&sim, 16);
        run_bt(&s, &BtConfig::new(BtClass::W, 16)).unwrap();
        let m = crate::traffic::TrafficMatrix::capture(&s);
        // The multipartition pattern is ring/diagonal based: most bytes
        // sit near the (wrapped) diagonal.
        assert!(
            m.neighbour_fraction(5) > 0.6,
            "neighbour fraction {} too low",
            m.neighbour_fraction(5)
        );
        assert!(m.total() > 0);
    }

    #[test]
    fn bt_deterministic() {
        let run = || {
            let sim = Sim::new();
            let s = onchip_session(&sim, 4);
            run_bt(&s, &BtConfig::new(BtClass::S, 4)).unwrap().cycles
        };
        assert_eq!(run(), run());
    }
}
