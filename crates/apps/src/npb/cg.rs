//! The CG (conjugate gradient) benchmark: power-method iterations over a
//! sparse matrix, the NPB's communication-stress counterpart to BT.
//!
//! NPB CG partitions the matrix over a 2^k processor grid (rows × cols);
//! every CG sub-iteration performs a sparse matvec whose row sums are
//! reduced across the processor row in log₂(cols) pairwise exchange
//! steps, followed by an exchange with the *transpose* partner and two
//! dot-product all-reductions. Unlike BT's neighbourhood rings, CG's
//! partners are strided across the rank space — long-distance pairs that
//! stress the vSCC tunnel very differently (and show up as off-diagonal
//! bands in the traffic matrix).
//!
//! As with BT (see [`super::bt`]), the per-element numerics are replaced
//! by calibrated FLOP charges and messages carry verification payloads;
//! pattern, sizes, and compute/communication ratio follow the original.

use std::cell::Cell;
use std::rc::Rc;

use des::{Cycles, SimError};
use rcce::collectives::Op;
use rcce::{Rcce, Session};

/// NPB CG problem classes: (n, nonzeros/row seed, outer iterations,
/// published total workload in Mop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CgClass {
    /// n = 1400.
    S,
    /// n = 7000.
    W,
    /// n = 14000.
    A,
    /// n = 75000.
    B,
    /// n = 150000.
    C,
}

impl CgClass {
    /// Matrix dimension.
    pub fn n(self) -> usize {
        match self {
            CgClass::S => 1400,
            CgClass::W => 7000,
            CgClass::A => 14_000,
            CgClass::B => 75_000,
            CgClass::C => 150_000,
        }
    }

    /// Outer (power-method) iterations of the full benchmark.
    pub fn full_iterations(self) -> usize {
        match self {
            CgClass::S | CgClass::W | CgClass::A => 15,
            CgClass::B | CgClass::C => 75,
        }
    }

    /// Total floating-point work of the full benchmark, in Mop (NPB
    /// reference operation counts, rounded).
    pub fn total_mops(self) -> u64 {
        match self {
            CgClass::S => 66,
            CgClass::W => 399,
            CgClass::A => 1_508,
            CgClass::B => 54_890,
            CgClass::C => 143_300,
        }
    }

    /// Class name.
    pub fn name(self) -> &'static str {
        match self {
            CgClass::S => "S",
            CgClass::W => "W",
            CgClass::A => "A",
            CgClass::B => "B",
            CgClass::C => "C",
        }
    }
}

/// CG sub-iterations per outer iteration (the NPB constant).
pub const CG_SUB_ITERS: usize = 25;

/// CG run configuration.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// Problem class.
    pub class: CgClass,
    /// Ranks; must be a power of two.
    pub ranks: usize,
    /// Untimed warm-up outer iterations.
    pub warmup: usize,
    /// Timed outer iterations.
    pub measured: usize,
}

impl CgConfig {
    /// Standard configuration: 1 warm-up + 2 timed outer iterations.
    pub fn new(class: CgClass, ranks: usize) -> Self {
        assert!(ranks.is_power_of_two(), "CG needs a power-of-two process count");
        CgConfig { class, ranks, warmup: 1, measured: 2 }
    }

    /// Processor grid (rows, cols): cols = rows or 2·rows.
    pub fn grid(&self) -> (usize, usize) {
        let k = self.ranks.trailing_zeros();
        let rows = 1usize << (k / 2);
        (rows, self.ranks / rows)
    }

    /// Bytes of one row-reduce / transpose exchange segment.
    pub fn segment_bytes(&self) -> usize {
        let (_rows, cols) = self.grid();
        (self.class.n().div_ceil(cols)) * 8
    }

    /// FLOPs of one outer iteration across all ranks.
    pub fn iter_flops(&self) -> u64 {
        self.class.total_mops() * 1_000_000 / self.class.full_iterations() as u64
    }

    /// FLOPs of the timed window.
    pub fn measured_flops(&self) -> u64 {
        self.iter_flops() * self.measured as u64
    }
}

/// Result of a CG run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Simulated cycles of the timed window.
    pub cycles: Cycles,
    /// GFLOP/s over the timed window.
    pub gflops: f64,
    /// All verification payloads matched.
    pub verified: bool,
    /// Point-to-point messages exchanged.
    pub messages: u64,
}

struct CgRank {
    r: Rcce,
    cfg: CgConfig,
    rows: usize,
    cols: usize,
    row: usize,
    col: usize,
    ok: bool,
    messages: u64,
}

impl CgRank {
    fn rank_of(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    fn payload(&self, len: usize, tag: u64, src: usize) -> Vec<u8> {
        let mut v = vec![(tag as u8).wrapping_mul(89) ^ (src as u8); len];
        let h = (tag << 16 | src as u64).to_le_bytes();
        let k = len.min(8);
        v[..k].copy_from_slice(&h[..k]);
        v
    }

    async fn exchange(&mut self, partner: usize, len: usize, tag: u64) {
        let me = self.r.id();
        if partner == me {
            return;
        }
        let out = self.payload(len, tag, me);
        let expect = self.payload(len, tag, partner);
        let req = self.r.isend(out, partner);
        let got = self.r.recv_vec(len, partner).await;
        req.wait().await;
        self.ok &= got == expect;
        self.messages += 2;
    }

    /// One CG sub-iteration: matvec + row reduce + transpose exchange +
    /// two dot products.
    async fn sub_iteration(&mut self, tag_base: u64) {
        let per_rank = self.cfg.iter_flops() / self.cfg.ranks as u64 / CG_SUB_ITERS as u64;
        let mut charged = 0u64;
        // Local sparse matvec: the bulk of the arithmetic (~80%).
        let matvec = per_rank * 8 / 10;
        self.r.compute(matvec).await;
        charged += matvec;
        // Row-sum reduction: log2(cols) pairwise exchanges within the row.
        let seg = self.cfg.segment_bytes();
        let mut stride = 1usize;
        let mut stage = 0u64;
        while stride < self.cols {
            let partner_col = self.col ^ stride;
            let partner = self.rank_of(self.row, partner_col);
            self.exchange(partner, seg, tag_base + stage).await;
            // Combine the received partial sums.
            let combine = per_rank / 10 / self.cols.trailing_zeros().max(1) as u64;
            self.r.compute(combine).await;
            charged += combine;
            stride <<= 1;
            stage += 1;
        }
        // Transpose exchange (send the reduced segment to the transposed
        // position in the grid; with cols == 2*rows the partner halves).
        let t_row = self.col % self.rows;
        let t_col =
            self.row + if self.cols > self.rows { self.rows * (self.col / self.rows) } else { 0 };
        let transpose = self.rank_of(t_row, t_col % self.cols);
        self.exchange(transpose, seg, tag_base + 40).await;
        // Two dot products over the distributed vectors.
        let d1 = self.r.allreduce_f64(self.r.id() as f64, Op::Sum).await;
        let d2 = self.r.allreduce_f64(1.0, Op::Sum).await;
        let n = self.r.num_ues() as f64;
        self.ok &= d1 == n * (n - 1.0) / 2.0 && d2 == n;
        // Vector updates: whatever remains of this sub-iteration's budget,
        // so the charged work always sums to `per_rank`.
        self.r.compute(per_rank.saturating_sub(charged)).await;
    }

    async fn outer_iteration(&mut self, iter: usize) {
        for s in 0..CG_SUB_ITERS {
            self.sub_iteration((iter * CG_SUB_ITERS + s) as u64 * 64).await;
        }
    }
}

/// Run CG on an existing session of exactly `cfg.ranks` ranks.
pub fn run_cg(session: &Session, cfg: &CgConfig) -> Result<CgResult, SimError> {
    assert_eq!(session.num_ranks(), cfg.ranks);
    let t0 = Rc::new(Cell::new(0u64));
    let t1 = Rc::new(Cell::new(0u64));
    let cfg2 = cfg.clone();
    let results = session.run_app(move |r| {
        let cfg = cfg2.clone();
        let (t0, t1) = (t0.clone(), t1.clone());
        async move {
            let (rows, cols) = cfg.grid();
            let me = r.id();
            let mut cg = CgRank {
                r: r.clone(),
                rows,
                cols,
                row: me / cols,
                col: me % cols,
                cfg,
                ok: true,
                messages: 0,
            };
            for i in 0..cg.cfg.warmup {
                cg.outer_iteration(i).await;
            }
            r.barrier().await;
            if me == 0 {
                t0.set(r.now());
            }
            for i in 0..cg.cfg.measured {
                cg.outer_iteration(cg.cfg.warmup + i).await;
            }
            r.barrier().await;
            if me == 0 {
                t1.set(r.now());
            }
            (cg.ok, cg.messages, t0.get(), t1.get())
        }
    })?;
    let verified = results.iter().all(|(ok, _, _, _)| *ok);
    let messages = results.iter().map(|(_, m, _, _)| m).sum();
    let (_, _, start, end) = results[0];
    let cycles = end - start;
    let secs = cycles as f64 / (des::time::CORE_FREQ.as_mhz() as f64 * 1e6);
    let gflops = cfg.measured_flops() as f64 / secs / 1e9;
    Ok(CgResult { cycles, gflops, verified, messages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Sim;
    use rcce::SessionBuilder;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn onchip_session(sim: &Sim, ranks: usize) -> Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(ranks).build()
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(CgConfig::new(CgClass::S, 1).grid(), (1, 1));
        assert_eq!(CgConfig::new(CgClass::S, 2).grid(), (1, 2));
        assert_eq!(CgConfig::new(CgClass::S, 4).grid(), (2, 2));
        assert_eq!(CgConfig::new(CgClass::S, 8).grid(), (2, 4));
        assert_eq!(CgConfig::new(CgClass::S, 32).grid(), (4, 8));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        CgConfig::new(CgClass::S, 6);
    }

    #[test]
    fn cg_single_rank_near_peak() {
        let sim = Sim::new();
        let s = onchip_session(&sim, 1);
        let res = run_cg(&s, &CgConfig::new(CgClass::S, 1)).unwrap();
        assert!(res.verified);
        assert!((0.35..0.54).contains(&res.gflops), "1-rank CG at {} GF/s", res.gflops);
    }

    #[test]
    fn cg_verifies_on_chip() {
        let sim = Sim::new();
        let s = onchip_session(&sim, 8);
        let res = run_cg(&s, &CgConfig::new(CgClass::S, 8)).unwrap();
        assert!(res.verified);
        assert!(res.messages > 0);
    }

    #[test]
    fn cg_verifies_cross_device() {
        let sim = Sim::new();
        let v = vscc::VsccBuilder::new(&sim, 2).scheme(vscc::CommScheme::LocalPutLocalGet).build();
        let s = v.session_builder().cores_per_device(8).build();
        let res = run_cg(&s, &CgConfig::new(CgClass::S, 16)).unwrap();
        assert!(res.verified, "CG corrupted across the tunnel");
    }

    #[test]
    fn cg_traffic_has_long_distance_pairs() {
        // CG's strided partners produce off-diagonal traffic, unlike BT.
        let sim = Sim::new();
        let s = onchip_session(&sim, 16);
        run_cg(&s, &CgConfig::new(CgClass::S, 16)).unwrap();
        let m = crate::traffic::TrafficMatrix::capture(&s);
        assert!(
            m.neighbour_fraction(2) < 0.9,
            "CG must not be purely neighbourhood traffic: {}",
            m.neighbour_fraction(2)
        );
    }

    #[test]
    fn cg_deterministic() {
        let run = || {
            let sim = Sim::new();
            let s = onchip_session(&sim, 4);
            run_cg(&s, &CgConfig::new(CgClass::S, 4)).unwrap().cycles
        };
        assert_eq!(run(), run());
    }
}
