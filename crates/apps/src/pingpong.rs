//! Ping-Pong: the point-to-point throughput benchmark of §4.1.
//!
//! Two ranks bounce a message back and forth; throughput is the payload
//! volume over the simulated round-trip time. The helpers here build a
//! fresh system per measurement point so runs are independent and
//! deterministic.

use des::obs::Registry;
use des::time::CORE_FREQ;
use des::trace::{Category, Trace};
use des::Sim;
use rcce::{PipelinedProtocol, SessionBuilder};
use scc::device::SccDevice;
use scc::geometry::{CoreId, DeviceId};
use vscc::{CommScheme, VsccBuilder};

/// One measured point of a ping-pong sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PingPongPoint {
    /// Message size in bytes.
    pub size: usize,
    /// Simulated cycles for all repetitions.
    pub cycles: u64,
    /// One-way throughput in MB/s (paper's metric).
    pub mbps: f64,
}

/// The message sizes swept in Fig. 6 (32 B … 512 KiB, with extra points
/// around the 8 KiB MPB boundary where the dip appears).
pub fn fig6_sizes() -> Vec<usize> {
    let mut v: Vec<usize> = (5..=19).map(|p| 1usize << p).collect(); // 32 B..512 KiB
    v.extend([6144, 7424, 7680, 12288]);
    v.sort_unstable();
    v
}

async fn bounce(r: rcce::Rcce, size: usize, reps: usize) {
    let peer = 1 - r.id();
    let msg = vec![0xA5u8; size];
    let mut buf = vec![0u8; size];
    for _ in 0..reps {
        if r.id() == 0 {
            r.send(&msg, peer).await;
            r.recv(&mut buf, peer).await;
        } else {
            r.recv(&mut buf, peer).await;
            r.send(&buf, peer).await;
        }
    }
}

fn point(sim: &Sim, size: usize, reps: usize) -> PingPongPoint {
    let cycles = sim.now();
    // 2*reps one-way messages in `cycles`.
    let mbps = CORE_FREQ.mbytes_per_sec((2 * reps * size) as u64, cycles);
    PingPongPoint { size, cycles, mbps }
}

/// On-chip ping-pong between core 0 and core 1 of one device.
pub fn onchip(pipelined: bool, size: usize, reps: usize) -> PingPongPoint {
    let sim = Sim::new();
    let dev = SccDevice::new(&sim, DeviceId(0));
    let mut b = SessionBuilder::new(&sim, vec![dev]).max_ranks(2);
    if pipelined {
        b = b.onchip_protocol(std::rc::Rc::new(PipelinedProtocol::default()));
    }
    let s = b.build();
    s.run_app(move |r| bounce(r, size, reps)).expect("on-chip ping-pong");
    point(&sim, size, reps)
}

/// Like [`onchip`], but with the device metrics registered and all trace
/// categories enabled; returns the observability handles alongside the
/// measurement (for `VSCC_TRACE` / `VSCC_METRICS` exports).
pub fn onchip_observed(
    pipelined: bool,
    size: usize,
    reps: usize,
) -> (PingPongPoint, Trace, Registry) {
    let sim = Sim::new();
    let reg = Registry::new();
    let dev = SccDevice::new(&sim, DeviceId(0));
    dev.register_metrics(&reg);
    let mut b = SessionBuilder::new(&sim, vec![dev]).max_ranks(2).with_trace().with_metrics(&reg);
    if pipelined {
        b = b.onchip_protocol(std::rc::Rc::new(PipelinedProtocol::default()));
    }
    let s = b.build();
    s.run_app(move |r| bounce(r, size, reps)).expect("on-chip ping-pong");
    (point(&sim, size, reps), s.trace(), reg)
}

/// The fig6b platform: the paper's physical setup is five SCC devices
/// behind one Xeon host (Fig. 1), with the inter-device measurement
/// running on one pair while the rest sit idle. Idle devices add fabric
/// structure (their own ports, commtasks, and host-side actors) but do
/// not shift the measured pair's timing — every scheme's cycle count is
/// identical at 2 and 5 devices. Building the full platform means
/// `VSCC_SHARDS` partitions fig6b runs into six execution groups (host
/// + five devices) instead of three.
pub const FIG_DEVICES: u8 = 5;

/// Inter-device ping-pong between core 0 of device 0 and core 0 of
/// device 1 under the given scheme, on the full [`FIG_DEVICES`]-device
/// platform.
pub fn interdevice(scheme: CommScheme, size: usize, reps: usize) -> PingPongPoint {
    interdevice_on(scheme, size, reps, FIG_DEVICES)
}

/// Like [`interdevice`], but with every layer's metrics in one registry
/// and all trace categories enabled.
pub fn interdevice_observed(
    scheme: CommScheme,
    size: usize,
    reps: usize,
) -> (PingPongPoint, Trace, Registry) {
    let sim = Sim::new();
    let reg = Registry::new();
    let v = VsccBuilder::new(&sim, FIG_DEVICES)
        .scheme(scheme)
        .metrics_registry(&reg)
        .trace_categories(&Category::ALL)
        .build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(move |r| bounce(r, size, reps)).expect("inter-device ping-pong");
    let trace = v.trace().clone();
    (point(&sim, size, reps), trace, reg)
}

/// Like [`interdevice_observed`], but additionally running the
/// virtual-time metrics sampler at `cadence` cycles; the returned
/// [`des::obs::TimeSeries`] is finished at app completion (partial tail
/// window flushed), ready for `VSCC_TIMESERIES` export or Chrome-trace
/// counter tracks.
pub fn interdevice_sampled(
    scheme: CommScheme,
    size: usize,
    reps: usize,
    cadence: des::Cycles,
) -> (PingPongPoint, Trace, Registry, des::obs::TimeSeries) {
    let sim = Sim::new();
    let reg = Registry::new();
    let v = VsccBuilder::new(&sim, FIG_DEVICES)
        .scheme(scheme)
        .metrics_registry(&reg)
        .trace_categories(&Category::ALL)
        .build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    // Build the session before spawning the sampler so the `rcce.*`
    // metrics exist when the selection is resolved.
    let s = v.session_builder().participants(vec![a, b]).build();
    let ts = v.spawn_sampler(&des::obs::SamplerSpec::every(cadence));
    s.run_app(move |r| bounce(r, size, reps)).expect("inter-device ping-pong");
    ts.finish(sim.now());
    let trace = v.trace().clone();
    (point(&sim, size, reps), trace, reg, ts)
}

/// Like [`interdevice`], but running under an installed
/// [`des::audit::Audit`] stream: every scheduler decision of the run is
/// folded into per-epoch chain hashes at `cadence` cycles per epoch
/// (ready for `VSCC_AUDIT` export). `zoom` selects an epoch whose raw
/// decisions are kept and whose window arms every trace category
/// (`VSCC_AUDIT_ZOOM`); `faults` optionally runs the whole thing under
/// a seeded fault plan, so two audits differing only in the seed can be
/// bisected to the first divergent decision.
pub fn interdevice_audited(
    scheme: CommScheme,
    size: usize,
    reps: usize,
    cadence: u64,
    zoom: Option<u64>,
    faults: Option<des::faultplan::FaultSpec>,
) -> (PingPongPoint, des::audit::Audit) {
    let audit = match zoom {
        Some(epoch) => des::audit::Audit::with_zoom(cadence, epoch),
        None => des::audit::Audit::new(cadence),
    };
    let guard = audit.install();
    let sim = Sim::new();
    let mut b = VsccBuilder::new(&sim, FIG_DEVICES).scheme(scheme);
    if let Some(spec) = faults {
        b = b.faults(spec);
    }
    let v = b.build();
    audit.register_trace(v.trace());
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(move |r| bounce(r, size, reps)).expect("inter-device ping-pong");
    drop(guard);
    (point(&sim, size, reps), audit)
}

/// Inter-device ping-pong on a system of `n_devices` (the extra devices
/// only add fabric structure; the traffic stays on one pair).
pub fn interdevice_on(
    scheme: CommScheme,
    size: usize,
    reps: usize,
    n_devices: u8,
) -> PingPongPoint {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, n_devices).scheme(scheme).build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(move |r| bounce(r, size, reps)).expect("inter-device ping-pong");
    point(&sim, size, reps)
}

/// Round-trip latency (cycles) of a single message of `size` bytes.
pub fn latency_cycles(scheme: CommScheme, size: usize) -> u64 {
    interdevice(scheme, size, 1).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_sizes_cover_the_dip() {
        let s = fig6_sizes();
        assert!(s.contains(&32) && s.contains(&(512 * 1024)));
        assert!(s.contains(&7680) && s.contains(&8192));
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sizes must be sorted and unique");
    }

    #[test]
    fn onchip_blocking_band() {
        // Paper §4.1: max on-chip throughput ~150 MB/s; blocking RCCE
        // reaches roughly half of it.
        let p = onchip(false, 64 * 1024, 3);
        assert!((55.0..120.0).contains(&p.mbps), "RCCE on-chip at {} MB/s", p.mbps);
    }

    #[test]
    fn onchip_pipelined_band() {
        let p = onchip(true, 256 * 1024, 3);
        assert!((120.0..190.0).contains(&p.mbps), "iRCCE on-chip at {} MB/s", p.mbps);
    }

    #[test]
    fn pipelining_only_helps_above_packet_size() {
        // Below one packet, the pipelined protocol degenerates to the
        // blocking one.
        let small_b = onchip(false, 1024, 3);
        let small_p = onchip(true, 1024, 3);
        assert!((small_p.mbps - small_b.mbps).abs() / small_b.mbps < 0.05);
        let large_b = onchip(false, 128 * 1024, 3);
        let large_p = onchip(true, 128 * 1024, 3);
        assert!(large_p.mbps > large_b.mbps * 1.3);
    }

    #[test]
    fn routing_throughput_tiny() {
        let p = interdevice(CommScheme::SimpleRouting, 8192, 2);
        assert!(p.mbps < 5.0, "simple routing at {} MB/s should be ~1.5", p.mbps);
    }

    #[test]
    fn headline_24_percent_recovered() {
        // §5: "recover 24% of effective on-chip communication throughput".
        let onchip_max = onchip(true, 256 * 1024, 3).mbps;
        let best = interdevice(CommScheme::LocalPutLocalGet, 256 * 1024, 3).mbps;
        let ratio = best / onchip_max;
        assert!(
            (0.17..0.32).contains(&ratio),
            "best inter-device / on-chip = {ratio:.3}, expected ~0.24"
        );
    }

    #[test]
    fn lprg_fraction_of_bound() {
        // §4.1: local put / remote get reaches 71.72% of the
        // hardware-accelerated limit.
        let bound = interdevice(CommScheme::RemotePutHwAck, 128 * 1024, 2).mbps;
        let lprg = interdevice(CommScheme::LocalPutRemoteGet, 128 * 1024, 2).mbps;
        let frac = lprg / bound;
        assert!((0.55..0.85).contains(&frac), "LPRG/bound = {frac:.3}, expected ~0.72");
    }

    #[test]
    fn vdma_has_no_8k_dip_but_lprg_does() {
        let dip = |scheme: CommScheme| {
            let before = interdevice(scheme, 7424, 2).mbps;
            let after = interdevice(scheme, 8192, 2).mbps;
            after / before
        };
        assert!(dip(CommScheme::LocalPutRemoteGet) < 0.98, "LPRG should dip at 8 KiB");
        assert!(dip(CommScheme::LocalPutLocalGet) > 0.98, "vDMA removes the dip");
    }

    #[test]
    fn small_message_latency_below_programming_overhead_path() {
        // The direct-transfer threshold keeps small messages cheap: a
        // 64 B vDMA-scheme message must not cost more than ~4 routed RTs.
        let l = latency_cycles(CommScheme::LocalPutLocalGet, 64);
        assert!(l < 40_000, "64 B latency {l} cycles too high");
    }

    #[test]
    fn deterministic_measurements() {
        let a = interdevice(CommScheme::LocalPutLocalGet, 4096, 2);
        let b = interdevice(CommScheme::LocalPutLocalGet, 4096, 2);
        assert_eq!(a, b);
    }
}
