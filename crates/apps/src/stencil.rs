//! A 2-D Jacobi heat-diffusion stencil with halo exchange.
//!
//! Unlike the BT skeleton, this application moves *real* floating-point
//! state through the communication stack every iteration and checks a
//! physical invariant (conservation under an insulated boundary), so it
//! doubles as an end-to-end correctness workout for whichever scheme is
//! installed.

use des::SimError;
use rcce::{collectives::Op, Session};

/// Stencil configuration: a `width × height` global grid split into
/// horizontal strips, one per rank.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// Global grid width.
    pub width: usize,
    /// Global grid height (must divide evenly by the rank count).
    pub height: usize,
    /// Jacobi iterations.
    pub iterations: usize,
}

/// Result of a stencil run.
#[derive(Debug, Clone)]
pub struct StencilResult {
    /// Total heat at the end (must equal the initial total).
    pub total_heat: f64,
    /// Maximum cell-wise residual of the last iteration.
    pub residual: f64,
    /// Simulated cycles.
    pub cycles: u64,
}

fn row_bytes(width: usize) -> usize {
    width * 8
}

fn pack(row: &[f64]) -> Vec<u8> {
    row.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn unpack(buf: &[u8], row: &mut [f64]) {
    for (i, chunk) in buf.chunks_exact(8).enumerate() {
        row[i] = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
    }
}

/// Run the stencil over an existing session; every rank owns
/// `height / num_ranks` rows plus two halo rows.
pub fn run_stencil(session: &Session, cfg: &StencilConfig) -> Result<StencilResult, SimError> {
    let n = session.num_ranks();
    assert!(cfg.height.is_multiple_of(n), "height must divide evenly over ranks");
    let cfg = cfg.clone();
    let results = session.run_app(move |r| {
        let cfg = cfg.clone();
        async move {
            let n = r.num_ues();
            let me = r.id();
            let w = cfg.width;
            let rows = cfg.height / n;
            // Local strip with halo rows at index 0 and rows+1.
            let mut grid = vec![vec![0.0f64; w]; rows + 2];
            let mut next = grid.clone();
            // Initial condition: a hot square in the global centre.
            let (gy0, gy1) = (cfg.height / 4, 3 * cfg.height / 4);
            for (ly, row) in grid.iter_mut().enumerate().take(rows + 1).skip(1) {
                let gy = me * rows + (ly - 1);
                if (gy0..gy1).contains(&gy) {
                    row[w / 4..3 * w / 4].fill(100.0);
                }
            }
            for iter in 0..cfg.iterations {
                // Halo exchange with the strips above and below
                // (insulated outer boundary: copy own edge).
                if n > 1 {
                    let up = if me > 0 { Some(me - 1) } else { None };
                    let down = if me + 1 < n { Some(me + 1) } else { None };
                    // Phase A: even ranks send down / odd receive up,
                    // then the reverse — deadlock-free on a chain.
                    let mut buf = vec![0u8; row_bytes(w)];
                    for phase in 0..2 {
                        let send_down = (me % 2 == 0) == (phase == 0);
                        if send_down {
                            if let Some(d) = down {
                                r.send(&pack(&grid[rows]), d).await;
                                r.recv(&mut buf, d).await;
                                unpack(&buf, &mut grid[rows + 1]);
                            }
                        } else if let Some(u) = up {
                            r.recv(&mut buf, u).await;
                            unpack(&buf, &mut grid[0]);
                            r.send(&pack(&grid[1]), u).await;
                        }
                    }
                }
                if me == 0 {
                    grid[0] = grid[1].clone();
                }
                if me == n - 1 {
                    grid[rows + 1] = grid[rows].clone();
                }
                // Jacobi update (insulated left/right edges).
                for y in 1..=rows {
                    for x in 0..w {
                        let left = grid[y][x.saturating_sub(1)];
                        let right = grid[y][(x + 1).min(w - 1)];
                        let c = grid[y][x];
                        next[y][x] =
                            c + 0.2 * (grid[y - 1][x] + grid[y + 1][x] + left + right - 4.0 * c);
                    }
                }
                std::mem::swap(&mut grid, &mut next);
                // Charge the arithmetic: ~8 flops per cell.
                r.compute((rows * w * 8) as u64).await;
                let _ = iter;
            }
            // Conservation check and residual.
            let local_heat: f64 = grid[1..=rows].iter().flatten().sum();
            let total = r.allreduce_f64(local_heat, Op::Sum).await;
            let local_res = grid[1..=rows]
                .iter()
                .zip(&next[1..=rows])
                .flat_map(|(a, b)| a.iter().zip(b.iter()))
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            let residual = r.allreduce_f64(local_res, Op::Max).await;
            (total, residual)
        }
    })?;
    let (total_heat, residual) = results[0];
    Ok(StencilResult { total_heat, residual, cycles: session.inner.sim().now() })
}

/// The initial total heat of the configuration (for conservation checks).
pub fn initial_heat(cfg: &StencilConfig) -> f64 {
    let rows = 3 * cfg.height / 4 - cfg.height / 4;
    let cols = 3 * cfg.width / 4 - cfg.width / 4;
    rows as f64 * cols as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Sim;
    use rcce::SessionBuilder;
    use scc::device::SccDevice;
    use scc::geometry::DeviceId;

    fn session(sim: &Sim, n: usize) -> Session {
        let dev = SccDevice::new(sim, DeviceId(0));
        SessionBuilder::new(sim, vec![dev]).max_ranks(n).build()
    }

    #[test]
    fn heat_is_conserved_single_rank() {
        let sim = Sim::new();
        let s = session(&sim, 1);
        let cfg = StencilConfig { width: 16, height: 16, iterations: 10 };
        let res = run_stencil(&s, &cfg).unwrap();
        assert!((res.total_heat - initial_heat(&cfg)).abs() < 1e-6);
    }

    #[test]
    fn heat_is_conserved_across_ranks() {
        let sim = Sim::new();
        let s = session(&sim, 4);
        let cfg = StencilConfig { width: 16, height: 16, iterations: 12 };
        let res = run_stencil(&s, &cfg).unwrap();
        assert!(
            (res.total_heat - initial_heat(&cfg)).abs() < 1e-6,
            "heat {} != initial {}",
            res.total_heat,
            initial_heat(&cfg)
        );
    }

    #[test]
    fn parallel_matches_serial_result() {
        let run = |ranks: usize| {
            let sim = Sim::new();
            let s = session(&sim, ranks);
            run_stencil(&s, &StencilConfig { width: 12, height: 12, iterations: 8 })
                .unwrap()
                .total_heat
        };
        let serial = run(1);
        let parallel = run(3);
        assert!((serial - parallel).abs() < 1e-9);
    }

    #[test]
    fn diffusion_reduces_residual_over_time() {
        let res_at = |iters: usize| {
            let sim = Sim::new();
            let s = session(&sim, 2);
            run_stencil(&s, &StencilConfig { width: 16, height: 16, iterations: iters })
                .unwrap()
                .residual
        };
        assert!(res_at(60) < res_at(5), "residual must shrink as the field smooths");
    }
}
