//! Applications and workloads on vSCC.
//!
//! * [`pingpong`] — the point-to-point benchmark of §4.1 (Fig. 6);
//! * [`npb`] — the NAS Parallel Benchmarks BT port of §4.2 (Fig. 7);
//! * [`traffic`] — communication-matrix recording and rendering (Fig. 8);
//! * [`stencil`] — a 2-D Jacobi halo-exchange demo exercising the full
//!   stack with real floating-point data.

pub mod npb;
pub mod pingpong;
pub mod stencil;
pub mod traffic;
