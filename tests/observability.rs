//! Observability guarantees (DESIGN.md §"Observability"):
//!
//! 1. Determinism — two identical seeded runs export byte-identical
//!    metrics snapshots and Chrome traces (the exports contain only
//!    virtual-clock values, never wall-clock or iteration order noise).
//! 2. Zero perturbation — enabling metrics + full tracing must not move
//!    the virtual clock by a single cycle; observability reads the
//!    simulation, it never participates in it.
//! 3. Zero cost when disabled — a disabled trace must not even evaluate
//!    the label/field closures.

use des::trace::Category;
use vscc::CommScheme;
use vscc_apps::pingpong;

#[test]
fn exports_are_byte_identical_across_runs() {
    let run = || {
        let (_, trace, reg) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 6000, 2);
        (reg.snapshot().to_json(), des::obs::chrome_trace_json(&[("pingpong", &trace)]))
    };
    let (metrics_a, trace_a) = run();
    let (metrics_b, trace_b) = run();
    assert_eq!(metrics_a, metrics_b, "metrics snapshot must be deterministic");
    assert_eq!(trace_a, trace_b, "Chrome trace must be deterministic");
    // Sanity: the artifacts are non-trivial and carry every layer.
    assert!(trace_a.starts_with("{\"traceEvents\":["));
    assert!(trace_a.contains("\"cat\":\"protocol\""));
    assert!(trace_a.contains("\"cat\":\"vdma\""));
    assert!(metrics_a.contains("\"host.vdma_ops\""));
    assert!(metrics_a.contains("\"scc.d0.mpb.writes\""));
    assert!(metrics_a.contains("\"pcie.link0.egress.bytes\""));
}

#[test]
fn observability_does_not_perturb_virtual_time() {
    // Same workload with observability off (the default) and fully on:
    // the virtual completion time must match exactly.
    let plain = pingpong::interdevice(CommScheme::LocalPutLocalGet, 8192, 2);
    let (observed, trace, _) =
        pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 8192, 2);
    assert!(trace.is_enabled());
    assert!(!trace.events().is_empty(), "the observed run must actually record events");
    assert_eq!(plain, observed, "tracing/metrics must not shift the virtual clock");
}

#[test]
fn disabled_trace_never_evaluates_closures() {
    let t = des::trace::Trace::disabled();
    t.instant(
        0,
        Category::App,
        "never",
        || panic!("actor closure must not run when tracing is disabled"),
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.begin(
        0,
        Category::Protocol,
        "never",
        || panic!("actor closure must not run when tracing is disabled"),
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.end(0, Category::Protocol, "never", || {
        panic!("actor closure must not run when tracing is disabled")
    });
    assert!(t.events().is_empty());
}

#[test]
fn category_filter_is_selective() {
    // A Protocol-only trace over the same run records protocol spans but
    // drops host-layer Vdma/Pcie events.
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .trace_categories(&[Category::Protocol])
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&[7u8; 6000], 1).await;
        } else {
            let mut buf = [0u8; 6000];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("traced run");
    let events = v.trace().events();
    assert!(events.iter().any(|e| e.cat == Category::Protocol));
    assert!(events.iter().all(|e| e.cat == Category::Protocol));
}
