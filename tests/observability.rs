//! Observability guarantees (DESIGN.md §"Observability"):
//!
//! 1. Determinism — two identical seeded runs export byte-identical
//!    metrics snapshots and Chrome traces (the exports contain only
//!    virtual-clock values, never wall-clock or iteration order noise).
//! 2. Zero perturbation — enabling metrics + full tracing must not move
//!    the virtual clock by a single cycle; observability reads the
//!    simulation, it never participates in it.
//! 3. Zero cost when disabled — a disabled trace must not even evaluate
//!    the label/field closures.

use des::trace::Category;
use vscc::CommScheme;
use vscc_apps::pingpong;

#[test]
fn exports_are_byte_identical_across_runs() {
    let run = || {
        let (_, trace, reg) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 6000, 2);
        (reg.snapshot().to_json(), des::obs::chrome_trace_json(&[("pingpong", &trace)]))
    };
    let (metrics_a, trace_a) = run();
    let (metrics_b, trace_b) = run();
    assert_eq!(metrics_a, metrics_b, "metrics snapshot must be deterministic");
    assert_eq!(trace_a, trace_b, "Chrome trace must be deterministic");
    // Sanity: the artifacts are non-trivial and carry every layer.
    assert!(trace_a.starts_with("{\"traceEvents\":["));
    assert!(trace_a.contains("\"cat\":\"protocol\""));
    assert!(trace_a.contains("\"cat\":\"vdma\""));
    assert!(metrics_a.contains("\"host.vdma_ops\""));
    assert!(metrics_a.contains("\"scc.d0.mpb.writes\""));
    assert!(metrics_a.contains("\"pcie.link0.egress.bytes\""));
}

#[test]
fn observability_does_not_perturb_virtual_time() {
    // Same workload with observability off (the default) and fully on:
    // the virtual completion time must match exactly.
    let plain = pingpong::interdevice(CommScheme::LocalPutLocalGet, 8192, 2);
    let (observed, trace, _) =
        pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 8192, 2);
    assert!(trace.is_enabled());
    assert!(!trace.events().is_empty(), "the observed run must actually record events");
    assert_eq!(plain, observed, "tracing/metrics must not shift the virtual clock");
}

#[test]
fn disabled_trace_never_evaluates_closures() {
    let t = des::trace::Trace::disabled();
    t.instant(
        0,
        Category::App,
        "never",
        || -> &'static str { panic!("actor closure must not run when tracing is disabled") },
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.begin(
        0,
        Category::Protocol,
        "never",
        || -> &'static str { panic!("actor closure must not run when tracing is disabled") },
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.end(0, Category::Protocol, "never", || -> &'static str {
        panic!("actor closure must not run when tracing is disabled")
    });
    assert!(t.events().is_empty());
}

#[test]
fn flow_ids_survive_the_chrome_export_and_pair_up() {
    let (_, trace, _) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 6000, 2);
    let flows: std::collections::BTreeSet<u64> =
        trace.events().iter().filter_map(|e| e.flow).collect();
    assert!(!flows.is_empty(), "provenance must stamp flow ids on the hops");
    let json = des::obs::chrome_trace_json(&[("pingpong", &trace)]);
    // The export opens exactly one arrow chain per multi-hop flow ("s")
    // and closes every one of them ("f").
    let count = |needle: &str| json.matches(needle).count();
    let starts = count("\"cat\":\"flow\",\"ph\":\"s\"");
    let finishes = count("\"cat\":\"flow\",\"ph\":\"f\"");
    assert!(starts > 0, "multi-hop messages must draw arrows");
    assert_eq!(starts, finishes, "every flow arrow must start and finish exactly once");
    for flow in &flows {
        assert!(json.contains(&format!("\"flow\":{flow}")), "flow {flow} lost in the export");
    }
}

#[test]
fn critpath_attribution_sums_to_measured_latency() {
    for scheme in [CommScheme::LocalPutRemoteGet, CommScheme::LocalPutLocalGet] {
        let (p, trace, _) = pingpong::interdevice_observed(scheme, 8192, 1);
        let attr = des::critpath::run_attribution(&trace, 0, p.cycles);
        assert_eq!(
            attr.total(),
            p.cycles,
            "{scheme:?}: phases must sum to the measured end-to-end time"
        );
        // Per-message timelines also account fully for their own windows.
        let timelines = des::critpath::flow_timelines(&trace);
        assert!(!timelines.is_empty(), "{scheme:?}: no flow timelines reconstructed");
        for t in &timelines {
            assert_eq!(t.attribution.total(), t.end - t.start, "flow {} leaks cycles", t.flow);
        }
    }
}

#[test]
fn clean_runs_record_no_monitor_violations() {
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .monitor_fail_fast(false)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&[7u8; 6000], 1).await;
        } else {
            let mut buf = [0u8; 6000];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("clean run");
    assert!(v.monitors().is_some(), "monitors are on by default");
    assert!(v.violations().is_empty(), "a correct run must not trip any invariant");
}

#[test]
fn seeded_window_violation_is_caught_by_the_monitor() {
    // A stray put into the receive half of the payload area — the window
    // the inter-device schemes deliver into — must be caught by the
    // window-discipline monitor directly, not (much later and much more
    // obscurely) by an application's payload verification.
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .monitor_fail_fast(false)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            let who = r.who();
            let bad = rcce::layout::payload(who, vscc::schemes::SEND_AREA_BYTES);
            r.ctx().core.put(bad, &[0xEE; 64]).await;
        }
    })
    .expect("seeded run");
    let violations = v.violations();
    assert!(
        violations.iter().any(|viol| viol.check == "window_discipline"),
        "expected a window_discipline violation, got {violations:?}"
    );
}

#[test]
fn flight_recorder_is_bounded_and_deterministic() {
    let run = || {
        let sim = des::Sim::new();
        let v = vscc::VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::LocalPutLocalGet)
            .trace(des::trace::Trace::with_categories_ring(&Category::ALL, 64))
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[9u8; 16_000], 1).await;
            } else {
                let mut buf = vec![0u8; 16_000];
                r.recv(&mut buf, 0).await;
            }
        })
        .expect("recorded run");
        (v.trace().events().len(), v.trace().render())
    };
    let (len_a, dump_a) = run();
    let (_, dump_b) = run();
    assert!(len_a <= 64, "ring must keep at most its capacity ({len_a} kept)");
    assert_eq!(len_a, 64, "a 16 KB transfer records far more than 64 events");
    assert_eq!(dump_a, dump_b, "flight-recorder dumps must be byte-identical");
    assert!(dump_a.contains("evicted by the flight recorder"), "the dump must flag the eviction");
}

#[test]
fn category_filter_is_selective() {
    // A Protocol-only trace over the same run records protocol spans but
    // drops host-layer Vdma/Pcie events.
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .trace_categories(&[Category::Protocol])
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&[7u8; 6000], 1).await;
        } else {
            let mut buf = [0u8; 6000];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("traced run");
    let events = v.trace().events();
    assert!(events.iter().any(|e| e.cat == Category::Protocol));
    assert!(events.iter().all(|e| e.cat == Category::Protocol));
}
